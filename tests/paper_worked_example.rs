//! The worked example of the paper's §II-B (Figure 2), end to end through
//! the public API: four nodes, two map tasks, two reduce tasks, the exact
//! distance matrix, block sizes and intermediate matrix from the text.

use pnats_core::context::{MapCandidate, ReduceCandidate, ShuffleSource};
use pnats_core::cost::{map_cost, reduce_cost};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_net::{DistanceMatrix, NodeId};

const D1: NodeId = NodeId(0);
const D2: NodeId = NodeId(1);
const D3: NodeId = NodeId(2);
const D4: NodeId = NodeId(3);

fn h() -> DistanceMatrix {
    DistanceMatrix::paper_figure2()
}

/// Maps: M1's block on D1, M2's on D2; both 128 MB. In the example M1 is
/// assigned to D3 and M2 to D2.
fn m1() -> MapCandidate {
    MapCandidate { task: MapTaskId { job: JobId(0), index: 0 }, block_size: 128, replicas: vec![D1] }
}

fn m2() -> MapCandidate {
    MapCandidate { task: MapTaskId { job: JobId(0), index: 1 }, block_size: 128, replicas: vec![D2] }
}

#[test]
fn distance_row_d3_matches_text() {
    let h = h();
    // "The distance between M1 (i.e., D3) and D1, D2, D3 and D4 is 2, 10,
    // 0, and 6, respectively."
    assert_eq!(h.get(D3, D1), 2.0);
    assert_eq!(h.get(D3, D2), 10.0);
    assert_eq!(h.get(D3, D3), 0.0);
    assert_eq!(h.get(D3, D4), 6.0);
}

#[test]
fn map_costs_match_figure_2a() {
    let h = h();
    // "the transmission cost for M1 is 128 × 2 = 256 and the cost for M2 is
    // 128 × 0 = 0"
    assert_eq!(map_cost(&m1(), D3, &h), 256.0);
    assert_eq!(map_cost(&m2(), D2, &h), 0.0);
}

/// The intermediate matrix I (MB): M1 -> (R1: 10, R2: 5); M2 -> (R1: 20,
/// R2: 10). With M1@D3, M2@D2, R1@D1, R2@D3, Figure 2(b)'s link costs are
/// 10·2 + 5·0 + 20·4 + 10·10 = 20 + 0 + 80 + 100.
#[test]
fn reduce_costs_match_figure_2b() {
    let h = h();
    let done = |node, bytes| ShuffleSource {
        node,
        current_bytes: bytes,
        input_read: 128,
        input_total: 128,
    };
    let r1 = ReduceCandidate {
        task: ReduceTaskId { job: JobId(0), index: 0 },
        sources: vec![done(D3, 10.0), done(D2, 20.0)],
    };
    let r2 = ReduceCandidate {
        task: ReduceTaskId { job: JobId(0), index: 1 },
        sources: vec![done(D3, 5.0), done(D2, 10.0)],
    };
    let est = IntermediateEstimator::ProgressExtrapolated;
    let c_r1 = reduce_cost(&r1, D1, &h, est);
    let c_r2 = reduce_cost(&r2, D3, &h, est);
    assert_eq!(c_r1, 20.0 + 80.0);
    assert_eq!(c_r2, 0.0 + 100.0);
    assert_eq!(c_r1 + c_r2, 200.0, "total of all link costs in Figure 2(b)");
}

/// §II-B2's estimation example: M2 at 10 % progress with 1 MB emitted beats
/// M1 at 90 % with 5 MB once extrapolated (10 MB vs ~5.6 MB).
#[test]
fn estimation_example_prefers_m2() {
    let m1 = ShuffleSource { node: D1, current_bytes: 5.0, input_read: 90, input_total: 100 };
    let m2 = ShuffleSource { node: D2, current_bytes: 1.0, input_read: 10, input_total: 100 };
    let ext = IntermediateEstimator::ProgressExtrapolated;
    let cur = IntermediateEstimator::CurrentSize;
    assert!(ext.estimate(&m2) > ext.estimate(&m1));
    assert!(cur.estimate(&m2) < cur.estimate(&m1));
    assert!((ext.estimate(&m2) - 10.0).abs() < 1e-12);
}

/// The paper's P_min inequality: with the exponential model, a task passes
/// the threshold iff its cost is at most `C_ave / (−ln(1 − P_min))`.
#[test]
fn p_min_inequality_holds() {
    let model = ProbabilityModel::Exponential;
    let c_ave = 256.0;
    let p_min = 0.4;
    let ceiling = model.cost_ceiling(c_ave, p_min);
    assert!((ceiling - c_ave / -(1.0f64 - 0.4).ln()).abs() < 1e-9);
    assert!(model.probability(c_ave, ceiling * 0.999) >= p_min);
    assert!(model.probability(c_ave, ceiling * 1.001) < p_min);
}
