//! End-to-end simulator runs: scaled-down Table II batches through every
//! scheduler, checking global invariants of the produced traces.

use pnats_bench::harness::{cloud_config, hdfs_config, make_placer, SchedulerKind, ALL_SCHEDULERS};
use pnats_sim::config::background_traffic;
use pnats_sim::{JobInput, SimConfig, Simulation, TaskKind};
use pnats_workloads::{scaled_batch, AppKind};

fn mini(cfg_base: SimConfig, n_nodes: usize) -> SimConfig {
    let mut c = cfg_base;
    c.n_nodes = n_nodes;
    c.background = background_traffic(1, 300.0, n_nodes, 5);
    c
}

fn run(kind: SchedulerKind, cfg: SimConfig, app: AppKind) -> pnats_sim::SimReport {
    let inputs = JobInput::from_batch(&scaled_batch(app, 3, 20));
    let placer = make_placer(kind, &cfg);
    Simulation::new(cfg, placer).run(&inputs)
}

#[test]
fn every_scheduler_completes_a_scaled_batch() {
    for kind in ALL_SCHEDULERS {
        let r = run(kind, mini(cloud_config(9), 10), AppKind::Wordcount);
        assert!(r.all_completed(), "{kind:?}: {}/{}", r.jobs_completed, r.jobs_submitted);
    }
}

#[test]
fn trace_accounting_is_complete() {
    let r = run(SchedulerKind::Probabilistic, mini(cloud_config(1), 8), AppKind::Terasort);
    let inputs_maps: usize = scaled_batch(AppKind::Terasort, 3, 20)
        .jobs
        .iter()
        .map(|(j, _)| j.maps as usize)
        .sum();
    let inputs_reduces: usize = scaled_batch(AppKind::Terasort, 3, 20)
        .jobs
        .iter()
        .map(|(j, _)| j.reduces as usize)
        .sum();
    assert_eq!(r.trace.tasks_of(TaskKind::Map).count(), inputs_maps);
    assert_eq!(r.trace.tasks_of(TaskKind::Reduce).count(), inputs_reduces);
    assert_eq!(r.trace.jobs.len(), 3);
    // Every task's interval lies within the run.
    for t in &r.trace.tasks {
        assert!(t.assigned >= 0.0 && t.finished > t.assigned);
        assert!(t.finished <= r.sim_end + 1e-9);
        assert!(t.node < 8);
    }
    // Locality tallies cover exactly the tasks.
    assert_eq!(r.trace.locality_all().total() as usize, r.trace.tasks.len());
}

#[test]
fn single_rack_runs_have_no_remote_tasks() {
    // The paper's Table III observes zero remote tasks because the testbed
    // was one rack; our palmetto/single-rack layouts must agree.
    for kind in [SchedulerKind::Probabilistic, SchedulerKind::Fair, SchedulerKind::Random] {
        let r = run(kind, mini(hdfs_config(3), 9), AppKind::Grep);
        assert_eq!(r.trace.locality_all().remote, 0, "{kind:?}");
    }
}

#[test]
fn network_bytes_scale_with_shuffle_volume() {
    // Terasort (selectivity 1.0) must move more bytes than Grep (0.03)
    // at equal input scale under the same scheduler.
    let ts = run(SchedulerKind::Probabilistic, mini(cloud_config(4), 8), AppKind::Terasort);
    let gr = run(SchedulerKind::Probabilistic, mini(cloud_config(4), 8), AppKind::Grep);
    assert!(
        ts.trace.network_bytes > 2.0 * gr.trace.network_bytes,
        "terasort {} vs grep {}",
        ts.trace.network_bytes,
        gr.trace.network_bytes
    );
}

#[test]
fn utilization_within_capacity() {
    let r = run(SchedulerKind::Fifo, mini(cloud_config(6), 8), AppKind::Wordcount);
    let end = r.trace.makespan();
    let mu = r.trace.map_util.mean_utilization(0.0, end);
    let ru = r.trace.reduce_util.mean_utilization(0.0, end);
    assert!(mu > 0.0 && mu <= 1.0);
    assert!(ru > 0.0 && ru <= 1.0);
    assert!(r.trace.map_util.peak() <= 8 * 4);
    assert!(r.trace.reduce_util.peak() <= 8 * 2);
}

#[test]
fn collocation_constraint_respected_by_probabilistic() {
    // Algorithm 2 line 1: never two concurrent reduces of one job on a
    // node. Verify post-hoc: overlapping reduce intervals of the same job
    // never share a node.
    let r = run(SchedulerKind::Probabilistic, mini(cloud_config(2), 6), AppKind::Terasort);
    let reduces: Vec<_> = r.trace.tasks_of(TaskKind::Reduce).collect();
    for a in &reduces {
        for b in &reduces {
            if a.job == b.job
                && (a.index, a.node) != (b.index, b.node)
                && a.node == b.node
                && a.index != b.index
            {
                let overlap = a.assigned < b.finished && b.assigned < a.finished;
                assert!(
                    !overlap,
                    "job {} reduces {} and {} overlap on node {}",
                    a.job, a.index, b.index, a.node
                );
            }
        }
    }
}
