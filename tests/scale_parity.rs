//! Differential golden gate for the incremental-cost tick loop.
//!
//! The scaled simulator replaces per-offer full recomputation of `C_ave`
//! and the free-node scan with incrementally maintained structures
//! (`pnats_core::costidx`, `pnats_sim::freeset`). Every optimization is
//! admissible only if it is *invisible* in the decision stream. This suite
//! runs the paper's 60-node experiment configurations through both cost
//! paths of the probabilistic placer —
//!
//! * [`CostPath::Incremental`] — the production path (class-compressed
//!   cost tables, cached `C_ave` keyed on the free-set generation), and
//! * [`CostPath::Reference`] — the original full-recompute path, kept
//!   alive permanently as the reference implementation (debug builds also
//!   cross-check the incremental path against it per decision),
//!
//! and asserts byte-identical decision-trace JSONL and reports. A third
//! axis pins that installing the cost index itself (`cost_index =
//! Some(true)`, which the 60-node auto-gate would normally leave off)
//! changes nothing either: the index is bookkeeping, never policy.

use pnats_bench::harness::{cloud_config, hdfs_config};
use pnats_core::{CostPath, ProbabilisticPlacer};
use pnats_obs::InMemorySink;
use pnats_sim::{JobInput, SimConfig, SimReport, Simulation};
use pnats_workloads::{scaled_batch, AppKind};

/// The fig/table experiment configurations, trimmed to test-sized batches:
/// the shared-cloud setup behind Figures 4–6 and the stock-HDFS setup
/// behind Table III / Figure 7, each across the paper's three
/// applications.
fn experiment_cells(seed: u64) -> Vec<(String, SimConfig, Vec<JobInput>)> {
    let apps = [AppKind::Wordcount, AppKind::Terasort, AppKind::Grep];
    let mut cells = Vec::new();
    for app in apps {
        let inputs = JobInput::from_batch(&scaled_batch(app, 2, 20));
        cells.push((format!("cloud/{app}"), cloud_config(seed), inputs.clone()));
        cells.push((format!("hdfs/{app}"), hdfs_config(seed), inputs));
    }
    cells
}

/// One traced probabilistic run with an explicit [`CostPath`] and cost
/// index setting.
fn run_path(
    cfg: &SimConfig,
    inputs: &[JobInput],
    path: CostPath,
    cost_index: Option<bool>,
) -> SimReport {
    let mut cfg = cfg.clone();
    cfg.cost_index = cost_index;
    let placer = Box::new(ProbabilisticPlacer::paper().with_cost_path(path));
    Simulation::new(cfg, placer)
        .with_trace(Box::new(InMemorySink::unbounded()))
        .run(inputs)
}

/// Everything a run externalizes, in byte-comparable form.
fn artifacts(r: &SimReport) -> (String, String, String, u64) {
    (
        r.trace_jsonl.clone().expect("traced run yields JSONL"),
        r.trace.tasks_csv(),
        r.trace.jobs_csv(),
        r.sim_end.to_bits(),
    )
}

#[test]
fn incremental_path_matches_reference_on_every_experiment_config() {
    for (name, cfg, inputs) in experiment_cells(42) {
        // Force the cost index on (the 60-node auto-gate would leave it
        // off) so the classed machinery is actually exercised.
        let inc = run_path(&cfg, &inputs, CostPath::Incremental, Some(true));
        let refr = run_path(&cfg, &inputs, CostPath::Reference, Some(true));
        assert!(inc.counters.offers > 0, "{name}: run made no offers");
        assert_eq!(
            artifacts(&inc),
            artifacts(&refr),
            "{name}: incremental path diverged from the reference recompute"
        );
        assert_eq!(inc.counters, refr.counters, "{name}: counter drift");
    }
}

#[test]
fn auto_gate_keeps_the_index_off_at_testbed_scale() {
    // What protects the published 60-node goldens is the `cost_index`
    // auto-gate: `None` must behave exactly like `Some(false)` below the
    // activation threshold. (Forcing the index *on* is allowed to move
    // low-order float bits of `C_ave` — class-bucketed summation vs. the
    // per-node sum — which can flip a Bernoulli draw; that regime is
    // covered bit-exactly against its own reference path above, not
    // against the index-off stream.)
    for (name, cfg, inputs) in experiment_cells(7) {
        let auto = run_path(&cfg, &inputs, CostPath::Incremental, None);
        let off = run_path(&cfg, &inputs, CostPath::Incremental, Some(false));
        assert_eq!(
            artifacts(&auto),
            artifacts(&off),
            "{name}: auto gate engaged the cost index at 60 nodes"
        );
        assert_eq!(auto.counters, off.counters, "{name}: counter drift");
    }
}

#[test]
fn reference_path_stays_deterministic() {
    // The reference implementation is itself part of the gate — pin that
    // it replays exactly, so a diff against it is always meaningful.
    let (name, cfg, inputs) = experiment_cells(1301).remove(0);
    let a = run_path(&cfg, &inputs, CostPath::Reference, Some(true));
    let b = run_path(&cfg, &inputs, CostPath::Reference, Some(true));
    assert_eq!(artifacts(&a), artifacts(&b), "{name}: reference path not deterministic");
}
