//! The threaded engine end to end: real jobs, real data, every scheduler.

use pnats_baselines::{CouplingPlacer, FairDelayPlacer, FifoGreedyPlacer};
use pnats_core::placer::TaskPlacer;
use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_engine::engine::Partitioner;
use pnats_engine::{EngineConfig, EngineJob, GrepJob, MapReduceEngine, TeraSortJob, WordCountJob};
use pnats_workloads::datagen::{teragen_records, zipf_text};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn fast_config() -> EngineConfig {
    EngineConfig {
        n_nodes: 4,
        block_bytes: 2 << 10,
        heartbeat: Duration::from_millis(1),
        net_us_per_kib_hop: 5,
        cpu_us_per_kib: 5,
        ..EngineConfig::default()
    }
}

/// Reference word counts computed sequentially.
fn reference_counts(text: &str) -> HashMap<String, u64> {
    let mut m = HashMap::new();
    for w in text.split_whitespace() {
        *m.entry(w.to_string()).or_insert(0) += 1;
    }
    m
}

#[test]
fn wordcount_matches_sequential_reference_under_all_schedulers() {
    let mut rng = SmallRng::seed_from_u64(21);
    let input = zipf_text(20 << 10, 300, 1.0, &mut rng);
    let expect = reference_counts(&input);
    let engine = MapReduceEngine::new(fast_config());
    let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 3);

    let placers: Vec<Box<dyn TaskPlacer>> = vec![
        Box::new(ProbabilisticPlacer::paper()),
        Box::new(CouplingPlacer::paper()),
        Box::new(FairDelayPlacer::new(2, 6)),
        Box::new(FifoGreedyPlacer),
    ];
    for placer in placers {
        let name = placer.name();
        let report = engine.run(&job, &input, placer);
        let got: HashMap<String, u64> = report
            .output
            .iter()
            .map(|(k, v)| (k.clone(), v.parse().unwrap()))
            .collect();
        assert_eq!(got, expect, "scheduler {name} corrupted the computation");
    }
}

#[test]
fn grep_counts_matching_lines() {
    let engine = MapReduceEngine::new(fast_config());
    let mut input = String::new();
    for i in 0..500 {
        if i % 5 == 0 {
            input.push_str(&format!("line {i} with needle inside\n"));
        } else {
            input.push_str(&format!("plain line {i}\n"));
        }
    }
    let job = EngineJob::new(
        "grep",
        Arc::new(GrepJob { needle: "needle".into() }),
        Arc::new(GrepJob { needle: "needle".into() }),
        2,
    );
    let report = engine.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
    assert_eq!(report.output.len(), 1, "one key: the needle");
    assert_eq!(report.output[0].1, "100", "100 of 500 lines match");
}

#[test]
fn terasort_produces_globally_sorted_output() {
    let mut rng = SmallRng::seed_from_u64(5);
    let input = teragen_records(800, &mut rng);
    let engine = MapReduceEngine::new(EngineConfig {
        partitioner: Partitioner::RangeByFirstByte,
        ..fast_config()
    });
    let job = EngineJob::new("ts", Arc::new(TeraSortJob), Arc::new(TeraSortJob), 4);
    let report = engine.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
    assert_eq!(report.output.len(), 800);
    let keys: Vec<&String> = report.output.iter().map(|(k, _)| k).collect();
    assert!(keys.windows(2).all(|w| w[0] <= w[1]), "output must be sorted");
}

#[test]
fn engine_reports_placement_statistics() {
    let mut rng = SmallRng::seed_from_u64(9);
    let input = zipf_text(16 << 10, 200, 1.0, &mut rng);
    let engine = MapReduceEngine::new(fast_config());
    let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 2);
    let report = engine.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
    assert!(report.n_maps >= 4, "expected several blocks, got {}", report.n_maps);
    assert_eq!(report.map_locality.total() as usize, report.n_maps);
    assert_eq!(report.reduce_locality.total() as usize, report.n_reduces);
    // Single-rack engine topology: no remote class possible.
    assert_eq!(report.map_locality.remote, 0);
    assert!(report.wall > Duration::ZERO);
}
