//! Cross-crate fault-injection guarantees.
//!
//! Three layers of defence around the fault subsystem:
//!
//! 1. **Differential golden run** — a [`FaultPlan::none()`] simulation must
//!    be *byte-identical* (decision trace, task fingerprint, makespan bits,
//!    network-byte bits, offer count) to the run captured on the exact same
//!    configuration before the fault subsystem existed. An empty plan costs
//!    nothing: no extra events, no extra randomness.
//! 2. **Oracle over the zoo** — every scheduler, run under one nonzero
//!    fault plan exercising all four fault classes, must produce a report
//!    the invariant oracle accepts.
//! 3. **Faulty determinism** — same seed + same plan ⇒ byte-identical
//!    decision traces across reruns *and* across harness thread counts.

use pnats_bench::harness::{parallel_map, Run, SchedulerKind, ALL_SCHEDULERS};
use pnats_core::faults::{FaultPlan, HeartbeatLoss, LinkDegradation};
use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_sim::{check_report, JobInput, SimConfig, SimReport, Simulation};
use pnats_workloads::{AppKind, ShuffleModel};

fn tiny_inputs(n_jobs: usize, maps: usize, reduces: usize) -> Vec<JobInput> {
    (0..n_jobs)
        .map(|j| JobInput {
            name: format!("job{j}"),
            submit: 0.0,
            block_sizes: vec![64 << 20; maps],
            n_reduces: reduces,
            shuffle: ShuffleModel::for_app(AppKind::Terasort),
        })
        .collect()
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Task-trace fingerprint in the *pre-fault-subsystem* row format (no
/// epoch column — the captured hash predates it; a `none()` run has only
/// epoch-0 records, so the old format loses nothing).
fn report_fingerprint(r: &SimReport) -> String {
    let mut fp = String::new();
    for t in &r.trace.tasks {
        fp.push_str(&format!(
            "{},{:?},{},{},{},{},{:?},{}\n",
            t.job,
            t.kind,
            t.index,
            t.node,
            t.assigned.to_bits(),
            t.finished.to_bits(),
            t.locality,
            t.net_bytes
        ));
    }
    fp
}

/// A plan exercising all four fault classes at tiny-cluster scale.
fn stress_plan(seed: u64) -> FaultPlan {
    // The tiny batch runs ~30 simulated seconds, so crashes land in (5, 25)
    // — strictly inside the active period, guaranteeing they fire.
    let mut plan = FaultPlan::with_random_crashes(2, 6, (5.0, 25.0), Some(30.0), seed);
    plan.transient_map_failure_p = 0.1;
    plan.max_attempts = 8;
    plan.heartbeat_losses = vec![HeartbeatLoss { node: 3, from: 5.0, until: 20.0 }];
    plan.link_degradations =
        vec![LinkDegradation { node: 1, from: 10.0, until: 40.0, factor: 0.3 }];
    plan
}

/// The fault-free golden run: captured on this exact configuration before
/// the fault subsystem was introduced. `FaultPlan::none()` must replay it
/// byte for byte — the fault machinery may consume no randomness and push
/// no events unless a plan asks for them.
#[test]
fn empty_fault_plan_is_byte_identical_to_the_pre_fault_golden_run() {
    let cfg = SimConfig::tiny(6, 9);
    assert!(cfg.faults.is_none(), "tiny() defaults to an empty plan");
    let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
        .with_trace(Box::new(pnats_obs::InMemorySink::unbounded()))
        .run(&tiny_inputs(2, 8, 3));
    let trace = r.trace_jsonl.clone().expect("traced run drains JSONL");
    assert_eq!(trace.lines().count(), 30, "decision-trace line count");
    assert_eq!(fnv64(trace.as_bytes()), 0x5617_8380_8e9f_3047, "decision-trace bytes");
    assert_eq!(
        fnv64(report_fingerprint(&r).as_bytes()),
        0x1d6d_de7b_d0a8_3f4c,
        "task-trace fingerprint"
    );
    assert_eq!(r.trace.makespan().to_bits(), 0x403d_3b80_59ec_62b8, "makespan bits");
    assert_eq!(r.trace.network_bytes.to_bits(), 0x41ce_42cd_ec50_5b54, "network-byte bits");
    assert_eq!(r.counters.offers, 30);
    assert!(r.faults.is_empty() && r.jobs_failed == 0);
}

/// Every scheduler in the zoo must ride out the full stress plan with a
/// report the conservation-law oracle accepts.
#[test]
fn oracle_accepts_every_scheduler_under_a_nonzero_fault_plan() {
    let inputs = tiny_inputs(2, 8, 3);
    for kind in ALL_SCHEDULERS {
        let mut cfg = SimConfig::tiny(6, 21);
        cfg.faults = stress_plan(21);
        let r = Run::new(kind, cfg, inputs.clone()).execute();
        check_report(&r, &inputs).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(r.all_completed(), "{kind:?} completed {}/{}", r.jobs_completed, r.jobs_submitted);
        assert!(r.counters.node_crashes > 0, "{kind:?}: plan's crashes must fire");
    }
}

/// Same seed + same fault plan ⇒ byte-identical decision traces (fault
/// records included) across reruns and across harness thread counts.
#[test]
fn faulty_runs_replay_byte_identically_across_reruns_and_thread_counts() {
    let mk_runs = || -> Vec<Run> {
        [SchedulerKind::Probabilistic, SchedulerKind::Fair, SchedulerKind::Coupling]
            .iter()
            .map(|&kind| {
                let mut cfg = SimConfig::tiny(6, 33);
                cfg.faults = stress_plan(33);
                Run::new(kind, cfg, tiny_inputs(2, 8, 3)).traced()
            })
            .collect()
    };
    let serial: Vec<SimReport> = mk_runs().into_iter().map(Run::execute).collect();
    let rerun: Vec<SimReport> = mk_runs().into_iter().map(Run::execute).collect();
    let threaded = parallel_map(mk_runs(), 4, Run::execute);
    for ((a, b), c) in serial.iter().zip(&rerun).zip(&threaded) {
        let ta = a.trace_jsonl.as_deref().expect("traced");
        assert_eq!(ta, b.trace_jsonl.as_deref().unwrap(), "{}: rerun diverged", a.scheduler);
        assert_eq!(ta, c.trace_jsonl.as_deref().unwrap(), "{}: threads diverged", a.scheduler);
        assert!(ta.contains("\"fault\""), "{}: fault records must be in the trace", a.scheduler);
        assert_eq!(a.trace.makespan().to_bits(), c.trace.makespan().to_bits());
        assert_eq!(a.faults.len(), c.faults.len());
    }
}
