//! Property-based tests over the scheduling stack: cost-model invariants,
//! probability-model laws and placer behaviour under arbitrary cluster
//! states.

use pnats_core::context::{MapCandidate, MapSchedContext, ReduceCandidate, ShuffleSource};
use pnats_core::cost::{map_cost, map_cost_avg, reduce_cost};
use pnats_core::estimate::IntermediateEstimator;
use pnats_core::placer::{Decision, TaskPlacer};
use pnats_core::prob::ProbabilityModel;
use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_net::{ClusterLayout, DistanceMatrix, NodeId, RackId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// All probability models stay in [0,1], give certainty to free
    /// placements, and are monotone in the ratio.
    #[test]
    fn probability_models_are_well_formed(
        c_ave in 0.0f64..1e12,
        cost in 0.0f64..1e12,
        scale in 1e-6f64..1e6,
    ) {
        for m in ProbabilityModel::ALL {
            let p = m.probability(c_ave, cost);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(m.probability(c_ave, 0.0), 1.0);
            // Scale invariance.
            let p2 = m.probability(c_ave * scale, cost * scale);
            prop_assert!((p - p2).abs() < 1e-9);
        }
    }

    /// Map cost equals block size times the minimum replica distance, for
    /// any topology shape and replica set.
    #[test]
    fn map_cost_is_min_over_replicas(
        n in 2usize..20,
        block in 1u64..1_000_000,
        seed in 0u64..1000,
    ) {
        let topo = Topology::multi_rack(2, n.div_ceil(2), 1e9, 1e9);
        let h = DistanceMatrix::hops(&topo);
        let total = topo.n_nodes();
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let k = rng.gen_range(1..=total.min(3));
        let mut replicas: Vec<NodeId> = Vec::new();
        while replicas.len() < k {
            let cand = NodeId(rng.gen_range(0..total as u32));
            if !replicas.contains(&cand) {
                replicas.push(cand);
            }
        }
        let c = MapCandidate {
            task: MapTaskId { job: JobId(0), index: 0 },
            block_size: block,
            replicas: replicas.clone(),
        };
        for node in (0..total as u32).map(NodeId) {
            let expect = replicas
                .iter()
                .map(|r| h.get(node, *r))
                .fold(f64::INFINITY, f64::min) * block as f64;
            prop_assert_eq!(map_cost(&c, node, &h), expect);
        }
        // The average over any free set is between min and max point costs.
        let frees: Vec<NodeId> = (0..total as u32).map(NodeId).collect();
        let avg = map_cost_avg(&c, &frees, &h);
        let costs: Vec<f64> = frees.iter().map(|f| map_cost(&c, *f, &h)).collect();
        let lo = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
    }

    /// Reduce cost is linear in the estimated bytes: doubling every
    /// source's bytes doubles the cost, on any node.
    #[test]
    fn reduce_cost_is_linear_in_bytes(
        n in 2usize..12,
        srcs in proptest::collection::vec((0u32..12, 0.0f64..1e6), 1..8),
        node_pick in 0usize..12,
    ) {
        let topo = Topology::single_rack(12, 1e9);
        let h = DistanceMatrix::hops(&topo);
        let _ = n;
        let mk = |scale: f64| ReduceCandidate {
            task: ReduceTaskId { job: JobId(0), index: 0 },
            sources: srcs
                .iter()
                .map(|(nd, b)| ShuffleSource {
                    node: NodeId(*nd),
                    current_bytes: b * scale,
                    input_read: 1,
                    input_total: 1,
                })
                .collect(),
        };
        let node = NodeId(node_pick as u32);
        let est = IntermediateEstimator::ProgressExtrapolated;
        let c1 = reduce_cost(&mk(1.0), node, &h, est);
        let c2 = reduce_cost(&mk(2.0), node, &h, est);
        prop_assert!((c2 - 2.0 * c1).abs() < 1e-6 * c1.abs().max(1.0));
    }

    /// The progress-extrapolated estimate of a finished map equals its
    /// current bytes, and estimates scale inversely with progress.
    #[test]
    fn estimator_laws(bytes in 0.0f64..1e9, read in 1u64..1_000_000, total in 1u64..1_000_000) {
        prop_assume!(read <= total);
        let s = ShuffleSource {
            node: NodeId(0),
            current_bytes: bytes,
            input_read: read,
            input_total: total,
        };
        let ext = IntermediateEstimator::ProgressExtrapolated.estimate(&s);
        let cur = IntermediateEstimator::CurrentSize.estimate(&s);
        prop_assert!(ext >= cur - 1e-9, "extrapolation never shrinks the estimate");
        if read == total {
            prop_assert!((ext - cur).abs() < 1e-9);
        }
    }

    /// Algorithm 1 always assigns a data-local candidate when the offered
    /// node holds one (its probability is exactly 1).
    #[test]
    fn local_candidates_always_win(
        seed in 0u64..500,
        n_cands in 1usize..12,
        local_at in 0usize..12,
    ) {
        let n = 6;
        let topo = Topology::single_rack(n, 1e9);
        let h = DistanceMatrix::hops(&topo);
        let layout = topo.layout().clone();
        let mut cands: Vec<MapCandidate> = (0..n_cands)
            .map(|i| MapCandidate {
                task: MapTaskId { job: JobId(0), index: i as u32 },
                block_size: 100,
                replicas: vec![NodeId(((i + 1) % n) as u32)],
            })
            .collect();
        let node = NodeId(0);
        let local_idx = local_at % n_cands;
        cands[local_idx].replicas = vec![node];
        let free: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut placer = ProbabilisticPlacer::new(ProbConfig::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        match placer.place_map(&ctx, node, &mut rng) {
            Decision::Assign(i) => {
                prop_assert!(
                    cands[i].is_local_to(node),
                    "assigned a non-local candidate while a local one existed"
                );
            }
            Decision::Skip(r) => prop_assert!(false, "P=1 candidates are never skipped ({r:?})"),
        }
    }
}

#[test]
fn rack_layout_partitions_nodes() {
    // Deterministic sanity check used by the property tests' fixtures.
    let layout = ClusterLayout::new(vec![RackId(0), RackId(0), RackId(1)]);
    assert!(layout.same_rack(NodeId(0), NodeId(1)));
    assert!(!layout.same_rack(NodeId(0), NodeId(2)));
}
