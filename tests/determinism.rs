//! Determinism guarantees: identical (config, seed) must produce identical
//! traces, across every scheduler; different seeds must differ.

use pnats_bench::harness::{cloud_config, make_placer, SchedulerKind, ALL_SCHEDULERS};
use pnats_sim::config::background_traffic;
use pnats_sim::{JobInput, SimConfig, SimReport, Simulation};
use pnats_workloads::{scaled_batch, AppKind};

fn mini(seed: u64) -> SimConfig {
    let mut c = cloud_config(seed);
    c.n_nodes = 8;
    c.background = background_traffic(1, 200.0, 8, seed);
    c
}

fn run(kind: SchedulerKind, seed: u64) -> SimReport {
    let cfg = mini(seed);
    let inputs = JobInput::from_batch(&scaled_batch(AppKind::Wordcount, 2, 25));
    let placer = make_placer(kind, &cfg);
    Simulation::new(cfg, placer).run(&inputs)
}

fn fingerprint(r: &SimReport) -> Vec<(usize, usize, u64)> {
    // (job, task index, finish time bits) for every task, sorted.
    let mut v: Vec<(usize, usize, u64)> = r
        .trace
        .tasks
        .iter()
        .map(|t| (t.job, t.index, t.finished.to_bits()))
        .collect();
    v.sort();
    v
}

#[test]
fn identical_seeds_replay_exactly_for_every_scheduler() {
    for kind in ALL_SCHEDULERS {
        let a = run(kind, 77);
        let b = run(kind, 77);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{kind:?} not deterministic");
        assert_eq!(a.sim_end.to_bits(), b.sim_end.to_bits());
        assert_eq!(
            a.trace.network_bytes.to_bits(),
            b.trace.network_bytes.to_bits()
        );
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run(SchedulerKind::Probabilistic, 1);
    let b = run(SchedulerKind::Probabilistic, 2);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn scheduler_choice_changes_the_trace() {
    let a = run(SchedulerKind::Probabilistic, 7);
    let b = run(SchedulerKind::Random, 7);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn reports_identify_their_scheduler() {
    for kind in [SchedulerKind::Probabilistic, SchedulerKind::Coupling, SchedulerKind::Fair] {
        let r = run(kind, 3);
        assert_eq!(r.scheduler, kind.label());
    }
}
