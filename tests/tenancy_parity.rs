//! Differential golden gate for the tenancy layer's passthrough claim.
//!
//! `continuous_arrivals` (and any future service-mode experiment run with
//! one tenant and every policy off) routes jobs through
//! `TenancyConfig::single_tenant` — the identity configuration. The claim
//! in `SimConfig::tenancy`'s contract is strong: such a run is
//! **byte-identical** to a run with no tenancy layer at all, decision by
//! decision. This suite runs the paper's experiment configurations across
//! the scheduler zoo with tenancy `None` vs the single-tenant passthrough
//! and asserts identical decision-trace JSONL, counters, job completion
//! times and end-of-run state — plus that the passthrough never starts
//! the per-offer scheduling clock (service-mode timing must cost batch
//! runs nothing).

use pnats_bench::harness::{cloud_config, hdfs_config, jct_by_name, make_placer, SchedulerKind};
use pnats_obs::InMemorySink;
use pnats_sim::{JobInput, SimConfig, SimReport, Simulation};
use pnats_tenancy::TenancyConfig;
use pnats_workloads::{poisson_mixed_batch, scaled_batch, AppKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A traced run of `kind` on `cfg`, with or without the passthrough
/// tenancy layer.
fn run(kind: SchedulerKind, cfg: &SimConfig, inputs: &[JobInput], tenancy: bool) -> SimReport {
    let mut cfg = cfg.clone();
    cfg.tenancy = tenancy.then(|| TenancyConfig::single_tenant(inputs.len()));
    let placer = make_placer(kind, &cfg);
    Simulation::new(cfg, placer)
        .with_trace(Box::new(InMemorySink::unbounded()))
        .run(inputs)
}

/// Everything a run externalizes, in byte-comparable form.
fn artifacts(r: &SimReport) -> (String, String, u64, usize, usize) {
    (
        r.trace_jsonl.clone().expect("traced run"),
        r.counters.to_kv(),
        r.sim_end.to_bits(),
        r.jobs_completed,
        r.trace.tasks.len(),
    )
}

fn assert_passthrough_parity(label: &str, kind: SchedulerKind, cfg: &SimConfig, inputs: &[JobInput]) {
    let classic = run(kind, cfg, inputs, false);
    let service = run(kind, cfg, inputs, true);
    assert_eq!(
        artifacts(&classic),
        artifacts(&service),
        "{label}/{}: single-tenant passthrough diverged from the classic path",
        kind.label()
    );
    assert_eq!(
        jct_by_name(&classic),
        jct_by_name(&service),
        "{label}/{}: per-job completion times diverged",
        kind.label()
    );
    assert_eq!(classic.sched_wall_s, 0.0, "batch path must not time offers");
    assert_eq!(service.sched_wall_s, 0.0, "passthrough must not time offers");
    // The passthrough still accounts arrivals — the one visible effect.
    assert!(classic.tenants.is_empty());
    assert_eq!(service.tenants.len(), 1);
    assert_eq!(service.tenants[0].counters.admitted as usize, inputs.len());
    assert_eq!(service.tenants[0].counters.rejected(), 0);
}

#[test]
fn batch_workloads_are_byte_identical_through_passthrough() {
    for app in [AppKind::Wordcount, AppKind::Terasort, AppKind::Grep] {
        let inputs = JobInput::from_batch(&scaled_batch(app, 2, 20));
        for kind in [SchedulerKind::Probabilistic, SchedulerKind::Fair, SchedulerKind::Fifo] {
            assert_passthrough_parity(&format!("cloud/{app}"), kind, &cloud_config(7), &inputs);
        }
        assert_passthrough_parity(
            &format!("hdfs/{app}"),
            SchedulerKind::Probabilistic,
            &hdfs_config(7),
            &inputs,
        );
    }
}

#[test]
fn continuous_arrival_workload_is_byte_identical_through_passthrough() {
    // The exact shape continuous_arrivals runs: Poisson arrivals of mixed
    // Table II jobs, scaled down to test size.
    let mut rng = SmallRng::seed_from_u64(42);
    let batch = poisson_mixed_batch(6, 45.0, &mut rng);
    let mut inputs = JobInput::from_batch(&batch);
    for j in &mut inputs {
        // Shrink each job to test size while keeping the arrival process.
        j.block_sizes.truncate(8.max(j.block_sizes.len() / 20));
        j.n_reduces = j.n_reduces.div_ceil(20);
    }
    for kind in [SchedulerKind::Probabilistic, SchedulerKind::Coupling, SchedulerKind::Fair] {
        assert_passthrough_parity("poisson", kind, &cloud_config(42), &inputs);
    }
}
