//! Decision-tracing guarantees, end to end:
//!
//! * **Golden trace** — a traced run matrix at a fixed seed serializes to
//!   byte-identical JSONL across reruns and across serial vs. parallel
//!   matrix execution (`parallel_map` with 1 and 4 workers).
//! * **Reachability** — every [`SkipReason`] variant is produced by a real
//!   placer under a constructible cluster state, lands in the observer's
//!   counters, and appears in the JSONL under its stable label.
//! * **Accounting** — `offers = assigns + Σ skips` and one record per
//!   offer, on full simulations and on the hand-built scenarios alike.

use pnats_baselines::{CouplingPlacer, FairDelayPlacer};
use pnats_bench::harness::{cloud_config, parallel_map, Run, SchedulerKind};
use pnats_core::context::{
    MapCandidate, MapSchedContext, ReduceCandidate, ReduceSchedContext, ShuffleSource,
};
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_net::{DistanceMatrix, NodeId, PathCost, Topology};
use pnats_obs::json::validate_json;
use pnats_obs::{DecisionObserver, InMemorySink, SchedCounters};
use pnats_sim::config::background_traffic;
use pnats_sim::JobInput;
use pnats_workloads::{scaled_batch, AppKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Golden trace: byte identity across reruns and matrix thread counts.
// ---------------------------------------------------------------------------

/// A small traced matrix: three schedulers on an 8-node shared cluster with
/// background traffic, so assigns and several skip families all occur.
fn traced_matrix(seed: u64) -> Vec<Run> {
    [
        SchedulerKind::Probabilistic,
        SchedulerKind::Fair,
        SchedulerKind::Coupling,
    ]
    .into_iter()
    .map(|kind| {
        let mut cfg = cloud_config(seed);
        cfg.n_nodes = 8;
        cfg.background = background_traffic(1, 200.0, cfg.n_nodes, seed);
        let inputs = JobInput::from_batch(&scaled_batch(AppKind::Grep, 2, 16));
        Run::new(kind, cfg, inputs).traced()
    })
    .collect()
}

/// Concatenated matrix-order trace plus the summed offer count.
fn trace_of(threads: usize, seed: u64) -> (String, u64, Vec<SchedCounters>) {
    let reports = parallel_map(traced_matrix(seed), threads, Run::execute);
    let mut text = String::new();
    let mut offers = 0;
    let mut counters = Vec::new();
    for r in &reports {
        text.push_str(r.trace_jsonl.as_deref().expect("traced run yields a trace"));
        offers += r.counters.offers;
        counters.push(r.counters.clone());
    }
    (text, offers, counters)
}

#[test]
fn golden_trace_is_byte_identical_across_reruns_and_thread_counts() {
    let (serial, offers, counters) = trace_of(1, 4242);
    let (rerun, _, _) = trace_of(1, 4242);
    let (wide, _, _) = trace_of(4, 4242);
    assert_eq!(serial, rerun, "same seed, same threads: trace must replay");
    assert_eq!(serial, wide, "matrix thread count must not alter the trace");

    let lines: Vec<&str> = serial.lines().collect();
    assert_eq!(lines.len() as u64, offers, "one JSONL record per slot offer");
    for line in &lines {
        validate_json(line).unwrap_or_else(|e| panic!("bad trace line: {e}\n{line}"));
    }
    for c in &counters {
        assert!(c.consistent(), "offers != assigns + skips: {c:?}");
        assert!(c.offers > 0);
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let (a, _, _) = trace_of(1, 1);
    let (b, _, _) = trace_of(1, 2);
    assert_ne!(a, b);
}

// ---------------------------------------------------------------------------
// SkipReason reachability: every variant from a real placer, observed.
// ---------------------------------------------------------------------------

fn rng() -> SmallRng {
    SmallRng::seed_from_u64(7)
}

fn mcand(index: u32, replicas: Vec<NodeId>) -> MapCandidate {
    MapCandidate {
        task: MapTaskId { job: JobId(0), index },
        block_size: 64 << 20,
        replicas,
    }
}

fn rcand(index: u32, sources: Vec<ShuffleSource>) -> ReduceCandidate {
    ReduceCandidate {
        task: ReduceTaskId { job: JobId(0), index },
        sources,
    }
}

fn source(node: u32) -> ShuffleSource {
    ShuffleSource {
        node: NodeId(node),
        current_bytes: 1e6,
        input_read: 1,
        input_total: 1,
    }
}

/// A poisoned cost metric: zero on the diagonal, NaN everywhere else.
struct NanCost(usize);

impl PathCost for NanCost {
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            f64::NAN
        }
    }

    fn n_nodes(&self) -> usize {
        self.0
    }
}

/// Drives one hand-built scenario per [`SkipReason`] variant through a
/// tracing [`DecisionObserver`] and returns it for joint assertions.
fn provoke(reason: SkipReason, obs: &mut DecisionObserver) {
    let topo = Topology::multi_rack(2, 2, 1e9, 1e9);
    let h = DistanceMatrix::hops(&topo);
    let layout = topo.layout();
    let mut r = rng();
    match reason {
        SkipReason::NoCandidate => {
            // An empty candidate list scores nothing (Algorithm 1 over ∅).
            let ctx = MapSchedContext::new(JobId(0), &[], &[NodeId(0)], &h, layout);
            let mut p = ProbabilisticPlacer::paper();
            let d = p.place_map(&ctx, NodeId(0), &mut r);
            assert_eq!(d, Decision::Skip(SkipReason::NoCandidate));
            obs.observe_map(&ctx, NodeId(0), d, p.last_detail());
        }
        SkipReason::DelayBound => {
            // Delay scheduling holds a non-local offer back: data on node 1,
            // slot offered by off-rack node 2, zero skips banked so far.
            let cands = [mcand(0, vec![NodeId(1)])];
            let free = [NodeId(0), NodeId(2)];
            let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, layout);
            let mut p = FairDelayPlacer::new(2, 4);
            let d = p.place_map(&ctx, NodeId(2), &mut r);
            assert_eq!(d, Decision::Skip(SkipReason::DelayBound));
            obs.observe_map(&ctx, NodeId(2), d, p.last_detail());
        }
        SkipReason::BelowPMin => {
            // Symmetric two-node scenario: C_i = C_ave so P = 1 − e⁻¹ ≈ 0.63,
            // under a P_min of 0.99.
            let cands = [mcand(0, vec![NodeId(1)])];
            let free = [NodeId(0), NodeId(2)];
            let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, layout);
            let mut p = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.99));
            let d = p.place_map(&ctx, NodeId(0), &mut r);
            assert_eq!(d, Decision::Skip(SkipReason::BelowPMin));
            obs.observe_map(&ctx, NodeId(0), d, p.last_detail());
        }
        SkipReason::DrawFailed => {
            // P_min = 0 disables the gate; a non-local offer has P < 1, so
            // some seed loses the Bernoulli draw.
            let cands = [mcand(0, vec![NodeId(1)])];
            let free = [NodeId(0), NodeId(1)];
            let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, layout);
            let mut p = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.0));
            for seed in 0..1000 {
                let mut r = SmallRng::seed_from_u64(seed);
                let d = p.place_map(&ctx, NodeId(0), &mut r);
                if d == Decision::Skip(SkipReason::DrawFailed) {
                    obs.observe_map(&ctx, NodeId(0), d, p.last_detail());
                    return;
                }
            }
            panic!("no seed in 0..1000 lost a P < 1 Bernoulli draw");
        }
        SkipReason::PostponedReduce => {
            // Coupling's launch gate: zero map progress permits zero reduces.
            let cands = [rcand(0, vec![source(1)])];
            let free = [NodeId(0), NodeId(2)];
            let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, layout)
                .map_phase(0.0, 0, 10);
            let mut p = CouplingPlacer::paper();
            let d = p.place_reduce(&ctx, NodeId(0), &mut r);
            assert_eq!(d, Decision::Skip(SkipReason::PostponedReduce));
            obs.observe_reduce(&ctx, NodeId(0), d, p.last_detail());
        }
        SkipReason::NonFiniteCost => {
            // A poisoned metric (NaN off-diagonal) makes every candidate
            // unscoreable.
            let nan = NanCost(4);
            let cands = [mcand(0, vec![NodeId(1)])];
            let free = [NodeId(0), NodeId(2)];
            let ctx = MapSchedContext::new(JobId(0), &cands, &free, &nan, layout);
            let mut p = ProbabilisticPlacer::paper();
            let d = p.place_map(&ctx, NodeId(0), &mut r);
            assert_eq!(d, Decision::Skip(SkipReason::NonFiniteCost));
            obs.observe_map(&ctx, NodeId(0), d, p.last_detail());
        }
        SkipReason::NodeDead => {
            // Emitted by the simulation runner, not a placer: when fault
            // injection has downed every replica of every pending map, the
            // offer is skipped above the placer (the paper's algorithms
            // assume live data sources). Mirror that emission exactly —
            // original candidates in the context, no placer detail.
            let cands = [mcand(0, vec![NodeId(1)])];
            let free = [NodeId(0), NodeId(2)];
            let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, layout);
            obs.observe_map(&ctx, NodeId(0), Decision::Skip(SkipReason::NodeDead), None);
        }
        SkipReason::Collocated => {
            // Algorithm 2 line 1: the offering node already runs a reduce
            // of this job.
            let cands = [rcand(0, vec![source(1)])];
            let free = [NodeId(0), NodeId(2)];
            let running = [NodeId(0)];
            let ctx = ReduceSchedContext::new(JobId(0), &cands, &free, &h, layout)
                .running_on(&running);
            let mut p = ProbabilisticPlacer::paper();
            let d = p.place_reduce(&ctx, NodeId(0), &mut r);
            assert_eq!(d, Decision::Skip(SkipReason::Collocated));
            obs.observe_reduce(&ctx, NodeId(0), d, p.last_detail());
        }
    }
}

#[test]
fn every_skip_reason_is_reachable_and_counted() {
    let mut obs = DecisionObserver::with_sink(Box::new(InMemorySink::unbounded()));
    for reason in SkipReason::ALL {
        provoke(reason, &mut obs);
    }
    obs.flush();

    // Each scenario produced exactly one offer, booked under its reason.
    let c = obs.counters().clone();
    assert!(c.consistent());
    assert_eq!(c.offers, SkipReason::ALL.len() as u64);
    assert_eq!(c.assigns, 0);
    for reason in SkipReason::ALL {
        assert_eq!(c.skipped(reason), 1, "{reason:?} not counted");
    }

    // And one JSONL record each, carrying the stable snake_case label.
    let trace = obs.drain_jsonl().expect("tracing observer yields JSONL");
    let lines: Vec<&str> = trace.lines().collect();
    assert_eq!(lines.len(), SkipReason::ALL.len());
    for (line, reason) in lines.iter().zip(SkipReason::ALL) {
        validate_json(line).unwrap_or_else(|e| panic!("bad trace line: {e}\n{line}"));
        let needle = format!("\"decision\":\"skip\",\"reason\":\"{}\"", reason.label());
        assert!(line.contains(&needle), "{reason:?} label missing in {line}");
    }
}

#[test]
fn skip_records_from_the_gate_carry_winner_detail() {
    // A failed Bernoulli draw still reports the winner's C_i / C_ave / P —
    // the intermediates are what make the trace debuggable.
    let topo = Topology::multi_rack(2, 2, 1e9, 1e9);
    let h = DistanceMatrix::hops(&topo);
    let cands = [mcand(0, vec![NodeId(1)])];
    let free = [NodeId(0), NodeId(1)];
    let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, topo.layout());
    let mut p = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.0));
    let mut obs = DecisionObserver::with_sink(Box::new(InMemorySink::unbounded()));
    for seed in 0..1000 {
        let mut r = SmallRng::seed_from_u64(seed);
        let d = p.place_map(&ctx, NodeId(0), &mut r);
        if d != Decision::Skip(SkipReason::DrawFailed) {
            continue;
        }
        obs.observe_map(&ctx, NodeId(0), d, p.last_detail());
        let detail = p.last_detail().expect("gate skips keep the winner's detail");
        assert!(detail.probability > 0.0 && detail.probability < 1.0);
        assert!(detail.cost > detail.cost_avg, "non-local offer costs over the mean");
        let trace = obs.drain_jsonl().expect("trace");
        assert!(trace.contains(",\"cost\":"), "detail missing: {trace}");
        assert!(trace.contains(",\"p\":"), "detail missing: {trace}");
        return;
    }
    panic!("no seed in 0..1000 lost a P < 1 Bernoulli draw");
}
