//! Value-generation strategies. Unlike real proptest there is no shrink
//! tree: a strategy is simply a deterministic function of the test RNG.

use rand::rngs::SmallRng;
use rand::Rng;

pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 10000 consecutive values", self.reason);
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut SmallRng) -> T {
        let total: u32 = self.options.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.options {
            if pick < *w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
