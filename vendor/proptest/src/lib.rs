//! Offline drop-in for the subset of the `proptest` API used by this
//! workspace. The build environment has no registry access, so the real
//! crate cannot be downloaded; this vendored shim keeps the macro surface
//! (`proptest!`, `prop_assert*`, `prop_oneof!`, strategy combinators)
//! source-compatible.
//!
//! Semantics: each property runs `ProptestConfig::cases` random cases drawn
//! from a deterministic per-test RNG (seeded from the test name, overridable
//! via `PROPTEST_SEED`). There is no shrinking — a failure reports the case
//! number and per-test seed so it can be replayed exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

// Used by the `proptest!` macro expansion; consumer crates need not depend
// on rand themselves.
#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Deterministic 64-bit FNV-1a hash of the test name, used as the base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    h
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_for(stringify!($name));
                let mut rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    assert!(
                        rejected < 1024 + 16 * config.cases as u64,
                        "proptest {}: too many rejected cases ({rejected})",
                        stringify!($name),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {case} (seed {seed}): {msg}",
                            stringify!($name),
                        ),
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
}
