//! Runner configuration and per-case outcomes.

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!`; draw another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}
