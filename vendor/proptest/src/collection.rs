//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Inclusive-lower, exclusive-upper length bound, as produced by
/// `usize` ranges in real proptest's `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_excl: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_excl: r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_excl: n + 1 }
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_excl);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
