//! The `Standard` distribution: uniform over a type's natural domain
//! ([0,1) for floats, the full value range for integers).

use crate::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i32, i64);
