//! Slice sampling helpers (`choose`, `shuffle`).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
    where
        R: RngCore;

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: RngCore;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R>(&self, rng: &mut R) -> Option<&T>
    where
        R: RngCore,
    {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R>(&mut self, rng: &mut R)
    where
        R: RngCore,
    {
        // Fisher-Yates, matching upstream's descending traversal.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SliceRandom;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
