//! Offline drop-in for the subset of the `rand` 0.8 API used by this
//! workspace. The build environment has no registry access, so the real
//! crate cannot be downloaded; this vendored shim keeps the public surface
//! (`SmallRng`, `Rng`, `SeedableRng`, `seq::SliceRandom`) source-compatible.
//!
//! `SmallRng` is xoshiro256++ seeded via SplitMix64 from a `u64`, matching
//! the upstream 64-bit implementation, so streams are stable and
//! high-quality even though they are produced by this shim.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// Core RNG interface: everything derives from a 64-bit output step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface. Only `seed_from_u64` is used in-tree; `from_seed`
/// exists for API parity.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as used by upstream rand_core.
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(4) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. The single generic
/// `SampleRange` impl below (rather than one impl per concrete type) is what
/// lets inference resolve `rng.gen_range(30.0..120.0)` the way real rand
/// does.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
    fn is_empty(&self) -> bool {
        // NaN bounds compare unordered and must count as empty.
        !matches!(self.start.partial_cmp(&self.end), Some(core::cmp::Ordering::Less))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
    fn is_empty(&self) -> bool {
        !matches!(
            self.start().partial_cmp(self.end()),
            Some(core::cmp::Ordering::Less | core::cmp::Ordering::Equal)
        )
    }
}

#[inline]
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    // Widening-multiply rejection-free mapping (Lemire); span > 0.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let mut span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    span = span.wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every value is fair game.
                        return rng.next_u64() as $t;
                    }
                }
                lo.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                let unit: $t = Standard.sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_reasonable() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }
}
