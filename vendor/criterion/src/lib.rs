//! Offline drop-in for the subset of the `criterion` API used by the
//! workspace benches. The build environment has no registry access, so the
//! real crate cannot be downloaded; this shim keeps the bench sources
//! compiling and produces simple median-per-iteration timings on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is measured for (per sample batch).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), 20, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_count, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_count, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { id: s.into() }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    iters_hint: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = self.iters_hint.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples.push(elapsed.as_secs_f64() / iters as f64);
        self.retune(elapsed, iters);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = self.iters_hint.max(1);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total.as_secs_f64() / iters as f64);
        self.retune(total, iters);
    }

    fn retune(&mut self, elapsed: Duration, iters: u64) {
        // Aim each subsequent sample at TARGET_SAMPLE_TIME of work.
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        if per_iter > 0.0 {
            let want = TARGET_SAMPLE_TIME.as_secs_f64() / per_iter;
            self.iters_hint = (want as u64).clamp(1, 1 << 24);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), iters_hint: 1 };
    // Warm-up + calibration pass.
    f(&mut b);
    b.samples.clear();
    while b.samples.len() < samples {
        f(&mut b);
    }
    let mut xs = b.samples;
    xs.sort_by(|a, b| a.total_cmp(b));
    let median = xs[xs.len() / 2];
    println!("bench {label}: median {} / iter", fmt_time(median));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
