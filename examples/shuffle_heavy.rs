//! A shuffle-heavy TeraSort on the threaded engine, with a range
//! partitioner so the output is globally sorted — and a demonstration of
//! the paper's intermediate-size estimator steering reduce placement.
//!
//! ```sh
//! cargo run --release -p pnats-bench --example shuffle_heavy
//! ```

use pnats_core::estimate::IntermediateEstimator;
use pnats_core::prob::ProbabilityModel;
use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
use pnats_engine::engine::Partitioner;
use pnats_engine::{EngineConfig, EngineJob, MapReduceEngine, TeraSortJob};
use pnats_workloads::datagen::teragen_records;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);
    let input = teragen_records(4_000, &mut rng);

    let engine = MapReduceEngine::new(EngineConfig {
        partitioner: Partitioner::RangeByFirstByte,
        slowstart: 0.1, // launch reduces early: estimation has work to do
        ..EngineConfig::default()
    });
    let job = EngineJob::new("terasort", Arc::new(TeraSortJob), Arc::new(TeraSortJob), 6);

    for estimator in [
        IntermediateEstimator::ProgressExtrapolated,
        IntermediateEstimator::CurrentSize,
    ] {
        let placer = ProbabilisticPlacer::new(ProbConfig {
            p_min: 0.4,
            model: ProbabilityModel::Exponential,
            estimator,
        });
        let report = engine.run(&job, &input, Box::new(placer));
        // Verify global sortedness (range partitioner + per-partition sort).
        let keys: Vec<&str> = report.output.iter().map(|(k, _)| k.as_str()).collect();
        let sorted = keys.windows(2).all(|w| w[0] <= w[1]);
        println!(
            "estimator={:<22} wall={:>8.1?} records={} globally_sorted={} reduce_local={:.0}%",
            estimator.label(),
            report.wall,
            report.output.len(),
            sorted,
            report.reduce_locality.pct_node_local(),
        );
        assert!(sorted, "terasort output must be sorted");
        assert_eq!(report.output.len(), 4_000);
    }
}
