//! The §II-B3 story: on a congested shared cluster, scheduling with the
//! inverse-measured-rate cost matrix instead of raw hop counts.
//!
//! ```sh
//! cargo run --release -p pnats-bench --example congested_network
//! ```
//!
//! We saturate part of the simulated fabric with background transfers and
//! run a Grep batch twice — once scheduling on hops, once on the
//! congestion-scaled costs fed by the transfer-rate monitor.

use pnats_bench::harness::{cloud_config, mean_jct};
use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_sim::config::background_traffic;
use pnats_sim::{JobInput, Simulation};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    let inputs = JobInput::from_batch(&table2_batch(AppKind::Grep));
    println!("grep batch on a cluster with 16 lanes of background traffic\n");
    for (label, netcond) in [("inverse-rate (§II-B3)", true), ("plain hops", false)] {
        let mut cfg = cloud_config(42);
        cfg.network_condition = netcond;
        cfg.background = background_traffic(16, 8_000.0, cfg.n_nodes, 1234);
        let report =
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        println!(
            "cost metric = {:<22} mean JCT = {:>6.0} s   makespan = {:>6.0} s   monitored paths fed by {:.0} GB of transfers",
            label,
            mean_jct(&report),
            report.trace.makespan(),
            report.trace.network_bytes / 1e9,
        );
    }
}
