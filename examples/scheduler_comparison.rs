//! Compare the paper's scheduler against Coupling and Fair on the
//! simulated 60-node testbed — a one-job-batch miniature of Figure 4.
//!
//! ```sh
//! cargo run --release -p pnats-bench --example scheduler_comparison
//! ```

use pnats_bench::harness::{cloud_config, make_placer, mean_jct, PAPER_SCHEDULERS};
use pnats_sim::{JobInput, Simulation, TaskKind};
use pnats_workloads::{table2_batch, AppKind};

fn main() {
    // The paper's 10 Terasort jobs (shuffle-heavy) on the cloud-layout
    // cluster with background traffic.
    let inputs = JobInput::from_batch(&table2_batch(AppKind::Terasort));
    println!(
        "simulating {} jobs ({} maps, {} reduces) under 3 schedulers ...\n",
        inputs.len(),
        inputs.iter().map(|i| i.block_sizes.len()).sum::<usize>(),
        inputs.iter().map(|i| i.n_reduces).sum::<usize>(),
    );
    println!(
        "{:<15} {:>10} {:>10} {:>12} {:>14}",
        "scheduler", "meanJCT(s)", "makespan", "% local maps", "net bytes (GB)"
    );
    for kind in PAPER_SCHEDULERS {
        let cfg = cloud_config(42);
        let placer = make_placer(kind, &cfg);
        let report = Simulation::new(cfg, placer).run(&inputs);
        let maps = report.trace.locality_of(TaskKind::Map);
        println!(
            "{:<15} {:>10.0} {:>10.0} {:>12.1} {:>14.0}",
            kind.label(),
            mean_jct(&report),
            report.trace.makespan(),
            maps.pct_node_local(),
            report.trace.network_bytes / 1e9,
        );
    }
    println!("\n(the probabilistic scheduler should lead on mean JCT — Figure 4's shape)");
}
