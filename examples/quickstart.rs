//! Quickstart: run a real WordCount job on an 8-node virtual cluster under
//! the paper's probabilistic network-aware scheduler.
//!
//! ```sh
//! cargo run --release -p pnats-bench --example quickstart
//! ```
//!
//! This uses the *threaded engine* (`pnats-engine`): actual map and reduce
//! functions over generated Zipf text, with placement decided per heartbeat
//! by Algorithm 1/2 of Shen et al. (CLUSTER 2016).

use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_engine::{EngineConfig, EngineJob, MapReduceEngine, WordCountJob};
use pnats_workloads::datagen::zipf_text;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // ~400 KB of Wikipedia-like (Zipf-distributed) text.
    let mut rng = SmallRng::seed_from_u64(7);
    let input = zipf_text(400 << 10, 2_000, 1.0, &mut rng);

    let engine = MapReduceEngine::new(EngineConfig::default());
    let job = EngineJob::new("wordcount", Arc::new(WordCountJob), Arc::new(WordCountJob), 4);

    println!("running {:?} over {} KiB of text ...", job.name, input.len() >> 10);
    let report = engine.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));

    let mut counts: Vec<(String, u64)> = report
        .output
        .iter()
        .map(|(k, v)| (k.clone(), v.parse().unwrap()))
        .collect();
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));

    println!(
        "done in {:?}: {} map tasks, {} reduce tasks, {} distinct words",
        report.wall,
        report.n_maps,
        report.n_reduces,
        counts.len()
    );
    println!(
        "placement: {:.0}% of maps ran data-local ({} scheduler declines)",
        report.map_locality.pct_node_local(),
        report.skipped_offers
    );
    println!("top 10 words:");
    for (word, count) in counts.iter().take(10) {
        println!("  {word:>8}  {count}");
    }
}
