//! Property tests of replica placement policies: distinctness, writer
//! locality and rack spreading hold for arbitrary cluster shapes.

use pnats_dfs::{LocalOnly, RackAware, ReplicaPlacement, UniformRandom};
use pnats_net::{NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn distinct(nodes: &[NodeId]) -> bool {
    let mut v = nodes.to_vec();
    v.sort();
    v.dedup();
    v.len() == nodes.len()
}

proptest! {
    #[test]
    fn rack_aware_invariants(
        racks in 1usize..5,
        per_rack in 1usize..8,
        writer in 0usize..40,
        replication in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let topo = Topology::multi_rack(racks, per_rack, 1e9, 1e9);
        let layout = topo.layout();
        let n = layout.n_nodes();
        let writer = NodeId((writer % n) as u32);
        let mut rng = SmallRng::seed_from_u64(seed);
        let reps = RackAware.place(writer, replication, layout, &mut rng);
        // Count never exceeds request or cluster size.
        prop_assert!(reps.len() <= replication.min(n));
        prop_assert!(reps.len() == replication.min(n) || reps.len() == replication,
            "short only when the cluster is smaller than the factor");
        prop_assert!(distinct(&reps));
        if replication >= 1 {
            prop_assert_eq!(reps[0], writer, "first replica is writer-local");
        }
        // With >= 2 racks, the second replica leaves the writer's rack.
        if replication >= 2 && racks >= 2 {
            prop_assert!(!layout.same_rack(reps[0], reps[1]));
        }
        // The third shares the second's rack whenever that rack has a
        // spare node; otherwise the policy falls back to any free node.
        if reps.len() >= 3 {
            let spare_in_second_rack = (0..n as u32)
                .map(NodeId)
                .any(|c| layout.same_rack(c, reps[1]) && c != reps[1] && c != reps[0]);
            if spare_in_second_rack {
                prop_assert!(layout.same_rack(reps[1], reps[2]));
            }
        }
    }

    #[test]
    fn uniform_invariants(
        n in 1usize..30,
        replication in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let topo = Topology::single_rack(n, 1e9);
        let mut rng = SmallRng::seed_from_u64(seed);
        let reps = UniformRandom.place(NodeId(0), replication, topo.layout(), &mut rng);
        prop_assert_eq!(reps.len(), replication.min(n));
        prop_assert!(distinct(&reps));
        prop_assert!(reps.iter().all(|r| r.idx() < n));
    }

    #[test]
    fn local_only_is_exactly_the_writer(
        n in 1usize..30,
        writer in 0usize..30,
        replication in 1usize..6,
        seed in 0u64..1000,
    ) {
        let topo = Topology::single_rack(n, 1e9);
        let writer = NodeId((writer % n) as u32);
        let mut rng = SmallRng::seed_from_u64(seed);
        let reps = LocalOnly.place(writer, replication, topo.layout(), &mut rng);
        prop_assert_eq!(reps, vec![writer]);
    }
}
