//! File namespace: files are ordered lists of blocks.

use crate::block::{Block, BlockId};
use std::fmt;

/// Identifier of a file in a [`Namespace`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct FileEntry {
    name: String,
    blocks: Vec<BlockId>,
}

/// A flat file → blocks namespace (HDFS without directories; the
/// evaluation's job inputs are single large files).
#[derive(Clone, Debug, Default)]
pub struct Namespace {
    files: Vec<FileEntry>,
    blocks: Vec<Block>,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a file from per-block sizes; allocates fresh block ids.
    pub fn create_file(&mut self, name: impl Into<String>, block_sizes: &[u64]) -> FileId {
        let id = FileId(self.files.len() as u32);
        let mut blocks = Vec::with_capacity(block_sizes.len());
        for &size in block_sizes {
            let bid = BlockId(self.blocks.len() as u32);
            self.blocks.push(Block::new(bid, size));
            blocks.push(bid);
        }
        self.files.push(FileEntry { name: name.into(), blocks });
        id
    }

    /// Number of files.
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// Number of blocks across all files.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The file's name.
    pub fn file_name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].name
    }

    /// Blocks of `file`, in order.
    pub fn file_blocks(&self, file: FileId) -> &[BlockId] {
        &self.files[file.0 as usize].blocks
    }

    /// Total size of `file` in bytes.
    pub fn file_size(&self, file: FileId) -> u64 {
        self.files[file.0 as usize]
            .blocks
            .iter()
            .map(|b| self.blocks[b.idx()].size)
            .sum()
    }

    /// Block metadata.
    pub fn block(&self, id: BlockId) -> Block {
        self.blocks[id.idx()]
    }

    /// Look up a file by name.
    pub fn find(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| FileId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::split_sizes;

    #[test]
    fn create_and_query() {
        let mut ns = Namespace::new();
        let f = ns.create_file("input", &split_sizes(250, 100));
        assert_eq!(ns.n_files(), 1);
        assert_eq!(ns.n_blocks(), 3);
        assert_eq!(ns.file_name(f), "input");
        assert_eq!(ns.file_size(f), 250);
        assert_eq!(ns.file_blocks(f).len(), 3);
        assert_eq!(ns.block(ns.file_blocks(f)[2]).size, 50);
    }

    #[test]
    fn block_ids_unique_across_files() {
        let mut ns = Namespace::new();
        let a = ns.create_file("a", &[10, 10]);
        let b = ns.create_file("b", &[20]);
        let mut all: Vec<BlockId> = ns
            .file_blocks(a)
            .iter()
            .chain(ns.file_blocks(b))
            .copied()
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn find_by_name() {
        let mut ns = Namespace::new();
        let f = ns.create_file("wordcount_10g", &[1]);
        assert_eq!(ns.find("wordcount_10g"), Some(f));
        assert_eq!(ns.find("missing"), None);
    }

    #[test]
    fn empty_file_allowed() {
        let mut ns = Namespace::new();
        let f = ns.create_file("empty", &[]);
        assert_eq!(ns.file_size(f), 0);
        assert!(ns.file_blocks(f).is_empty());
    }
}
