//! Replica placement policies.
//!
//! Where replicas land determines the locality opportunities every scheduler
//! competes over, so placement is a first-class, pluggable policy:
//!
//! * [`RackAware`] — stock HDFS: first replica on the "writer" node, second
//!   on a random node in a *different* rack (or a different node of the same
//!   rack in single-rack clusters), third on a different node of the second
//!   replica's rack, further replicas random. This is what the paper's
//!   testbed used (replication factor 2).
//! * [`UniformRandom`] — replicas on distinct uniformly random nodes; the
//!   distribution NAS/SAN-backed clusters approximate (paper §I cites data
//!   "stored in NAS or SAN devices located in a subset of the nodes").
//! * [`LocalOnly`] — every replica on the writer node; degenerate policy for
//!   tests and worst-case locality skew.

use pnats_net::{ClusterLayout, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Chooses the set of nodes holding each replica of a block.
pub trait ReplicaPlacement {
    /// Pick `replication` distinct nodes for a block written from `writer`.
    ///
    /// Returns fewer than `replication` nodes only when the cluster itself
    /// is smaller than the replication factor.
    fn place(
        &self,
        writer: NodeId,
        replication: usize,
        layout: &ClusterLayout,
        rng: &mut SmallRng,
    ) -> Vec<NodeId>;
}

/// Stock HDFS rack-aware placement (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct RackAware;

/// Uniform placement over distinct nodes.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformRandom;

/// All replicas on the writer node.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalOnly;

fn random_node_excluding(
    layout: &ClusterLayout,
    exclude: &[NodeId],
    filter: impl Fn(NodeId) -> bool,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    let candidates: Vec<NodeId> = (0..layout.n_nodes() as u32)
        .map(NodeId)
        .filter(|n| !exclude.contains(n) && filter(*n))
        .collect();
    candidates.choose(rng).copied()
}

impl ReplicaPlacement for RackAware {
    fn place(
        &self,
        writer: NodeId,
        replication: usize,
        layout: &ClusterLayout,
        rng: &mut SmallRng,
    ) -> Vec<NodeId> {
        let mut replicas = Vec::with_capacity(replication);
        if replication == 0 {
            return replicas;
        }
        replicas.push(writer);
        // Second replica: off-rack if any other rack has nodes, else any
        // other node of the writer's rack.
        if replicas.len() < replication {
            let off_rack = random_node_excluding(
                layout,
                &replicas,
                |n| !layout.same_rack(n, writer),
                rng,
            );
            let second = off_rack.or_else(|| {
                random_node_excluding(layout, &replicas, |_| true, rng)
            });
            if let Some(n) = second {
                replicas.push(n);
            }
        }
        // Third replica: same rack as the second, different node.
        if replicas.len() < replication && replicas.len() == 2 {
            let second = replicas[1];
            if let Some(n) = random_node_excluding(
                layout,
                &replicas,
                |n| layout.same_rack(n, second),
                rng,
            ) {
                replicas.push(n);
            }
        }
        // Any further replicas: uniform over remaining nodes.
        while replicas.len() < replication {
            match random_node_excluding(layout, &replicas, |_| true, rng) {
                Some(n) => replicas.push(n),
                None => break, // cluster smaller than replication factor
            }
        }
        replicas
    }
}

impl ReplicaPlacement for UniformRandom {
    fn place(
        &self,
        _writer: NodeId,
        replication: usize,
        layout: &ClusterLayout,
        rng: &mut SmallRng,
    ) -> Vec<NodeId> {
        let mut replicas = Vec::with_capacity(replication);
        while replicas.len() < replication {
            match random_node_excluding(layout, &replicas, |_| true, rng) {
                Some(n) => replicas.push(n),
                None => break,
            }
        }
        replicas
    }
}

impl ReplicaPlacement for LocalOnly {
    fn place(
        &self,
        writer: NodeId,
        replication: usize,
        _layout: &ClusterLayout,
        _rng: &mut SmallRng,
    ) -> Vec<NodeId> {
        if replication == 0 {
            Vec::new()
        } else {
            vec![writer]
        }
    }
}

/// Pick a uniformly random writer node, the common case when loading data
/// from outside the cluster.
pub fn random_writer(layout: &ClusterLayout, rng: &mut SmallRng) -> NodeId {
    NodeId(rng.gen_range(0..layout.n_nodes() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_net::{RackId, Topology};
    use rand::SeedableRng;

    const GB: f64 = 1e9 / 8.0;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn layout_multi() -> ClusterLayout {
        Topology::multi_rack(3, 4, GB, GB).layout().clone()
    }

    fn layout_single() -> ClusterLayout {
        Topology::single_rack(6, GB).layout().clone()
    }

    #[test]
    fn rack_aware_first_is_writer_second_off_rack() {
        let layout = layout_multi();
        let mut rng = rng();
        for _ in 0..50 {
            let r = RackAware.place(NodeId(0), 2, &layout, &mut rng);
            assert_eq!(r.len(), 2);
            assert_eq!(r[0], NodeId(0));
            assert!(!layout.same_rack(r[0], r[1]), "second replica off-rack");
        }
    }

    #[test]
    fn rack_aware_third_shares_second_rack() {
        let layout = layout_multi();
        let mut rng = rng();
        for _ in 0..50 {
            let r = RackAware.place(NodeId(0), 3, &layout, &mut rng);
            assert_eq!(r.len(), 3);
            assert!(layout.same_rack(r[1], r[2]));
            assert_ne!(r[1], r[2]);
        }
    }

    #[test]
    fn rack_aware_single_rack_falls_back_to_distinct_nodes() {
        let layout = layout_single();
        let mut rng = rng();
        let r = RackAware.place(NodeId(2), 2, &layout, &mut rng);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], NodeId(2));
        assert_ne!(r[0], r[1]);
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let layout = ClusterLayout::new(vec![RackId(0), RackId(0)]);
        let mut rng = rng();
        let r = RackAware.place(NodeId(0), 5, &layout, &mut rng);
        assert_eq!(r.len(), 2, "only 2 nodes exist");
        let u = UniformRandom.place(NodeId(0), 5, &layout, &mut rng);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn uniform_replicas_are_distinct() {
        let layout = layout_multi();
        let mut rng = rng();
        for _ in 0..50 {
            let r = UniformRandom.place(NodeId(0), 3, &layout, &mut rng);
            assert_eq!(r.len(), 3);
            assert_ne!(r[0], r[1]);
            assert_ne!(r[1], r[2]);
            assert_ne!(r[0], r[2]);
        }
    }

    #[test]
    fn uniform_covers_the_cluster() {
        let layout = layout_single();
        let mut rng = rng();
        let mut seen = vec![false; layout.n_nodes()];
        for _ in 0..200 {
            for n in UniformRandom.place(NodeId(0), 1, &layout, &mut rng) {
                seen[n.idx()] = true;
            }
        }
        assert!(seen.iter().all(|s| *s), "every node eventually receives a replica");
    }

    #[test]
    fn local_only_is_writer_only() {
        let layout = layout_multi();
        let mut rng = rng();
        assert_eq!(LocalOnly.place(NodeId(5), 3, &layout, &mut rng), vec![NodeId(5)]);
        assert!(LocalOnly.place(NodeId(5), 0, &layout, &mut rng).is_empty());
    }

    #[test]
    fn random_writer_in_range() {
        let layout = layout_single();
        let mut rng = rng();
        for _ in 0..100 {
            let w = random_writer(&layout, &mut rng);
            assert!(w.idx() < layout.n_nodes());
        }
    }
}
