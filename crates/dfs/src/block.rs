//! Blocks: the unit of storage, replication and map-task input.

use std::fmt;

/// Identifier of a block; dense indices within one [`crate::BlockStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block id as a flat vector index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// A block: a fixed-size slice of a file's bytes. Each map task processes
/// exactly one block (its `B_j` in the paper's notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Identifier within the owning store.
    pub id: BlockId,
    /// Size in bytes (`B_j`).
    pub size: u64,
}

impl Block {
    /// A block of `size` bytes.
    pub fn new(id: BlockId, size: u64) -> Self {
        Self { id, size }
    }
}

/// Split `total` bytes into blocks of at most `block_size` bytes; the final
/// block carries the remainder. Returns the per-block sizes.
///
/// Mirrors HDFS file splitting: `Wordcount_10GB`'s 88 map tasks in the
/// paper's Table II correspond to ⌈10 GB / 128 MB⌉-ish splits.
pub fn split_sizes(total: u64, block_size: u64) -> Vec<u64> {
    assert!(block_size > 0, "block size must be positive");
    if total == 0 {
        return Vec::new();
    }
    let full = (total / block_size) as usize;
    let rem = total % block_size;
    let mut v = vec![block_size; full];
    if rem > 0 {
        v.push(rem);
    }
    v
}

/// Split `total` bytes into exactly `n` near-equal blocks (used to hit the
/// paper's exact per-job map counts from Table II).
pub fn split_into(total: u64, n: usize) -> Vec<u64> {
    assert!(n > 0, "cannot split into zero blocks");
    let base = total / n as u64;
    let rem = (total % n as u64) as usize;
    (0..n)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes_exact_multiple() {
        assert_eq!(split_sizes(300, 100), vec![100, 100, 100]);
    }

    #[test]
    fn split_sizes_with_remainder() {
        assert_eq!(split_sizes(250, 100), vec![100, 100, 50]);
    }

    #[test]
    fn split_sizes_smaller_than_block() {
        assert_eq!(split_sizes(10, 100), vec![10]);
    }

    #[test]
    fn split_sizes_zero_total() {
        assert!(split_sizes(0, 100).is_empty());
    }

    #[test]
    fn split_into_preserves_total_and_count() {
        let v = split_into(1003, 7);
        assert_eq!(v.len(), 7);
        assert_eq!(v.iter().sum::<u64>(), 1003);
        let (min, max) = (v.iter().min().unwrap(), v.iter().max().unwrap());
        assert!(max - min <= 1, "near-equal split");
    }

    #[test]
    fn split_into_one() {
        assert_eq!(split_into(42, 1), vec![42]);
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn split_into_zero_panics() {
        split_into(1, 0);
    }

    #[test]
    fn display() {
        assert_eq!(BlockId(7).to_string(), "blk7");
    }
}
