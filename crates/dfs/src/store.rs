//! The block → replica-locations store (the paper's `L` matrix).
//!
//! `L_lj = 1` iff node `D_l` stores the block map task `M_j` requires; the
//! scheduler needs `min_{L_lj=1} h_il` (nearest replica) and membership
//! queries (is this placement node-local? rack-local?). [`BlockStore`] keeps
//! replica lists per block and answers both.

use crate::block::BlockId;
use crate::namespace::Namespace;
use crate::placement::{random_writer, ReplicaPlacement};
use pnats_net::{ClusterLayout, NodeId, PathCost};
use rand::rngs::SmallRng;

/// Replica locations for every block of a [`Namespace`].
#[derive(Clone, Debug, Default)]
pub struct BlockStore {
    /// `replicas[block]` = nodes holding a copy, first entry is the writer.
    replicas: Vec<Vec<NodeId>>,
}

impl BlockStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place every block of `ns` that does not yet have replicas, using
    /// `policy` with replication factor `replication`. Writers are chosen
    /// uniformly at random per file (data loaded from outside the cluster).
    pub fn populate(
        &mut self,
        ns: &Namespace,
        layout: &ClusterLayout,
        policy: &dyn ReplicaPlacement,
        replication: usize,
        rng: &mut SmallRng,
    ) {
        self.replicas.resize(ns.n_blocks(), Vec::new());
        for b in 0..ns.n_blocks() {
            if self.replicas[b].is_empty() {
                let writer = random_writer(layout, rng);
                self.replicas[b] = policy.place(writer, replication, layout, rng);
            }
        }
    }

    /// Record explicit replica locations for `block` (tests, worked
    /// examples). Panics if any replica repeats.
    pub fn set_replicas(&mut self, block: BlockId, nodes: Vec<NodeId>) {
        let mut sorted = nodes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), nodes.len(), "duplicate replica nodes");
        if self.replicas.len() <= block.idx() {
            self.replicas.resize(block.idx() + 1, Vec::new());
        }
        self.replicas[block.idx()] = nodes;
    }

    /// Nodes holding a copy of `block`.
    pub fn replicas(&self, block: BlockId) -> &[NodeId] {
        &self.replicas[block.idx()]
    }

    /// Whether `node` holds a copy of `block` (node-locality test).
    pub fn is_local(&self, block: BlockId, node: NodeId) -> bool {
        self.replicas[block.idx()].contains(&node)
    }

    /// Whether any replica of `block` shares a rack with `node`.
    pub fn is_rack_local(&self, block: BlockId, node: NodeId, layout: &ClusterLayout) -> bool {
        self.replicas[block.idx()]
            .iter()
            .any(|r| layout.same_rack(*r, node))
    }

    /// The replica of `block` nearest to `node` under `cost`, with its
    /// path cost — the `min_{L_lj=1} h_il` term of Formula 1.
    ///
    /// Returns `None` for blocks with no replicas.
    pub fn nearest_replica(
        &self,
        block: BlockId,
        node: NodeId,
        cost: &dyn PathCost,
    ) -> Option<(NodeId, f64)> {
        self.replicas[block.idx()]
            .iter()
            .map(|&r| (r, cost.path_cost(node, r)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Number of blocks tracked.
    pub fn n_blocks(&self) -> usize {
        self.replicas.len()
    }

    /// Count of block replicas hosted per node (storage balance metric).
    pub fn replicas_per_node(&self, n_nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_nodes];
        for rs in &self.replicas {
            for r in rs {
                counts[r.idx()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::split_into;
    use crate::placement::{RackAware, UniformRandom};
    use pnats_net::{DistanceMatrix, Topology};
    use rand::SeedableRng;

    const GB: f64 = 1e9 / 8.0;

    #[test]
    fn populate_places_every_block() {
        let topo = Topology::multi_rack(2, 5, GB, GB);
        let mut ns = Namespace::new();
        ns.create_file("in", &split_into(1000, 8));
        let mut store = BlockStore::new();
        let mut rng = SmallRng::seed_from_u64(1);
        store.populate(&ns, topo.layout(), &RackAware, 2, &mut rng);
        assert_eq!(store.n_blocks(), 8);
        for b in 0..8 {
            assert_eq!(store.replicas(BlockId(b)).len(), 2);
        }
    }

    #[test]
    fn populate_is_idempotent_for_placed_blocks() {
        let topo = Topology::single_rack(4, GB);
        let mut ns = Namespace::new();
        ns.create_file("in", &[100]);
        let mut store = BlockStore::new();
        let mut rng = SmallRng::seed_from_u64(2);
        store.populate(&ns, topo.layout(), &UniformRandom, 2, &mut rng);
        let first = store.replicas(BlockId(0)).to_vec();
        store.populate(&ns, topo.layout(), &UniformRandom, 2, &mut rng);
        assert_eq!(store.replicas(BlockId(0)), first.as_slice());
    }

    #[test]
    fn locality_queries() {
        let topo = Topology::multi_rack(2, 2, GB, GB);
        let mut store = BlockStore::new();
        store.set_replicas(BlockId(0), vec![NodeId(0), NodeId(2)]);
        assert!(store.is_local(BlockId(0), NodeId(0)));
        assert!(!store.is_local(BlockId(0), NodeId(1)));
        // Node 1 shares rack 0 with replica on node 0.
        assert!(store.is_rack_local(BlockId(0), NodeId(1), topo.layout()));
        // Node 3 shares rack 1 with replica on node 2.
        assert!(store.is_rack_local(BlockId(0), NodeId(3), topo.layout()));
    }

    #[test]
    fn nearest_replica_minimizes_cost() {
        let h = DistanceMatrix::paper_figure2();
        let mut store = BlockStore::new();
        // Replicas of block 0 on D1 (idx 1) and D3 (idx 3).
        store.set_replicas(BlockId(0), vec![NodeId(1), NodeId(3)]);
        // From D2 (idx 2): h(2,1)=10, h(2,3)=6 -> D3 at 6.
        let (n, c) = store.nearest_replica(BlockId(0), NodeId(2), &h).unwrap();
        assert_eq!(n, NodeId(3));
        assert_eq!(c, 6.0);
        // From D1 itself: local, cost 0.
        let (n, c) = store.nearest_replica(BlockId(0), NodeId(1), &h).unwrap();
        assert_eq!(n, NodeId(1));
        assert_eq!(c, 0.0);
    }

    #[test]
    fn nearest_replica_none_when_unplaced() {
        let mut store = BlockStore::new();
        store.set_replicas(BlockId(0), vec![]);
        let h = DistanceMatrix::zero(2);
        assert!(store.nearest_replica(BlockId(0), NodeId(0), &h).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate replica")]
    fn duplicate_replicas_rejected() {
        let mut store = BlockStore::new();
        store.set_replicas(BlockId(0), vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    fn replica_balance_roughly_uniform() {
        let topo = Topology::single_rack(10, GB);
        let mut ns = Namespace::new();
        ns.create_file("in", &vec![1u64; 500]);
        let mut store = BlockStore::new();
        let mut rng = SmallRng::seed_from_u64(3);
        store.populate(&ns, topo.layout(), &UniformRandom, 2, &mut rng);
        let counts = store.replicas_per_node(10);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        // With 1000 replicas over 10 nodes, each node should hold 100 ± 50.
        for c in counts {
            assert!((50..=150).contains(&c), "badly skewed: {c}");
        }
    }
}
