#![warn(missing_docs)]
//! # pnats-dfs — HDFS-like block substrate
//!
//! The paper's map-task cost model (Formula 1) is driven entirely by *where
//! block replicas live*: `C_m(i,j) = B_j · min_{l : L_lj = 1} h_il`, the
//! block size times the distance to the nearest replica. This crate provides
//! that `L` matrix: a block namespace ([`namespace`]), replica placement
//! policies matching HDFS behaviour ([`placement`]) and the replica lookup
//! structure schedulers query ([`store`]).
//!
//! The paper's experiments store generated input "in slave nodes with the
//! replication factor being set to 2" under stock HDFS placement; the
//! [`placement::RackAware`] policy reproduces that distribution.

pub mod block;
pub mod namespace;
pub mod placement;
pub mod store;

pub use block::{Block, BlockId};
pub use namespace::{FileId, Namespace};
pub use placement::{LocalOnly, RackAware, ReplicaPlacement, UniformRandom};
pub use store::BlockStore;
