//! The engine runtime: virtual nodes, slots, heartbeat-driven placement,
//! threaded task execution.

use crate::api::EngineJob;
use crate::exec::{execute_map, execute_reduce, slowstart_gate, MapProgressGauges};
use pnats_core::context::{
    MapCandidate, MapSchedContext, ReduceCandidate, ReduceSchedContext, ShuffleSource,
};
use pnats_core::faults::FaultPlan;
/// Re-exported from [`pnats_core::partition`] — one definition shared by
/// every runtime (engine, simulator shuffle model, cluster).
pub use pnats_core::partition::Partitioner;
use pnats_core::placer::{Decision, TaskPlacer};
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_dfs::{BlockId, BlockStore, RackAware, ReplicaPlacement};
use pnats_metrics::{LocalityClass, LocalityCounter};
use pnats_net::{ClusterLayout, DistanceMatrix, NodeId, Topology};
use pnats_obs::{DecisionObserver, FaultKind, FaultRecord, SchedCounters, TraceSink};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Engine configuration. The defaults make examples finish in seconds while
/// keeping remote reads visibly slower than local ones.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Virtual nodes.
    pub n_nodes: usize,
    /// Map slots per node.
    pub map_slots: u32,
    /// Reduce slots per node.
    pub reduce_slots: u32,
    /// Input split size in bytes.
    pub block_bytes: usize,
    /// Replication factor for input blocks.
    pub replication: usize,
    /// Driver heartbeat period.
    pub heartbeat: Duration,
    /// Simulated network cost: microseconds per KiB per hop. Local access
    /// is free; a 2-hop 64 KiB read at 20 µs/KiB·hop costs ~2.6 ms.
    pub net_us_per_kib_hop: u64,
    /// Simulated map compute cost: microseconds per KiB of input.
    pub cpu_us_per_kib: u64,
    /// Fraction of maps that must finish before reduces launch.
    pub slowstart: f64,
    /// Shuffle-partition choice.
    pub partitioner: Partitioner,
    /// Seed for replica placement and placer randomness.
    pub seed: u64,
    /// Deterministic fault plan. Crash and recovery times are keyed by
    /// heartbeat *round* (`at as u64` / `recover_at as u64`), since the
    /// engine runs on wall-clock heartbeats rather than simulated seconds;
    /// transient map failures reuse the simulator's seeded per-attempt
    /// draw ([`FaultPlan::map_attempt_fails`]), so retry verdicts match
    /// across runtimes. Heartbeat-loss windows and link degradations are
    /// simulator-only and ignored here — the engine's data plane is
    /// sleep-based, with no links to degrade.
    pub faults: FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            n_nodes: 8,
            map_slots: 2,
            reduce_slots: 1,
            block_bytes: 64 << 10,
            replication: 2,
            heartbeat: Duration::from_millis(4),
            net_us_per_kib_hop: 20,
            cpu_us_per_kib: 30,
            slowstart: 0.25,
            partitioner: Partitioner::Hash,
            seed: 42,
            faults: FaultPlan::none(),
        }
    }
}

/// What a run produces.
pub struct EngineReport {
    /// Final key/value pairs, partition-major (within a partition, sorted
    /// by key — so with a range partitioner the whole output is sorted).
    pub output: Vec<(String, String)>,
    /// Where each map ran relative to its block.
    pub map_locality: LocalityCounter,
    /// Where each reduce ran relative to its dominant input source.
    pub reduce_locality: LocalityCounter,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Map task count.
    pub n_maps: usize,
    /// Reduce task count.
    pub n_reduces: usize,
    /// Placement offers the scheduler declined.
    pub skipped_offers: u64,
    /// Decision counters for the run (offers, assigns, skips by reason,
    /// plus the probabilistic placer's prune/cache tallies).
    pub counters: SchedCounters,
    /// The decision trace as JSONL, when [`MapReduceEngine::run_traced`]
    /// was given an in-memory sink; `None` otherwise.
    pub trace_jsonl: Option<String>,
    /// True when the job was aborted: a map exhausted its transient-failure
    /// retry budget, or every node died with no recovery scheduled. The
    /// output is then partial (whatever reduces had already completed).
    pub failed: bool,
}

/// A map task's partitioned output: per-partition pairs plus byte sizes.
type MapOutput = (Vec<Vec<(String, String)>>, Vec<u64>);
/// Shared store of finished map outputs, filled by the driver.
type OutputStore = Arc<Mutex<Vec<Option<MapOutput>>>>;

enum DoneMsg {
    Map {
        map: usize,
        node: NodeId,
        /// Attempt tag: a message whose tag no longer matches the driver's
        /// current attempt belongs to a crash-killed attempt and is ignored.
        attempt: u32,
        /// Per-partition intermediate pairs and their byte sizes.
        partitions: Vec<Vec<(String, String)>>,
        bytes: Vec<u64>,
    },
    MapFailed {
        map: usize,
        node: NodeId,
        attempt: u32,
    },
    Reduce {
        reduce: usize,
        node: NodeId,
        attempt: u32,
        output: Vec<(String, String)>,
        sources: Vec<(NodeId, u64)>,
    },
}

/// The engine: a virtual cluster ready to run jobs.
pub struct MapReduceEngine {
    cfg: EngineConfig,
    hops: Arc<DistanceMatrix>,
    layout: ClusterLayout,
}

impl MapReduceEngine {
    /// A cluster per `cfg`, on a single-rack star topology (the engine's
    /// network realism lives in hop-proportional read delays, not in link
    /// contention — that is the simulator's job).
    pub fn new(cfg: EngineConfig) -> Self {
        let topo = Topology::single_rack(cfg.n_nodes, 1e9);
        Self {
            hops: Arc::new(DistanceMatrix::hops(&topo)),
            layout: topo.layout().clone(),
            cfg,
        }
    }

    /// Access the engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Split text into blocks of roughly `block_bytes` on line boundaries.
    fn split_blocks(&self, input: &str) -> Vec<String> {
        crate::exec::split_blocks(input, self.cfg.block_bytes)
    }

    fn net_delay(&self, bytes: u64, hops: f64) -> Duration {
        Duration::from_micros((bytes / 1024).max(1) * self.cfg.net_us_per_kib_hop * hops as u64)
    }

    /// Run `job` over `input` with the given task placer. Returns the full
    /// output and placement statistics.
    pub fn run(
        &self,
        job: &EngineJob,
        input: &str,
        placer: Box<dyn TaskPlacer>,
    ) -> EngineReport {
        self.run_observed(job, input, placer, DecisionObserver::disabled())
    }

    /// Like [`run`](Self::run), but routes every placement decision into
    /// `sink` as a [`pnats_obs::DecisionRecord`]. Note the engine runs on
    /// wall-clock heartbeats, so traces are *not* byte-reproducible across
    /// runs the way the simulator's are — use them for inspection, not for
    /// golden-file comparison.
    pub fn run_traced(
        &self,
        job: &EngineJob,
        input: &str,
        placer: Box<dyn TaskPlacer>,
        sink: Box<dyn TraceSink>,
    ) -> EngineReport {
        self.run_observed(job, input, placer, DecisionObserver::with_sink(sink))
    }

    fn run_observed(
        &self,
        job: &EngineJob,
        input: &str,
        mut placer: Box<dyn TaskPlacer>,
        mut observer: DecisionObserver,
    ) -> EngineReport {
        let start = Instant::now();
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let blocks: Arc<Vec<String>> = Arc::new(self.split_blocks(input));
        let n_maps = blocks.len();
        let n_reduces = job.n_reduces;

        // Place replicas.
        let mut store = BlockStore::new();
        for b in 0..n_maps {
            let writer = pnats_dfs::placement::random_writer(&self.layout, &mut rng);
            let reps = RackAware.place(writer, self.cfg.replication, &self.layout, &mut rng);
            store.set_replicas(BlockId(b as u32), reps);
        }

        // Scheduling state (driver-owned).
        let jid = JobId(0);
        let map_cands: Vec<MapCandidate> = (0..n_maps)
            .map(|j| MapCandidate {
                task: MapTaskId { job: jid, index: j as u32 },
                block_size: blocks[j].len() as u64,
                replicas: store.replicas(BlockId(j as u32)).to_vec(),
            })
            .collect();
        let mut unassigned_maps: Vec<usize> = (0..n_maps).collect();
        let mut unassigned_reduces: Vec<usize> = (0..n_reduces).collect();
        let mut free_map: Vec<u32> = vec![self.cfg.map_slots; self.cfg.n_nodes];
        let mut free_reduce: Vec<u32> = vec![self.cfg.reduce_slots; self.cfg.n_nodes];
        let map_node: Arc<Mutex<Vec<Option<NodeId>>>> =
            Arc::new(Mutex::new(vec![None; n_maps]));
        let mut reduce_node: Vec<Option<NodeId>> = vec![None; n_reduces];
        let mut job_reduce_nodes: Vec<NodeId> = Vec::new();
        let mut maps_finished = 0usize;
        let mut reduces_finished = 0usize;
        let mut skipped_offers = 0u64;
        let mut map_locality = LocalityCounter::default();
        let mut reduce_locality = LocalityCounter::default();

        // Fault state. Attempt tags make completions from crash-killed
        // attempts detectable (threads cannot be killed, so their eventual
        // messages must go stale instead).
        self.cfg.faults.validate(self.cfg.n_nodes).expect("invalid fault plan");
        let mut dead = vec![false; self.cfg.n_nodes];
        let mut down_depth = vec![0u32; self.cfg.n_nodes];
        let mut map_attempt: Vec<u32> = vec![0; n_maps];
        let mut map_starts: Vec<u32> = vec![0; n_maps];
        let mut reduce_attempt: Vec<u32> = vec![0; n_reduces];
        let mut reduce_done: Vec<bool> = vec![false; n_reduces];
        let mut failed = false;
        let abort = Arc::new(AtomicBool::new(false));
        // Crash/recover schedule keyed by heartbeat round; within a round,
        // crashes (tag 0) apply before recoveries (tag 1).
        let mut fault_events: Vec<(u64, u8, usize)> = Vec::new();
        for c in &self.cfg.faults.crashes {
            fault_events.push((c.at as u64, 0, c.node));
            if let Some(r) = c.recover_at {
                fault_events.push((r as u64, 1, c.node));
            }
        }
        fault_events.sort_unstable();
        let mut next_fault = 0usize;

        // Cross-thread state.
        let progress: Arc<Vec<MapProgressGauges>> =
            Arc::new((0..n_maps).map(|_| MapProgressGauges::new(n_reduces)).collect());
        let outputs: OutputStore = Arc::new(Mutex::new((0..n_maps).map(|_| None).collect()));
        let all_maps_done = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<DoneMsg>, Receiver<DoneMsg>) = channel();

        let mut final_output: Vec<Vec<(String, String)>> = vec![Vec::new(); n_reduces];

        let mut round = 0u64;
        std::thread::scope(|scope| {
            let mut last_hb = Instant::now() - self.cfg.heartbeat;
            loop {
                // Drain completions.
                while let Ok(msg) = rx.try_recv() {
                    match msg {
                        DoneMsg::Map { map, node, attempt, partitions, bytes } => {
                            if attempt != map_attempt[map] {
                                continue; // crash-killed attempt; output discarded
                            }
                            outputs.lock().unwrap()[map] = Some((partitions, bytes));
                            maps_finished += 1;
                            free_map[node.idx()] += 1;
                            if maps_finished == n_maps {
                                all_maps_done.store(true, Ordering::SeqCst);
                            }
                        }
                        DoneMsg::MapFailed { map, node, attempt } => {
                            if attempt != map_attempt[map] {
                                continue;
                            }
                            map_attempt[map] += 1;
                            free_map[node.idx()] += 1;
                            observer.observe_fault(&FaultRecord {
                                t: start.elapsed().as_secs_f64(),
                                kind: FaultKind::TransientFailure,
                                node: node.0,
                                job: Some(0),
                                task: Some(map as u32),
                            });
                            if map_starts[map] >= self.cfg.faults.max_attempts {
                                failed = true;
                                abort.store(true, Ordering::SeqCst);
                                observer.observe_fault(&FaultRecord {
                                    t: start.elapsed().as_secs_f64(),
                                    kind: FaultKind::JobFailed,
                                    node: node.0,
                                    job: Some(0),
                                    task: Some(map as u32),
                                });
                            } else {
                                map_node.lock().unwrap()[map] = None;
                                unassigned_maps.push(map);
                            }
                        }
                        DoneMsg::Reduce { reduce, node, attempt, output, sources } => {
                            if attempt != reduce_attempt[reduce] {
                                continue;
                            }
                            reduce_done[reduce] = true;
                            reduces_finished += 1;
                            free_reduce[node.idx()] += 1;
                            if let Some(pos) =
                                job_reduce_nodes.iter().position(|n| *n == node)
                            {
                                job_reduce_nodes.swap_remove(pos);
                            }
                            let dominant = sources
                                .iter()
                                .max_by_key(|(_, b)| *b)
                                .map(|(n, _)| *n);
                            reduce_locality.record(match dominant {
                                Some(d) if d == node => LocalityClass::NodeLocal,
                                Some(d) if self.layout.same_rack(d, node) => {
                                    LocalityClass::RackLocal
                                }
                                Some(_) => LocalityClass::Remote,
                                None => LocalityClass::NodeLocal,
                            });
                            final_output[reduce] = output;
                        }
                    }
                }
                if failed {
                    break; // abort flag is set; task threads wind down on their own
                }
                if reduces_finished == n_reduces && maps_finished == n_maps {
                    break;
                }

                if last_hb.elapsed() < self.cfg.heartbeat {
                    std::thread::sleep(Duration::from_micros(300));
                    continue;
                }
                last_hb = Instant::now();
                round += 1;
                placer.on_heartbeat_round(round);
                observer.begin_round(round);

                // Apply due crash/recover events.
                while next_fault < fault_events.len() && fault_events[next_fault].0 <= round {
                    let (_, tag, n) = fault_events[next_fault];
                    next_fault += 1;
                    if tag == 0 {
                        down_depth[n] += 1;
                        if down_depth[n] > 1 {
                            continue;
                        }
                        dead[n] = true;
                        observer.observe_fault(&FaultRecord {
                            t: start.elapsed().as_secs_f64(),
                            kind: FaultKind::NodeCrash,
                            node: n as u32,
                            job: None,
                            task: None,
                        });
                        self.on_engine_crash(
                            n,
                            start,
                            n_maps,
                            n_reduces,
                            &map_node,
                            &outputs,
                            &all_maps_done,
                            &mut map_attempt,
                            &mut unassigned_maps,
                            &mut maps_finished,
                            &mut reduce_attempt,
                            &reduce_done,
                            &mut reduce_node,
                            &mut unassigned_reduces,
                            &mut job_reduce_nodes,
                            &mut observer,
                        );
                    } else {
                        down_depth[n] = down_depth[n].saturating_sub(1);
                        if down_depth[n] > 0 {
                            continue;
                        }
                        dead[n] = false;
                        free_map[n] = self.cfg.map_slots;
                        free_reduce[n] = self.cfg.reduce_slots;
                        observer.observe_fault(&FaultRecord {
                            t: start.elapsed().as_secs_f64(),
                            kind: FaultKind::NodeRecover,
                            node: n as u32,
                            job: None,
                            task: None,
                        });
                    }
                }
                // A whole-cluster permanent blackout can never finish the
                // remaining work — fail the job instead of spinning forever.
                if dead.iter().all(|&d| d)
                    && !fault_events[next_fault..].iter().any(|e| e.1 == 1)
                {
                    failed = true;
                    abort.store(true, Ordering::SeqCst);
                    observer.observe_fault(&FaultRecord {
                        t: start.elapsed().as_secs_f64(),
                        kind: FaultKind::JobFailed,
                        node: 0,
                        job: Some(0),
                        task: None,
                    });
                    break;
                }

                // Heartbeat every node; fill slots through the placer.
                for node_idx in 0..self.cfg.n_nodes {
                    if dead[node_idx] {
                        continue; // dead nodes neither heartbeat nor host work
                    }
                    let node = NodeId(node_idx as u32);
                    // Map slots.
                    while free_map[node.idx()] > 0 && !unassigned_maps.is_empty() {
                        let cands: Vec<MapCandidate> = unassigned_maps
                            .iter()
                            .map(|&m| map_cands[m].clone())
                            .collect();
                        let free_nodes: Vec<NodeId> = (0..self.cfg.n_nodes)
                            .filter(|n| !dead[*n] && free_map[*n] > 0)
                            .map(|n| NodeId(n as u32))
                            .collect();
                        let ctx = MapSchedContext::new(
                            jid,
                            &cands,
                            &free_nodes,
                            self.hops.as_ref(),
                            &self.layout,
                        )
                        .at(start.elapsed().as_secs_f64());
                        let decision = placer.place_map(&ctx, node, &mut rng);
                        observer.observe_map(&ctx, node, decision, placer.last_detail());
                        match decision {
                            Decision::Assign(i) => {
                                let map = unassigned_maps.swap_remove(i);
                                free_map[node.idx()] -= 1;
                                map_node.lock().unwrap()[map] = Some(node);
                                map_locality.record(if cands[i].is_local_to(node) {
                                    LocalityClass::NodeLocal
                                } else if cands[i].is_rack_local_to(node, &self.layout) {
                                    LocalityClass::RackLocal
                                } else {
                                    LocalityClass::Remote
                                });
                                // Same 1-based attempt key as the simulator,
                                // so retry verdicts agree across runtimes.
                                map_starts[map] += 1;
                                let doomed = self.cfg.faults.transient_map_failure_p > 0.0
                                    && self.cfg.faults.map_attempt_fails(
                                        self.cfg.seed,
                                        map,
                                        map_starts[map],
                                    );
                                self.spawn_map(
                                    scope, job, map, node, map_attempt[map], doomed,
                                    &store, &blocks, &progress, tx.clone(),
                                );
                            }
                            Decision::Skip(_) => {
                                skipped_offers += 1;
                                break;
                            }
                        }
                    }
                    // Reduce slots (after slowstart).
                    if maps_finished < slowstart_gate(self.cfg.slowstart, n_maps) {
                        continue;
                    }
                    while free_reduce[node.idx()] > 0 && !unassigned_reduces.is_empty() {
                        let cands: Vec<ReduceCandidate> = unassigned_reduces
                            .iter()
                            .map(|&f| ReduceCandidate {
                                task: ReduceTaskId { job: jid, index: f as u32 },
                                sources: self.shuffle_sources(
                                    f, &map_node.lock().unwrap(), &progress, &blocks,
                                ),
                            })
                            .collect();
                        let free_nodes: Vec<NodeId> = (0..self.cfg.n_nodes)
                            .filter(|n| !dead[*n] && free_reduce[*n] > 0)
                            .map(|n| NodeId(n as u32))
                            .collect();
                        let read_total: u64 = progress
                            .iter()
                            .map(|p| p.d_read.load(Ordering::Relaxed))
                            .sum();
                        let bytes_total: u64 =
                            blocks.iter().map(|b| b.len() as u64).sum();
                        let ctx = ReduceSchedContext::new(
                            jid,
                            &cands,
                            &free_nodes,
                            self.hops.as_ref(),
                            &self.layout,
                        )
                        .running_on(&job_reduce_nodes)
                        .map_phase(
                            read_total as f64 / bytes_total.max(1) as f64,
                            maps_finished,
                            n_maps,
                        )
                        .reduce_phase(n_reduces - unassigned_reduces.len(), n_reduces)
                        .at(start.elapsed().as_secs_f64());
                        let decision = placer.place_reduce(&ctx, node, &mut rng);
                        observer.observe_reduce(&ctx, node, decision, placer.last_detail());
                        match decision {
                            Decision::Assign(i) => {
                                let red = unassigned_reduces.swap_remove(i);
                                free_reduce[node.idx()] -= 1;
                                reduce_node[red] = Some(node);
                                job_reduce_nodes.push(node);
                                self.spawn_reduce(
                                    scope, job, red, node, reduce_attempt[red],
                                    &map_node, &outputs, &all_maps_done, &abort,
                                    tx.clone(),
                                );
                            }
                            Decision::Skip(_) => {
                                skipped_offers += 1;
                                break;
                            }
                        }
                    }
                }
            }
        });

        if let Some(stats) = placer.stats() {
            observer.absorb_placer(stats);
        }
        observer.flush();
        let trace_jsonl = observer.drain_jsonl();
        let output: Vec<(String, String)> = final_output.into_iter().flatten().collect();
        EngineReport {
            output,
            map_locality,
            reduce_locality,
            wall: start.elapsed(),
            n_maps,
            n_reduces,
            skipped_offers,
            counters: observer.counters().clone(),
            trace_jsonl,
            failed,
        }
    }

    /// Apply a node crash to driver state: running map attempts on the node
    /// are rescheduled (their in-flight messages go stale via the attempt
    /// tag), completed map outputs on the node are invalidated and re-run,
    /// and placed-but-unfinished reduces are rescheduled. The two shared
    /// locks are never held together (the reduce threads take them in
    /// sequence too).
    #[allow(clippy::too_many_arguments)]
    fn on_engine_crash(
        &self,
        n: usize,
        start: Instant,
        n_maps: usize,
        n_reduces: usize,
        map_node: &Arc<Mutex<Vec<Option<NodeId>>>>,
        outputs: &OutputStore,
        all_maps_done: &Arc<AtomicBool>,
        map_attempt: &mut [u32],
        unassigned_maps: &mut Vec<usize>,
        maps_finished: &mut usize,
        reduce_attempt: &mut [u32],
        reduce_done: &[bool],
        reduce_node: &mut [Option<NodeId>],
        unassigned_reduces: &mut Vec<usize>,
        job_reduce_nodes: &mut Vec<NodeId>,
        observer: &mut DecisionObserver,
    ) {
        let node = NodeId(n as u32);
        let t = start.elapsed().as_secs_f64();
        let done: Vec<bool> = {
            let outs = outputs.lock().unwrap();
            (0..n_maps).map(|m| outs[m].is_some()).collect()
        };
        let on_node: Vec<bool> = {
            let mn = map_node.lock().unwrap();
            (0..n_maps).map(|m| mn[m] == Some(node)).collect()
        };
        for m in 0..n_maps {
            if !on_node[m] || unassigned_maps.contains(&m) {
                continue;
            }
            if done[m] {
                // Completed output lived on the dead node: invalidate and
                // re-execute, exactly as Hadoop re-runs lost map outputs.
                outputs.lock().unwrap()[m] = None;
                *maps_finished -= 1;
                all_maps_done.store(false, Ordering::SeqCst);
                observer.observe_fault(&FaultRecord {
                    t,
                    kind: FaultKind::MapInvalidated,
                    node: n as u32,
                    job: Some(0),
                    task: Some(m as u32),
                });
            } else {
                observer.observe_fault(&FaultRecord {
                    t,
                    kind: FaultKind::TaskRescheduled,
                    node: n as u32,
                    job: Some(0),
                    task: Some(m as u32),
                });
            }
            // No slot to free: the node is dead, and recovery resets its
            // slot counts wholesale.
            map_attempt[m] += 1;
            map_node.lock().unwrap()[m] = None;
            unassigned_maps.push(m);
        }
        for r in 0..n_reduces {
            if reduce_node[r] != Some(node) || reduce_done[r] {
                continue; // finished reduce output is driver-held, hence durable
            }
            reduce_attempt[r] += 1;
            reduce_node[r] = None;
            unassigned_reduces.push(r);
            if let Some(pos) = job_reduce_nodes.iter().position(|x| *x == node) {
                job_reduce_nodes.swap_remove(pos);
            }
            observer.observe_fault(&FaultRecord {
                t,
                kind: FaultKind::TaskRescheduled,
                node: n as u32,
                job: Some(0),
                task: Some(r as u32),
            });
        }
    }

    /// Build a reduce candidate's shuffle sources from live progress.
    fn shuffle_sources(
        &self,
        partition: usize,
        map_node: &[Option<NodeId>],
        progress: &Arc<Vec<MapProgressGauges>>,
        blocks: &Arc<Vec<String>>,
    ) -> Vec<ShuffleSource> {
        map_node
            .iter()
            .enumerate()
            .filter_map(|(m, node)| {
                node.map(|n| ShuffleSource {
                    node: n,
                    current_bytes: progress[m].part_bytes[partition]
                        .load(Ordering::Relaxed) as f64,
                    input_read: progress[m].d_read.load(Ordering::Relaxed),
                    input_total: blocks[m].len() as u64,
                })
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_map<'s>(
        &'s self,
        scope: &'s Scope<'s, '_>,
        job: &EngineJob,
        map: usize,
        node: NodeId,
        attempt: u32,
        doomed: bool,
        store: &BlockStore,
        blocks: &Arc<Vec<String>>,
        progress: &Arc<Vec<MapProgressGauges>>,
        tx: Sender<DoneMsg>,
    ) {
        let mapper = job.mapper.clone();
        let partitioner = self.cfg.partitioner;
        let n_reduces = job.n_reduces;
        let blocks = blocks.clone();
        let progress = progress.clone();
        let (_, fetch_hops) = store
            .nearest_replica(BlockId(map as u32), node, self.hops.as_ref())
            .expect("blocks have replicas");
        let fetch_delay = self.net_delay(blocks[map].len() as u64, fetch_hops);
        let cpu_us = self.cfg.cpu_us_per_kib;
        scope.spawn(move || {
            std::thread::sleep(fetch_delay);
            if doomed {
                // A transient failure (the seeded draw doomed this attempt):
                // burn a little compute, then report the failure. Progress
                // gauges are left untouched.
                std::thread::sleep(Duration::from_micros(cpu_us * 4));
                let _ = tx.send(DoneMsg::MapFailed { map, node, attempt });
                return;
            }
            // Pace the task at 8 KiB boundaries so progress is observable
            // by the scheduler between heartbeats.
            let (partitions, bytes) = execute_map(
                mapper.as_ref(),
                &blocks[map],
                n_reduces,
                partitioner,
                &progress[map],
                || std::thread::sleep(Duration::from_micros(cpu_us * 8)),
            );
            let _ = tx.send(DoneMsg::Map { map, node, attempt, partitions, bytes });
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_reduce<'s>(
        &'s self,
        scope: &'s Scope<'s, '_>,
        job: &EngineJob,
        reduce: usize,
        node: NodeId,
        attempt: u32,
        map_node: &Arc<Mutex<Vec<Option<NodeId>>>>,
        outputs: &OutputStore,
        all_maps_done: &Arc<AtomicBool>,
        abort: &Arc<AtomicBool>,
        tx: Sender<DoneMsg>,
    ) {
        let reducer = job.reducer.clone();
        let outputs = outputs.clone();
        let all_maps_done = all_maps_done.clone();
        let abort = abort.clone();
        let hops = self.hops.clone();
        let net_us = self.cfg.net_us_per_kib_hop;
        let map_node = map_node.clone();
        let n_maps = map_node.lock().unwrap().len();
        scope.spawn(move || {
            // Shuffle: wait for the map phase, then pull this partition
            // from every map output (network delay per remote source).
            while !all_maps_done.load(Ordering::SeqCst) {
                if abort.load(Ordering::SeqCst) {
                    return; // the job failed; unblock the driver's join
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let mut pairs: Vec<(String, String)> = Vec::new();
            let mut per_source: Vec<(NodeId, u64)> = Vec::new();
            for m in 0..n_maps {
                // Per-map wait: a crash can invalidate an output even after
                // the map phase once looked complete — re-fetch from the
                // re-executed attempt. The two locks are taken in sequence,
                // never nested (same discipline as the driver).
                let (part, sz, src) = loop {
                    if abort.load(Ordering::SeqCst) {
                        return;
                    }
                    let snap = {
                        let guard = outputs.lock().unwrap();
                        guard[m]
                            .as_ref()
                            .map(|(parts, bytes)| (parts[reduce].clone(), bytes[reduce]))
                    };
                    if let Some((part, sz)) = snap {
                        if let Some(src) = map_node.lock().unwrap()[m] {
                            break (part, sz, src);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(500));
                };
                let h = hops.get(src, NodeId(node.0));
                if h > 0.0 && sz > 0 {
                    std::thread::sleep(Duration::from_micros(
                        (sz / 1024).max(1) * net_us * h as u64,
                    ));
                }
                if sz > 0 {
                    match per_source.iter_mut().find(|(n, _)| *n == src) {
                        Some(e) => e.1 += sz,
                        None => per_source.push((src, sz)),
                    }
                }
                pairs.extend(part);
            }
            let output = execute_reduce(reducer.as_ref(), pairs);
            let _ =
                tx.send(DoneMsg::Reduce { reduce, node, attempt, output, sources: per_source });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::WordCountJob;
    use pnats_core::prob_sched::ProbabilisticPlacer;
    use std::collections::HashMap;

    fn tiny_engine() -> MapReduceEngine {
        MapReduceEngine::new(EngineConfig {
            n_nodes: 4,
            block_bytes: 512,
            heartbeat: Duration::from_millis(1),
            net_us_per_kib_hop: 5,
            cpu_us_per_kib: 5,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn wordcount_counts_correctly() {
        let eng = tiny_engine();
        let input = "apple banana apple\ncherry banana apple\n".repeat(40);
        let job = EngineJob::new(
            "wc",
            Arc::new(WordCountJob),
            Arc::new(WordCountJob),
            3,
        );
        let report = eng.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
        let counts: HashMap<String, u64> = report
            .output
            .iter()
            .map(|(k, v)| (k.clone(), v.parse().unwrap()))
            .collect();
        assert_eq!(counts["apple"], 120);
        assert_eq!(counts["banana"], 80);
        assert_eq!(counts["cherry"], 40);
        assert!(report.n_maps > 1, "input should split into several blocks");
        assert_eq!(report.map_locality.total() as usize, report.n_maps);
        assert_eq!(report.reduce_locality.total() as usize, report.n_reduces);
    }

    #[test]
    fn block_splitting_respects_lines() {
        let eng = tiny_engine();
        let input = (0..100).map(|i| format!("line-{i}")).collect::<Vec<_>>().join("\n");
        let blocks = eng.split_blocks(&input);
        assert!(blocks.len() > 1);
        let rejoined: String = blocks.concat();
        assert_eq!(rejoined.lines().count(), 100);
        for b in &blocks {
            assert!(b.ends_with('\n') || b == blocks.last().unwrap());
        }
    }

    #[test]
    fn empty_input_still_completes() {
        let eng = tiny_engine();
        let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 2);
        let report = eng.run(&job, "", Box::new(ProbabilisticPlacer::paper()));
        assert!(report.output.is_empty());
    }

    #[test]
    fn counters_cover_every_offer() {
        let eng = tiny_engine();
        let input = "alpha beta gamma\n".repeat(60);
        let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 2);
        let report = eng.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
        assert!(report.counters.consistent(), "{:?}", report.counters);
        assert_eq!(report.counters.total_skips(), report.skipped_offers);
        // Every task launched exactly once.
        assert_eq!(
            report.counters.assigns as usize,
            report.n_maps + report.n_reduces
        );
        assert!(report.trace_jsonl.is_none(), "default run does not trace");
    }

    #[test]
    fn transient_failures_retry_to_completion() {
        let mut cfg = EngineConfig {
            n_nodes: 4,
            block_bytes: 512,
            heartbeat: Duration::from_millis(1),
            net_us_per_kib_hop: 5,
            cpu_us_per_kib: 5,
            ..EngineConfig::default()
        };
        cfg.faults.transient_map_failure_p = 0.5;
        cfg.faults.max_attempts = 16;
        let seed = cfg.seed;
        let plan = cfg.faults.clone();
        let eng = MapReduceEngine::new(cfg);
        let input = "apple banana apple\ncherry banana apple\n".repeat(40);
        let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 3);
        let report = eng.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
        assert!(!report.failed);
        let counts: HashMap<String, u64> = report
            .output
            .iter()
            .map(|(k, v)| (k.clone(), v.parse().unwrap()))
            .collect();
        assert_eq!(counts["apple"], 120);
        assert_eq!(counts["banana"], 80);
        assert_eq!(counts["cherry"], 40);
        assert!(report.counters.consistent(), "{:?}", report.counters);
        // No crashes, so each map's attempts run strictly in sequence and
        // the retry count is exactly recomputable from the seeded draw.
        let expected: u64 = (0..report.n_maps)
            .map(|m| {
                (1..).take_while(|&a| plan.map_attempt_fails(seed, m, a)).count() as u64
            })
            .sum();
        assert!(expected > 0, "p=0.5 over several maps should doom some attempt");
        assert_eq!(report.counters.retries, expected);
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_engine_job() {
        let mut cfg = EngineConfig {
            n_nodes: 4,
            block_bytes: 512,
            heartbeat: Duration::from_millis(1),
            net_us_per_kib_hop: 5,
            cpu_us_per_kib: 5,
            ..EngineConfig::default()
        };
        cfg.faults.transient_map_failure_p = 1.0;
        cfg.faults.max_attempts = 2;
        let eng = MapReduceEngine::new(cfg);
        let input = "alpha beta gamma\n".repeat(60);
        let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 2);
        let report = eng.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
        assert!(report.failed, "p=1.0 must exhaust every retry budget");
        assert!(report.output.is_empty(), "no reduce can have run");
        assert!(report.counters.retries >= 2, "{:?}", report.counters);
        assert!(report.counters.consistent(), "{:?}", report.counters);
    }

    #[test]
    fn crash_and_recovery_preserves_output_correctness() {
        use pnats_core::faults::NodeCrash;
        let mut cfg = EngineConfig {
            n_nodes: 4,
            // Blocks past the 8 KiB pacing boundary with slow compute: each
            // map sleeps ~12 ms mid-task, so the driver loop is still
            // heart-beating when rounds 5 and 8 fire — the crashes land
            // mid-run, whatever the thread timing.
            block_bytes: 8192,
            heartbeat: Duration::from_millis(1),
            net_us_per_kib_hop: 5,
            cpu_us_per_kib: 1500,
            ..EngineConfig::default()
        };
        cfg.faults.crashes = vec![
            NodeCrash { node: 1, at: 5.0, recover_at: Some(60.0) },
            NodeCrash { node: 2, at: 8.0, recover_at: None },
        ];
        let eng = MapReduceEngine::new(cfg);
        let input = "apple banana apple\ncherry banana apple\n".repeat(1000);
        let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 3);
        let report = eng.run(&job, &input, Box::new(ProbabilisticPlacer::paper()));
        assert!(!report.failed);
        let counts: HashMap<String, u64> = report
            .output
            .iter()
            .map(|(k, v)| (k.clone(), v.parse().unwrap()))
            .collect();
        assert_eq!(counts["apple"], 3000);
        assert_eq!(counts["banana"], 2000);
        assert_eq!(counts["cherry"], 1000);
        assert_eq!(report.counters.node_crashes, 2, "{:?}", report.counters);
        assert!(report.counters.consistent(), "{:?}", report.counters);
    }

    #[test]
    fn traced_run_emits_one_record_per_offer() {
        let eng = tiny_engine();
        let input = "alpha beta gamma\n".repeat(60);
        let job = EngineJob::new("wc", Arc::new(WordCountJob), Arc::new(WordCountJob), 2);
        let report = eng.run_traced(
            &job,
            &input,
            Box::new(ProbabilisticPlacer::paper()),
            Box::new(pnats_obs::InMemorySink::unbounded()),
        );
        let trace = report.trace_jsonl.expect("in-memory sink drains");
        assert_eq!(trace.lines().count() as u64, report.counters.offers);
        assert!(trace.lines().all(|l| l.starts_with("{\"t\":")), "JSONL shape");
    }
}
