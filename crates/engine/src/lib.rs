#![warn(missing_docs)]
//! # pnats-engine — a threaded, in-memory MapReduce framework
//!
//! The discrete-event simulator (`pnats-sim`) answers the paper's
//! *performance* questions at testbed scale; this crate answers the
//! *integration* question: the schedulers really do drive a working
//! MapReduce execution, end to end, on real data.
//!
//! It is a deliberately small Hadoop-1.x-shaped runtime:
//!
//! * a block store ([`pnats_dfs`]) holding real bytes, split and replicated
//!   across virtual nodes of a [`pnats_net::Topology`];
//! * per-node **map/reduce slots** served by OS threads;
//! * a driver thread playing JobTracker: it heartbeats every few
//!   milliseconds and fills free slots through the *same*
//!   [`pnats_core::placer::TaskPlacer`] trait the simulator uses — the
//!   paper's scheduler and every baseline plug in unmodified;
//! * real [`api::Mapper`]/[`api::Reducer`] user code with a hash
//!   partitioner and an in-memory shuffle; remote reads cost a simulated
//!   network delay proportional to `bytes × hops`, so placement quality is
//!   observable in wall-clock time;
//! * live progress counters (`d_read`, per-partition `A_jf`) published by
//!   running map tasks — the heartbeat report the paper's intermediate-size
//!   estimator consumes.
//!
//! Built-in jobs ([`jobs`]): WordCount, Grep and TeraSort — the paper's
//! three applications.

pub mod api;
pub mod engine;
pub mod exec;
pub mod jobs;

pub use api::{EngineJob, Mapper, Reducer};
pub use engine::{EngineConfig, EngineReport, MapReduceEngine};
pub use jobs::{GrepJob, TeraSortJob, WordCountJob};
