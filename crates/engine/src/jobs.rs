//! The paper's three applications as engine jobs.

use crate::api::{Emit, Mapper, Reducer};

/// WordCount: emit `(word, 1)` per word, sum per word.
pub struct WordCountJob;

impl Mapper for WordCountJob {
    fn map(&self, _offset: u64, line: &str, emit: &mut Emit<'_>) {
        for word in line.split_whitespace() {
            emit(word.to_string(), "1".to_string());
        }
    }
}

impl Reducer for WordCountJob {
    fn reduce(&self, key: &str, values: &[String], emit: &mut Emit<'_>) {
        let sum: u64 = values.iter().map(|v| v.parse::<u64>().unwrap_or(0)).sum();
        emit(key.to_string(), sum.to_string());
    }
}

/// Grep: emit matching lines keyed by the needle; the reducer counts them.
pub struct GrepJob {
    /// Substring to search for.
    pub needle: String,
}

impl Mapper for GrepJob {
    fn map(&self, offset: u64, line: &str, emit: &mut Emit<'_>) {
        if line.contains(&self.needle) {
            emit(self.needle.clone(), format!("{offset}:{line}"));
        }
    }
}

impl Reducer for GrepJob {
    fn reduce(&self, key: &str, values: &[String], emit: &mut Emit<'_>) {
        emit(key.to_string(), values.len().to_string());
    }
}

/// TeraSort: identity map keyed by the record's 10-char key; the engine's
/// sort-by-key shuffle/merge performs the sort, the reducer re-emits
/// records in order.
pub struct TeraSortJob;

impl Mapper for TeraSortJob {
    fn map(&self, _offset: u64, line: &str, emit: &mut Emit<'_>) {
        if line.len() >= 10 {
            emit(line[..10].to_string(), line[10..].to_string());
        }
    }
}

impl Reducer for TeraSortJob {
    fn reduce(&self, key: &str, values: &[String], emit: &mut Emit<'_>) {
        for v in values {
            emit(key.to_string(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_map(m: &dyn Mapper, line: &str) -> Vec<(String, String)> {
        let mut out = Vec::new();
        m.map(0, line, &mut |k, v| out.push((k, v)));
        out
    }

    #[test]
    fn wordcount_map_and_reduce() {
        let kv = run_map(&WordCountJob, "a b a");
        assert_eq!(kv.len(), 3);
        let mut out = Vec::new();
        WordCountJob.reduce("a", &["1".into(), "1".into()], &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![("a".to_string(), "2".to_string())]);
    }

    #[test]
    fn grep_matches_only() {
        let g = GrepJob { needle: "foo".into() };
        assert_eq!(run_map(&g, "has foo inside").len(), 1);
        assert!(run_map(&g, "nothing here").is_empty());
    }

    #[test]
    fn terasort_splits_key_payload() {
        let kv = run_map(&TeraSortJob, "ABCDEFGHIJrest-of-record");
        assert_eq!(kv, vec![("ABCDEFGHIJ".into(), "rest-of-record".into())]);
        assert!(run_map(&TeraSortJob, "short").is_empty());
    }
}
