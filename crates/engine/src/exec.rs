//! Runtime-agnostic task execution.
//!
//! The threaded engine and the TCP cluster runtime must produce
//! *byte-identical* final outputs for the same job, input and seed — that
//! is the parity gate that lets the cluster's distributed control plane be
//! validated against the engine's in-process one. Output bytes are fully
//! determined by three things, all of which live here so the two runtimes
//! cannot drift:
//!
//! * how input text splits into blocks ([`split_blocks`]);
//! * how a mapper's emissions partition across reducers ([`execute_map`],
//!   via [`pnats_core::Partitioner`]);
//! * how a reducer's input is ordered and grouped ([`execute_reduce`]:
//!   pairs are collected in map-index order, then stably sorted by key, so
//!   values within a key always arrive in map-index emission order).
//!
//! Placement decisions, message timing and fault recovery affect *when*
//! work runs and *where* bytes travel — never what they are.

use crate::api::{Emit, Mapper, Reducer};
use pnats_core::partition::Partitioner;
use std::sync::atomic::{AtomicU64, Ordering};

/// Published progress of one running map task — the live counters a
/// heartbeat reports (`d_read` and per-partition `A_jf` in the paper's
/// notation). The engine reads them in-process; a cluster worker snapshots
/// them into its next heartbeat message.
pub struct MapProgressGauges {
    /// Input bytes consumed so far (`d_read`).
    pub d_read: AtomicU64,
    /// Intermediate bytes emitted per reduce partition so far (`A_jf`).
    pub part_bytes: Vec<AtomicU64>,
}

impl MapProgressGauges {
    /// Zeroed gauges for a job with `n_reduces` partitions.
    pub fn new(n_reduces: usize) -> Self {
        Self {
            d_read: AtomicU64::new(0),
            part_bytes: (0..n_reduces).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Reset to zero (a re-executed attempt starts over).
    pub fn reset(&self) {
        self.d_read.store(0, Ordering::Relaxed);
        for b in &self.part_bytes {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Split text into blocks of roughly `block_bytes` on line boundaries.
/// Every input — even empty — yields at least one block, so every job has
/// at least one map task.
pub fn split_blocks(input: &str, block_bytes: usize) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut cur = String::new();
    for line in input.lines() {
        cur.push_str(line);
        cur.push('\n');
        if cur.len() >= block_bytes {
            blocks.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        blocks.push(cur);
    }
    if blocks.is_empty() {
        blocks.push(String::new());
    }
    blocks
}

/// Run one map attempt over a block: per-line mapper calls, partitioned
/// emission, live gauge updates. `pace` fires roughly every 8 KiB of input
/// consumed — the engine sleeps there to make progress observable between
/// heartbeats; a cluster worker can use it as a cancellation point.
///
/// Returns per-partition intermediate pairs and their byte sizes. The
/// result is a pure function of `(text, mapper, partitioner, n_reduces)` —
/// gauges and pacing affect observability, never output.
pub fn execute_map(
    mapper: &dyn Mapper,
    text: &str,
    n_reduces: usize,
    partitioner: Partitioner,
    gauges: &MapProgressGauges,
    mut pace: impl FnMut(),
) -> (Vec<Vec<(String, String)>>, Vec<u64>) {
    let mut partitions: Vec<Vec<(String, String)>> = vec![Vec::new(); n_reduces];
    let mut bytes = vec![0u64; n_reduces];
    let mut offset = 0u64;
    for line in text.lines() {
        let emit: &mut Emit<'_> = &mut |k: String, v: String| {
            let part = partitioner.of(&k, n_reduces);
            let sz = (k.len() + v.len()) as u64;
            bytes[part] += sz;
            gauges.part_bytes[part].fetch_add(sz, Ordering::Relaxed);
            partitions[part].push((k, v));
        };
        mapper.map(offset, line, emit);
        offset += line.len() as u64 + 1;
        gauges.d_read.store(offset.min(text.len() as u64), Ordering::Relaxed);
        if offset % 8192 < line.len() as u64 + 1 {
            pace();
        }
    }
    gauges.d_read.store(text.len() as u64, Ordering::Relaxed);
    (partitions, bytes)
}

/// Run one reduce attempt: stable sort by key, group, reduce. `pairs` must
/// be the task's partition from every map output concatenated in
/// *map-index order* — the stable sort then yields a deterministic value
/// order within each key, independent of fetch timing or placement.
pub fn execute_reduce(
    reducer: &dyn Reducer,
    mut pairs: Vec<(String, String)>,
) -> Vec<(String, String)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut output = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let values: Vec<String> = pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
        reducer.reduce(&pairs[i].0, &values, &mut |k, v| output.push((k, v)));
        i = j;
    }
    output
}

/// Maps that must finish before reduces launch (Hadoop's
/// `mapreduce.job.reduce.slowstart.completedmaps`).
pub fn slowstart_gate(slowstart: f64, n_maps: usize) -> usize {
    ((slowstart * n_maps as f64).ceil() as usize).min(n_maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::WordCountJob;

    #[test]
    fn split_blocks_round_trips_and_never_empty() {
        let input = (0..100).map(|i| format!("line-{i}")).collect::<Vec<_>>().join("\n");
        let blocks = split_blocks(&input, 128);
        assert!(blocks.len() > 1);
        assert_eq!(blocks.concat().lines().count(), 100);
        assert_eq!(split_blocks("", 128), vec![String::new()]);
    }

    #[test]
    fn execute_map_is_deterministic_and_updates_gauges() {
        let text = "apple banana apple\ncherry banana apple\n".repeat(300);
        let gauges = MapProgressGauges::new(3);
        let mut paced = 0u32;
        let (parts, bytes) =
            execute_map(&WordCountJob, &text, 3, Partitioner::Hash, &gauges, || paced += 1);
        let (parts2, bytes2) = execute_map(
            &WordCountJob,
            &text,
            3,
            Partitioner::Hash,
            &MapProgressGauges::new(3),
            || {},
        );
        assert_eq!(parts, parts2, "output independent of pacing/gauges");
        assert_eq!(bytes, bytes2);
        assert_eq!(gauges.d_read.load(Ordering::Relaxed), text.len() as u64);
        for (p, b) in bytes.iter().enumerate() {
            assert_eq!(gauges.part_bytes[p].load(Ordering::Relaxed), *b);
        }
        assert!(paced > 0, "a {}-byte block crosses 8 KiB boundaries", text.len());
        gauges.reset();
        assert_eq!(gauges.d_read.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn execute_reduce_groups_in_stable_order() {
        // Duplicate keys: values must keep their concatenation order.
        let pairs = vec![
            ("b".to_string(), "1".to_string()),
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "1".to_string()),
            ("a".to_string(), "1".to_string()),
        ];
        let out = execute_reduce(&WordCountJob, pairs);
        assert_eq!(
            out,
            vec![("a".to_string(), "2".to_string()), ("b".to_string(), "2".to_string())]
        );
    }

    #[test]
    fn slowstart_gate_bounds() {
        assert_eq!(slowstart_gate(0.25, 8), 2);
        assert_eq!(slowstart_gate(0.25, 1), 1);
        assert_eq!(slowstart_gate(0.0, 8), 0);
        assert_eq!(slowstart_gate(1.0, 8), 8);
        assert_eq!(slowstart_gate(2.0, 8), 8, "clamped to n_maps");
    }
}
