//! User-facing job API: mappers, reducers, job descriptions.

use std::sync::Arc;

/// Emits intermediate or final key/value pairs.
pub type Emit<'a> = dyn FnMut(String, String) + 'a;

/// The map function: called once per input line (Hadoop's TextInputFormat
/// semantics — key is the byte offset, value the line).
pub trait Mapper: Send + Sync {
    /// Process one input record.
    fn map(&self, offset: u64, line: &str, emit: &mut Emit<'_>);
}

/// The reduce function: called once per distinct key with all its values.
pub trait Reducer: Send + Sync {
    /// Process one key group.
    fn reduce(&self, key: &str, values: &[String], emit: &mut Emit<'_>);
}

/// A runnable MapReduce job.
#[derive(Clone)]
pub struct EngineJob {
    /// Display name.
    pub name: String,
    /// Map function.
    pub mapper: Arc<dyn Mapper>,
    /// Reduce function.
    pub reducer: Arc<dyn Reducer>,
    /// Number of reduce tasks (= shuffle partitions).
    pub n_reduces: usize,
}

impl EngineJob {
    /// A job named `name` over the given user code.
    pub fn new(
        name: impl Into<String>,
        mapper: Arc<dyn Mapper>,
        reducer: Arc<dyn Reducer>,
        n_reduces: usize,
    ) -> Self {
        assert!(n_reduces > 0, "jobs need at least one reduce partition");
        Self { name: name.into(), mapper, reducer, n_reduces }
    }
}

/// Re-exported from [`pnats_core::partition`] — one definition shared by
/// every runtime (engine, simulator shuffle model, cluster).
pub use pnats_core::partition::partition_of;

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity;
    impl Mapper for Identity {
        fn map(&self, _o: u64, line: &str, emit: &mut Emit<'_>) {
            emit(line.to_string(), "1".to_string());
        }
    }
    impl Reducer for Identity {
        fn reduce(&self, key: &str, values: &[String], emit: &mut Emit<'_>) {
            emit(key.to_string(), values.len().to_string());
        }
    }

    #[test]
    fn partition_reexport_is_the_core_definition() {
        assert_eq!(partition_of("hello", 157), pnats_core::partition_of("hello", 157));
    }

    #[test]
    fn job_construction() {
        let j = EngineJob::new("j", Arc::new(Identity), Arc::new(Identity), 3);
        assert_eq!(j.name, "j");
        assert_eq!(j.n_reduces, 3);
    }

    #[test]
    #[should_panic(expected = "at least one reduce")]
    fn zero_reduces_rejected() {
        EngineJob::new("j", Arc::new(Identity), Arc::new(Identity), 0);
    }
}
