//! Property tests of the CDF and summary statistics.

use pnats_metrics::{Cdf, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cdf_is_a_distribution_function(samples in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let c = Cdf::new(samples.clone());
        // Monotone, bounded, complete.
        let mut last = 0.0;
        for (x, f) in c.steps() {
            prop_assert!(f >= last);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(x.is_finite());
            last = f;
        }
        prop_assert_eq!(c.fraction_at(f64::MAX), 1.0);
        prop_assert_eq!(c.fraction_at(c.min().unwrap() - 1.0), 0.0);
    }

    #[test]
    fn quantile_and_fraction_are_consistent(
        samples in proptest::collection::vec(0.0f64..1e6, 1..100),
        q in 0.01f64..1.0,
    ) {
        let c = Cdf::new(samples);
        let x = c.quantile(q);
        // At least q of the mass is at or below the q-quantile.
        prop_assert!(c.fraction_at(x) >= q - 1e-9);
    }

    #[test]
    fn summary_orders_its_quantiles(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert!(s.min <= s.p25);
        prop_assert!(s.p25 <= s.p50);
        prop_assert!(s.p50 <= s.p75);
        prop_assert!(s.p75 <= s.p95);
        prop_assert!(s.p95 <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert_eq!(s.n, samples.len());
    }

    #[test]
    fn series_is_monotone_and_spans(samples in proptest::collection::vec(0.0f64..1e3, 2..100)) {
        let c = Cdf::new(samples);
        let s = c.series(17);
        prop_assert_eq!(s.len(), 17);
        prop_assert_eq!(s[0].0, c.min().unwrap());
        prop_assert_eq!(s[16].0, c.max().unwrap());
        prop_assert_eq!(s[16].1, 1.0);
        for w in s.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
    }
}
