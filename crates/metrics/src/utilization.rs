//! Slot-utilization timelines.
//!
//! The paper claims better "cluster resource utilization"; concretely, the
//! fraction of configured slots busy over time. The timeline records busy-
//! count *change events* and integrates them.

/// A step function of busy slots over time, built from change events.
#[derive(Clone, Debug)]
pub struct UtilizationTimeline {
    capacity: u64,
    /// (time, delta) events; +1 task start, -1 task end.
    events: Vec<(f64, i64)>,
}

impl UtilizationTimeline {
    /// A timeline for a cluster with `capacity` total slots.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0);
        Self { capacity, events: Vec::new() }
    }

    /// Record a slot becoming busy at `t`.
    pub fn start(&mut self, t: f64) {
        self.events.push((t, 1));
    }

    /// Record a slot becoming free at `t`.
    pub fn end(&mut self, t: f64) {
        self.events.push((t, -1));
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The busy-count step function as `(time, busy)` points, one per
    /// distinct event time, sorted.
    pub fn steps(&self) -> Vec<(f64, u64)> {
        let mut ev = self.events.clone();
        ev.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut out: Vec<(f64, u64)> = Vec::new();
        let mut busy: i64 = 0;
        for (t, d) in ev {
            busy += d;
            debug_assert!(busy >= 0, "more ends than starts");
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 = busy as u64,
                _ => out.push((t, busy as u64)),
            }
        }
        out
    }

    /// Time-weighted mean utilization (busy / capacity) over `[t0, t1]`.
    pub fn mean_utilization(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 > t0);
        let steps = self.steps();
        if steps.is_empty() {
            return 0.0;
        }
        let mut area = 0.0;
        let mut prev_t = t0;
        let mut prev_busy = 0u64;
        for (t, busy) in steps {
            if t <= t0 {
                prev_busy = busy;
                continue;
            }
            if t >= t1 {
                break;
            }
            area += (t - prev_t) * prev_busy as f64;
            prev_t = t;
            prev_busy = busy;
        }
        area += (t1 - prev_t) * prev_busy as f64;
        area / ((t1 - t0) * self.capacity as f64)
    }

    /// Peak busy count.
    pub fn peak(&self) -> u64 {
        self.steps().into_iter().map(|(_, b)| b).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_utilization() {
        // 1 of 2 slots busy from t=0 to t=10 within a [0, 20] window: 25%.
        let mut u = UtilizationTimeline::new(2);
        u.start(0.0);
        u.end(10.0);
        assert!((u.mean_utilization(0.0, 20.0) - 0.25).abs() < 1e-12);
        assert_eq!(u.peak(), 1);
    }

    #[test]
    fn overlapping_tasks() {
        let mut u = UtilizationTimeline::new(4);
        u.start(0.0);
        u.start(0.0);
        u.end(5.0);
        u.end(10.0);
        // busy: 2 for [0,5), 1 for [5,10) -> area 15 over 40.
        assert!((u.mean_utilization(0.0, 10.0) - 15.0 / 40.0).abs() < 1e-12);
        assert_eq!(u.peak(), 2);
    }

    #[test]
    fn window_clipping() {
        let mut u = UtilizationTimeline::new(1);
        u.start(0.0);
        u.end(100.0);
        // Fully busy inside any sub-window.
        assert!((u.mean_utilization(10.0, 20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let u = UtilizationTimeline::new(3);
        assert_eq!(u.mean_utilization(0.0, 1.0), 0.0);
        assert_eq!(u.peak(), 0);
    }

    #[test]
    fn steps_merge_simultaneous_events() {
        let mut u = UtilizationTimeline::new(2);
        u.start(1.0);
        u.start(1.0);
        let s = u.steps();
        assert_eq!(s, vec![(1.0, 2)]);
    }
}
