//! Plain-text rendering of tables and figure series.
//!
//! Every bench binary prints its table/figure data through these helpers so
//! `repro_all`'s output (and EXPERIMENTS.md) has one uniform shape.

/// Render an aligned text table. `rows` are cell strings; column widths are
/// fitted to content.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    for r in rows {
        assert_eq!(r.len(), ncols, "row arity mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    out.push_str("== ");
    out.push_str(title);
    out.push_str(" ==\n");
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    out
}

/// Render one or more named `(x, y)` series sharing an x axis — the shape
/// of every CDF figure. Series are printed as columns against the union of
/// x values; missing points interpolate as the previous y (step semantics).
pub fn render_series(
    title: &str,
    x_label: &str,
    series: &[(&str, Vec<(f64, f64)>)],
) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let headers: Vec<&str> = std::iter::once(x_label)
        .chain(series.iter().map(|(n, _)| *n))
        .collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|x| {
            let mut row = vec![format!("{x:.3}")];
            for (_, pts) in series {
                // Step interpolation: last y at or before x.
                let y = pts
                    .iter()
                    .take_while(|(px, _)| *px <= *x + 1e-12)
                    .last()
                    .map(|(_, y)| *y);
                row.push(match y {
                    Some(y) => format!("{y:.4}"),
                    None => "-".to_string(),
                });
            }
            row
        })
        .collect();
    render_table(title, &headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            "Demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        assert!(out.contains("== Demo =="));
        assert!(out.contains("long-name  22"));
        // Header padded to widest cell.
        assert!(out.contains("name       value"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_rejected() {
        render_table("x", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn series_aligns_on_union_of_x() {
        let out = render_series(
            "CDF",
            "t",
            &[
                ("ours", vec![(1.0, 0.5), (2.0, 1.0)]),
                ("base", vec![(2.0, 0.5), (3.0, 1.0)]),
            ],
        );
        assert!(out.contains("t"));
        assert!(out.contains("ours"));
        assert!(out.contains("base"));
        // x=1: base has no point yet -> "-".
        let line1 = out.lines().find(|l| l.starts_with("1.000")).unwrap();
        assert!(line1.contains('-'), "{line1}");
        // x=3: ours steps at 1.0 (carried), base reaches 1.0.
        let line3 = out.lines().find(|l| l.starts_with("3.000")).unwrap();
        assert!(line3.matches("1.0000").count() == 2, "{line3}");
    }
}
