#![warn(missing_docs)]
//! # pnats-metrics — evaluation metrics and report formatting
//!
//! Everything §III of the paper measures, as reusable types:
//!
//! * [`cdf`] — empirical CDFs (Figures 3, 4, 5, 6 are all CDF plots).
//! * [`stats`] — means, percentiles and reduction percentages (the
//!   "decreases the job processing time by 17 % / 46 %" summary numbers).
//! * [`locality`] — local-node / local-rack / remote task accounting
//!   (Table III and Figure 7).
//! * [`utilization`] — busy-slot timelines and average utilization (the
//!   paper's cluster-resource-utilization claims).
//! * [`table`] — plain-text table / series rendering used by the bench
//!   binaries so every figure's data prints in a uniform shape.

pub mod cdf;
pub mod locality;
pub mod stats;
pub mod table;
pub mod utilization;

pub use cdf::Cdf;
pub use locality::{LocalityClass, LocalityCounter};
pub use stats::{jain_index, percentile, reduction_pct, Summary};
pub use table::{render_series, render_table};
pub use utilization::UtilizationTimeline;
