//! Locality accounting (paper §III-C, Table III and Figure 7).
//!
//! "A map or reduce task that is assigned to a machine with data for that
//! task is referred to as a *local task*. A [task] assigned to a machine
//! without local data but in the rack having the machine with local data is
//! a *local rack task*, and other [tasks] are *remote tasks*."

use std::fmt;
use std::ops::AddAssign;

/// Where a task ran relative to its data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LocalityClass {
    /// Data on the execution node.
    NodeLocal,
    /// Data in the execution node's rack (but not on the node).
    RackLocal,
    /// Data entirely outside the rack.
    Remote,
}

impl fmt::Display for LocalityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LocalityClass::NodeLocal => "local",
            LocalityClass::RackLocal => "rack-local",
            LocalityClass::Remote => "remote",
        })
    }
}

/// Tallies of tasks per locality class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalityCounter {
    /// Node-local task count.
    pub node_local: u64,
    /// Rack-local task count.
    pub rack_local: u64,
    /// Remote task count.
    pub remote: u64,
}

impl LocalityCounter {
    /// Record one task of the given class.
    pub fn record(&mut self, class: LocalityClass) {
        match class {
            LocalityClass::NodeLocal => self.node_local += 1,
            LocalityClass::RackLocal => self.rack_local += 1,
            LocalityClass::Remote => self.remote += 1,
        }
    }

    /// Total tasks recorded.
    pub fn total(&self) -> u64 {
        self.node_local + self.rack_local + self.remote
    }

    /// Percentage of node-local tasks (0 when empty).
    pub fn pct_node_local(&self) -> f64 {
        self.pct(self.node_local)
    }

    /// Percentage of rack-local tasks.
    pub fn pct_rack_local(&self) -> f64 {
        self.pct(self.rack_local)
    }

    /// Percentage of remote tasks.
    pub fn pct_remote(&self) -> f64 {
        self.pct(self.remote)
    }

    fn pct(&self, part: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            part as f64 / t as f64 * 100.0
        }
    }
}

impl AddAssign for LocalityCounter {
    fn add_assign(&mut self, rhs: Self) {
        self.node_local += rhs.node_local;
        self.rack_local += rhs.rack_local;
        self.remote += rhs.remote;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let mut c = LocalityCounter::default();
        for _ in 0..9 {
            c.record(LocalityClass::NodeLocal);
        }
        c.record(LocalityClass::RackLocal);
        assert_eq!(c.total(), 10);
        assert_eq!(c.pct_node_local(), 90.0);
        assert_eq!(c.pct_rack_local(), 10.0);
        assert_eq!(c.pct_remote(), 0.0);
        let sum = c.pct_node_local() + c.pct_rack_local() + c.pct_remote();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counter_is_all_zero() {
        let c = LocalityCounter::default();
        assert_eq!(c.total(), 0);
        assert_eq!(c.pct_node_local(), 0.0);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = LocalityCounter { node_local: 1, rack_local: 2, remote: 3 };
        a += LocalityCounter { node_local: 10, rack_local: 20, remote: 30 };
        assert_eq!(a, LocalityCounter { node_local: 11, rack_local: 22, remote: 33 });
    }

    #[test]
    fn display_names() {
        assert_eq!(LocalityClass::NodeLocal.to_string(), "local");
        assert_eq!(LocalityClass::RackLocal.to_string(), "rack-local");
        assert_eq!(LocalityClass::Remote.to_string(), "remote");
    }
}
