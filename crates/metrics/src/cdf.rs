//! Empirical cumulative distribution functions.

/// An empirical CDF over `f64` samples.
///
/// Samples are sorted once at construction; queries are `O(log n)`.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples. Non-finite samples are rejected.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "CDF samples must be finite"
        );
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples `≤ x`. 0 for an empty CDF.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|s| *s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `F⁻¹(q)`: smallest sample with at least fraction `q` of mass at or
    /// below it, `q ∈ (0, 1]`. Panics on an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q) && q > 0.0, "quantile must be in (0,1]");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The full step function as `(x, F(x))` pairs, one per distinct sample.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }

    /// Downsample the CDF to `points` evenly spaced x positions spanning
    /// [min, max] — the series the figure binaries print.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        (0..points)
            .map(|i| {
                // Pin the endpoint exactly: floating-point interpolation can
                // land infinitesimally below `hi`, dropping the last sample.
                let x = if i == points - 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.fraction_at(x))
            })
            .collect()
    }

    /// Sorted view of the samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.fraction_at(0.5), 0.0);
        assert_eq!(c.fraction_at(1.0), 0.25);
        assert_eq!(c.fraction_at(2.5), 0.5);
        assert_eq!(c.fraction_at(100.0), 1.0);
        assert_eq!(c.quantile(0.25), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn mean_min_max() {
        let c = Cdf::new(vec![2.0, 4.0, 6.0]);
        assert_eq!(c.mean(), Some(4.0));
        assert_eq!(c.min(), Some(2.0));
        assert_eq!(c.max(), Some(6.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(1.0), 0.0);
        assert_eq!(c.mean(), None);
        assert!(c.series(5).is_empty());
    }

    #[test]
    fn steps_deduplicate() {
        let c = Cdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(c.steps(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn series_spans_range_monotonically() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        let s = c.series(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 1.0);
        assert_eq!(s[10].0, 100.0);
        assert_eq!(s[10].1, 1.0);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_samples_rejected() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn quantile_interpolation_edges() {
        let c = Cdf::new(vec![10.0]);
        assert_eq!(c.quantile(0.0001), 10.0);
        assert_eq!(c.quantile(1.0), 10.0);
    }
}
