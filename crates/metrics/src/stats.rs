//! Summary statistics and the paper's reduction-percentage metric.

/// Five-number-plus-mean summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize `samples`; returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut s = samples.to_vec();
        s.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = ((p * s.len() as f64).ceil() as usize).max(1) - 1;
            s[idx.min(s.len() - 1)]
        };
        Some(Summary {
            n: s.len(),
            min: s[0],
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            p95: q(0.95),
            max: s[s.len() - 1],
            mean: s.iter().sum::<f64>() / s.len() as f64,
        })
    }
}

/// The paper's Figure 5 metric: percentage reduction of `ours` relative to
/// `baseline`, i.e. `(baseline − ours) / baseline × 100`.
///
/// Positive means `ours` is faster. Returns 0 for a zero baseline.
pub fn reduction_pct(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Element-wise reduction percentages for paired per-job measurements.
pub fn paired_reductions(baseline: &[f64], ours: &[f64]) -> Vec<f64> {
    assert_eq!(baseline.len(), ours.len(), "paired samples must align");
    baseline
        .iter()
        .zip(ours)
        .map(|(b, o)| reduction_pct(*b, *o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn reduction_matches_paper_definition() {
        // (coupling - probabilistic)/coupling
        assert_eq!(reduction_pct(100.0, 83.0), 17.0);
        assert_eq!(reduction_pct(100.0, 54.0), 46.0);
        assert_eq!(reduction_pct(100.0, 120.0), -20.0);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn paired_reductions_align() {
        let r = paired_reductions(&[100.0, 200.0], &[50.0, 150.0]);
        assert_eq!(r, vec![50.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_pairs_rejected() {
        paired_reductions(&[1.0], &[1.0, 2.0]);
    }
}
