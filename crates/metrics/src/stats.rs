//! Summary statistics and the paper's reduction-percentage metric.

/// Five-number-plus-mean summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize `samples`; returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut s = samples.to_vec();
        s.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = ((p * s.len() as f64).ceil() as usize).max(1) - 1;
            s[idx.min(s.len() - 1)]
        };
        Some(Summary {
            n: s.len(),
            min: s[0],
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            p95: q(0.95),
            max: s[s.len() - 1],
            mean: s.iter().sum::<f64>() / s.len() as f64,
        })
    }
}

/// Exact nearest-rank percentile of `samples`: the smallest sample with at
/// least `p` (in `[0, 1]`) of the distribution at or below it. No
/// interpolation — the returned value is always an observed sample, which
/// is what tail-latency reporting wants (an interpolated p99 can be a
/// value no job ever experienced). Returns `None` when empty.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "percentile rank must be in [0, 1]");
    if samples.is_empty() {
        return None;
    }
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let idx = ((p * s.len() as f64).ceil() as usize).max(1) - 1;
    Some(s[idx.min(s.len() - 1)])
}

/// Jain's fairness index of an allocation vector:
/// `(Σx)² / (n · Σx²)`.
///
/// 1.0 means perfectly equal allocations; `k/n` means `k` of `n` parties
/// split everything evenly while the rest get nothing. Feed it per-tenant
/// service *normalized by weight* to measure weighted fairness. Returns
/// `None` for an empty vector or all-zero allocations (fairness of no
/// service is undefined).
pub fn jain_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sum_sq))
}

/// The paper's Figure 5 metric: percentage reduction of `ours` relative to
/// `baseline`, i.e. `(baseline − ours) / baseline × 100`.
///
/// Positive means `ours` is faster. Returns 0 for a zero baseline.
pub fn reduction_pct(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

/// Element-wise reduction percentages for paired per-job measurements.
pub fn paired_reductions(baseline: &[f64], ours: &[f64]) -> Vec<f64> {
    assert_eq!(baseline.len(), ours.len(), "paired samples must align");
    baseline
        .iter()
        .zip(ours)
        .map(|(b, o)| reduction_pct(*b, *o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 0.5), Some(30.0));
        assert_eq!(percentile(&xs, 0.90), Some(50.0));
        assert_eq!(percentile(&xs, 0.99), Some(50.0), "p99 of 5 samples is the max");
        assert_eq!(percentile(&xs, 1.0), Some(50.0));
        // Unsorted input, result is always an observed sample.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
        // Agrees with Summary's quantile rule.
        let s = Summary::of(&xs).unwrap();
        assert_eq!(percentile(&xs, 0.95), Some(s.p95));
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn percentile_rank_out_of_range_panics() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn jain_equal_allocations_is_one() {
        assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), Some(1.0));
        assert_eq!(jain_index(&[2.5]), Some(1.0), "a single party is trivially fair");
    }

    #[test]
    fn jain_single_winner_is_one_over_n() {
        let j = jain_index(&[9.0, 0.0, 0.0]).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 1e-12, "{j}");
        let j = jain_index(&[0.0, 0.0, 0.0, 7.0]).unwrap();
        assert!((j - 0.25).abs() < 1e-12, "{j}");
    }

    #[test]
    fn jain_is_scale_invariant_and_bounded() {
        let a = jain_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = jain_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert!(a > 1.0 / 3.0 && a < 1.0);
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None, "no service ⇒ undefined");
    }

    #[test]
    fn reduction_matches_paper_definition() {
        // (coupling - probabilistic)/coupling
        assert_eq!(reduction_pct(100.0, 83.0), 17.0);
        assert_eq!(reduction_pct(100.0, 54.0), 46.0);
        assert_eq!(reduction_pct(100.0, 120.0), -20.0);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn paired_reductions_align() {
        let r = paired_reductions(&[100.0, 200.0], &[50.0, 150.0]);
        assert_eq!(r, vec![50.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_pairs_rejected() {
        paired_reductions(&[1.0], &[1.0, 2.0]);
    }
}
