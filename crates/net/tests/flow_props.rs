//! Property tests of the max-min fair flow allocator: for arbitrary flow
//! sets on arbitrary tree topologies, the allocation must be feasible
//! (no link over capacity), positive, and max-min fair in the bottleneck
//! sense (no flow can be raised without lowering a smaller-or-equal flow).

use pnats_net::{FlowNetwork, LinkId, NodeId, RoutingTable, Topology};
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..20).prop_map(|n| Topology::single_rack(n, 1e8)),
        ((2usize..4), (2usize..6)).prop_map(|(r, p)| Topology::multi_rack(r, p, 1e8, 2e8)),
        (3usize..30).prop_map(|n| Topology::palmetto_slice(n, 1e8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocation_is_feasible_and_positive(
        topo in topo_strategy(),
        pairs in proptest::collection::vec((0usize..64, 0usize..64), 1..40),
    ) {
        let routes = RoutingTable::new(&topo);
        let n = topo.n_nodes();
        let mut fx = FlowNetwork::new(&topo);
        let mut ids = Vec::new();
        for (a, b) in pairs {
            let (src, dst) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if src != dst {
                ids.push(fx.add_flow(src, dst, routes.route(src, dst)));
            }
        }
        prop_assume!(!ids.is_empty());
        // Every flow gets a strictly positive, finite rate.
        for id in &ids {
            let r = fx.rate(*id);
            prop_assert!(r.is_finite() && r > 0.0, "rate {r}");
        }
        // No link is over capacity.
        for (i, link) in topo.links().iter().enumerate() {
            let load = fx.link_load(LinkId(i as u32));
            prop_assert!(
                load <= link.capacity_bps * (1.0 + 1e-9),
                "link {i}: {load} > {}",
                link.capacity_bps
            );
        }
    }

    #[test]
    fn single_flow_gets_path_min_capacity(topo in topo_strategy(), a in 0usize..64, b in 0usize..64) {
        let n = topo.n_nodes();
        let (src, dst) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
        prop_assume!(src != dst);
        let routes = RoutingTable::new(&topo);
        let mut fx = FlowNetwork::new(&topo);
        let id = fx.add_flow(src, dst, routes.route(src, dst));
        let min_cap = routes
            .route(src, dst)
            .iter()
            .map(|l| topo.capacity(*l))
            .fold(f64::INFINITY, f64::min);
        let r = fx.rate(id);
        prop_assert!((r - min_cap).abs() < 1e-6 * min_cap, "{r} vs {min_cap}");
    }

    /// The defining property of a max-min fair allocation: every flow has a
    /// *bottleneck* link — a saturated link on its path where no other flow
    /// receives a strictly higher rate.
    #[test]
    fn every_flow_has_a_bottleneck(
        topo in topo_strategy(),
        pairs in proptest::collection::vec((0usize..64, 0usize..64), 1..25),
    ) {
        let routes = RoutingTable::new(&topo);
        let n = topo.n_nodes();
        let mut fx = FlowNetwork::new(&topo);
        let mut flows = Vec::new(); // (id, src, dst)
        for (a, b) in pairs {
            let (src, dst) = (NodeId((a % n) as u32), NodeId((b % n) as u32));
            if src != dst {
                flows.push((fx.add_flow(src, dst, routes.route(src, dst)), src, dst));
            }
        }
        prop_assume!(!flows.is_empty());
        let rates: Vec<f64> = flows.iter().map(|(id, _, _)| fx.rate(*id)).collect();
        for (i, (_, src, dst)) in flows.iter().enumerate() {
            let path = routes.route(*src, *dst);
            let has_bottleneck = path.iter().any(|&link| {
                let load = fx.link_load(link);
                let saturated = load >= topo.capacity(link) * (1.0 - 1e-9);
                let max_on_link = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, s, d))| routes.route(*s, *d).contains(&link))
                    .map(|(j, _)| rates[j])
                    .fold(0.0, f64::max);
                saturated && rates[i] >= max_on_link * (1.0 - 1e-9)
            });
            prop_assert!(
                has_bottleneck,
                "flow {i} (rate {}) has no bottleneck link",
                rates[i]
            );
        }
    }
}
