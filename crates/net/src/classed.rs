//! Class-compressed hop matrix: `O(classes²)` memory instead of `O(n²)`.
//!
//! A dense [`DistanceMatrix`](crate::DistanceMatrix) costs `n² × 8` bytes —
//! 800 MB at 10k nodes — and `O(n · (V + E))` BFS time to build, both of
//! which wall off large-cluster simulation. But in a switch hierarchy hop
//! distances only depend on *where in the hierarchy* the endpoints sit:
//! nodes with identical neighbor sets (same leaf switch) are
//! interchangeable. [`ClassedDistance`] stores one `class-of-node` byte
//! table plus a tiny class-to-class hop table and answers
//! [`PathCost::path_cost`] with two lookups.
//!
//! Equal neighbor sets make two nodes provably equidistant from every third
//! vertex (any shortest path enters through a shared neighbor), so the
//! compressed answers are *exactly* the BFS hop counts, not an
//! approximation — verified against [`DistanceMatrix::hops`] in the tests.

use crate::cost::PathCost;
use crate::topology::{NodeId, Topology, Vertex};
use std::collections::{HashMap, VecDeque};

/// Hop distances compressed over neighbor-set equivalence classes.
#[derive(Clone, Debug)]
pub struct ClassedDistance {
    n: usize,
    /// Number of classes (the stride of `h`).
    c: usize,
    /// Node → class, classes numbered in first-seen (ascending id) order.
    class_of: Vec<u32>,
    /// Class-to-class hop table, row-major `c × c`. Off-diagonal entries
    /// are representative distances; the diagonal holds the *intra-class
    /// pair* distance (two distinct same-class nodes), because the a == b
    /// case short-circuits to 0 before the lookup.
    h: Vec<f64>,
    version: u64,
}

impl ClassedDistance {
    /// BFS hop distances for `topo`, grouped by neighbor-set classes.
    pub fn hops(topo: &Topology) -> Self {
        let n = topo.n_nodes();
        let n_vertices = n + topo.n_switches();
        // Class = exact multiset of neighboring vertices. Our builders
        // attach each node to exactly one switch, so this collapses to
        // "same leaf switch", but the definition stays sound for any graph.
        let mut key_to_class: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut class_of = vec![0u32; n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for (i, slot) in class_of.iter_mut().enumerate() {
            let mut key: Vec<usize> = topo
                .incident(Vertex::Node(NodeId(i as u32)))
                .iter()
                .map(|&(_, v)| match v {
                    Vertex::Node(nd) => nd.idx(),
                    Vertex::Switch(s) => n + s.0 as usize,
                })
                .collect();
            key.sort_unstable();
            let next = members.len() as u32;
            let q = *key_to_class.entry(key).or_insert(next);
            if q == next {
                members.push(Vec::new());
            }
            *slot = q;
            members[q as usize].push(NodeId(i as u32));
        }
        let c = members.len();
        // One BFS per class representative — O(c · (V + E)) total.
        let mut h = vec![f64::INFINITY; c * c];
        let mut dist = vec![u32::MAX; n_vertices];
        let mut queue = VecDeque::new();
        for (a, m) in members.iter().enumerate() {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            queue.clear();
            let src = m[0];
            dist[src.idx()] = 0;
            queue.push_back(Vertex::Node(src));
            while let Some(v) = queue.pop_front() {
                let vi = match v {
                    Vertex::Node(nd) => nd.idx(),
                    Vertex::Switch(s) => n + s.0 as usize,
                };
                let d = dist[vi];
                for &(_, next) in topo.incident(v) {
                    let ni = match next {
                        Vertex::Node(nd) => nd.idx(),
                        Vertex::Switch(s) => n + s.0 as usize,
                    };
                    if dist[ni] == u32::MAX {
                        dist[ni] = d + 1;
                        queue.push_back(next);
                    }
                }
            }
            for (b, mb) in members.iter().enumerate() {
                // Distance to a *different* node of class b: for b == a
                // that is the second member (singleton classes keep the
                // unreachable-∞ marker only if truly isolated; a singleton
                // diagonal is never read — path_cost(a, a) returns 0).
                let target = if b == a {
                    match mb.get(1) {
                        Some(&t) => t,
                        None => {
                            h[a * c + b] = 0.0;
                            continue;
                        }
                    }
                } else {
                    mb[0]
                };
                if dist[target.idx()] != u32::MAX {
                    h[a * c + b] = dist[target.idx()] as f64;
                }
            }
        }
        Self { n, c, class_of, h, version: 0 }
    }

    /// Number of equivalence classes.
    pub fn n_classes(&self) -> usize {
        self.c
    }

    /// Node → class table (first-seen numbering).
    pub fn class_of(&self) -> &[u32] {
        &self.class_of
    }

    /// The transposed metric. Hop counts are symmetric, so this is a
    /// clone — it exists so call sites treat dense and classed matrices
    /// uniformly.
    pub fn transposed(&self) -> Self {
        self.clone()
    }
}

impl PathCost for ClassedDistance {
    #[inline]
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (ca, cb) = (self.class_of[a.idx()] as usize, self.class_of[b.idx()] as usize);
        self.h[ca * self.c + cb]
    }

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;

    fn assert_matches_dense(topo: &Topology) {
        let dense = DistanceMatrix::hops(topo);
        let classed = ClassedDistance::hops(topo);
        let n = topo.n_nodes();
        for a in 0..n {
            for b in 0..n {
                let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
                assert_eq!(
                    classed.path_cost(na, nb),
                    dense.path_cost(na, nb),
                    "hops({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn matches_dense_on_single_rack() {
        assert_matches_dense(&Topology::single_rack(5, 1e9));
    }

    #[test]
    fn matches_dense_on_multi_rack() {
        let topo = Topology::multi_rack(3, 4, 1e9, 1e9);
        let classed = ClassedDistance::hops(&topo);
        assert_eq!(classed.n_classes(), 3, "one class per rack");
        assert_matches_dense(&topo);
    }

    #[test]
    fn matches_dense_on_palmetto_slice() {
        assert_matches_dense(&Topology::palmetto_slice(60, 1e9));
    }

    #[test]
    fn matches_dense_on_fat_tree() {
        assert_matches_dense(&Topology::fat_tree(4, 1e9));
    }

    #[test]
    fn isolated_nodes_are_mutually_unreachable() {
        let topo = Topology::isolated(3);
        let classed = ClassedDistance::hops(&topo);
        assert_eq!(classed.n_classes(), 1, "identical (empty) neighbor sets");
        assert_eq!(classed.path_cost(NodeId(0), NodeId(0)), 0.0);
        assert!(classed.path_cost(NodeId(0), NodeId(1)).is_infinite());
        assert_matches_dense(&topo);
    }
}
