//! Path transmission-rate monitoring (paper §II-B3, "Considering Network
//! Condition").
//!
//! The paper proposes replacing each hop count `h_ab` in the distance matrix
//! with "the inverse of the transmission rate of the path from node `D_a` to
//! `D_b`", observed via link status monitoring or active path measurement
//! (their citation [16], Choreo). [`RateMonitor`] is that observer: it keeps
//! an EWMA of per-path achieved rates, fed either by the simulator's fluid
//! flow model or by the threaded engine's transfer timings.
//!
//! Two cost views are derived from it:
//!
//! * [`RateMonitor::inverse_rate_matrix`] — the literal §II-B3 matrix,
//!   `nominal_rate / rate(a→b)` (dimensionless; 1.0 on an uncongested
//!   path), hops as fallback for never-observed paths;
//! * [`RateMonitor::congestion_scaled_matrix`] — `h_ab · nominal/rate`,
//!   which keeps the hop structure and multiplies it by observed slowdown.
//!   This is the default the experiments use, since it degrades gracefully
//!   to the plain hop metric on an idle network.

use crate::cost::PathCost;
use crate::distance::DistanceMatrix;
use crate::topology::NodeId;

/// EWMA observer of per-path transmission rates.
#[derive(Clone, Debug)]
pub struct RateMonitor {
    n: usize,
    alpha: f64,
    /// Row-major EWMA rates in bytes/sec; 0.0 = never observed.
    ewma: Vec<f64>,
    observations: u64,
}

impl RateMonitor {
    /// A monitor over `n` nodes with smoothing factor `alpha` in (0, 1];
    /// larger `alpha` weights recent observations more.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self { n, alpha, ewma: vec![0.0; n * n], observations: 0 }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Total observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Record that a transfer from `a` to `b` achieved `rate_bps`.
    /// Self-observations (`a == b`) are ignored — local access is free.
    pub fn observe(&mut self, a: NodeId, b: NodeId, rate_bps: f64) {
        if a == b || !rate_bps.is_finite() || rate_bps <= 0.0 {
            return;
        }
        self.observations += 1;
        let e = &mut self.ewma[a.idx() * self.n + b.idx()];
        if *e == 0.0 {
            *e = rate_bps;
        } else {
            *e = self.alpha * rate_bps + (1.0 - self.alpha) * *e;
        }
    }

    /// Smoothed rate of path `a → b`, if ever observed.
    pub fn rate(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let e = self.ewma[a.idx() * self.n + b.idx()];
        (e > 0.0).then_some(e)
    }

    /// §II-B3 verbatim: entry = `nominal_rate / rate(a→b)`, falling back to
    /// `hops.get(a,b)` where no observation exists. Diagonal stays 0.
    pub fn inverse_rate_matrix(&self, hops: &DistanceMatrix, nominal_rate: f64) -> DistanceMatrix {
        assert_eq!(hops.n(), self.n);
        assert!(nominal_rate > 0.0);
        let mut m = DistanceMatrix::zero(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
                let v = match self.rate(na, nb) {
                    Some(r) => nominal_rate / r,
                    None => hops.get(na, nb),
                };
                m.set(na, nb, v);
            }
        }
        m
    }

    /// Hop counts scaled by observed congestion: entry =
    /// `h_ab · max(1, nominal_rate / rate(a→b))`; plain `h_ab` where no
    /// observation exists. Degrades to the hop metric on an idle network.
    pub fn congestion_scaled_matrix(
        &self,
        hops: &DistanceMatrix,
        nominal_rate: f64,
    ) -> DistanceMatrix {
        assert_eq!(hops.n(), self.n);
        assert!(nominal_rate > 0.0);
        let mut m = DistanceMatrix::zero(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
                let h = hops.get(na, nb);
                let v = match self.rate(na, nb) {
                    Some(r) => h * (nominal_rate / r).max(1.0),
                    None => h,
                };
                m.set(na, nb, v);
            }
        }
        m
    }
}

/// A [`PathCost`] that reads a rate monitor live, scaling hop counts by the
/// current congestion estimate. Useful when regenerating a snapshot matrix
/// per scheduling round is undesirable.
#[derive(Clone, Debug)]
pub struct InverseRateCost {
    hops: DistanceMatrix,
    monitor: RateMonitor,
    nominal_rate: f64,
}

impl InverseRateCost {
    /// Wrap `monitor` over the fallback hop matrix.
    pub fn new(hops: DistanceMatrix, monitor: RateMonitor, nominal_rate: f64) -> Self {
        assert_eq!(hops.n(), monitor.n_nodes());
        assert!(nominal_rate > 0.0);
        Self { hops, monitor, nominal_rate }
    }

    /// Feed an observation through to the wrapped monitor.
    pub fn observe(&mut self, a: NodeId, b: NodeId, rate_bps: f64) {
        self.monitor.observe(a, b, rate_bps);
    }

    /// Access the wrapped monitor.
    pub fn monitor(&self) -> &RateMonitor {
        &self.monitor
    }
}

impl PathCost for InverseRateCost {
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        let h = self.hops.get(a, b);
        match self.monitor.rate(a, b) {
            Some(r) => h * (self.nominal_rate / r).max(1.0),
            None => h,
        }
    }

    fn n_nodes(&self) -> usize {
        self.hops.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    const GB: f64 = 1e9 / 8.0;

    fn hops4() -> DistanceMatrix {
        DistanceMatrix::hops(&Topology::single_rack(4, GB))
    }

    #[test]
    fn unobserved_paths_fall_back_to_hops() {
        let m = RateMonitor::new(4, 0.5);
        let h = hops4();
        let c = m.congestion_scaled_matrix(&h, GB);
        assert_eq!(c, h);
    }

    #[test]
    fn ewma_converges_to_constant_observation() {
        let mut m = RateMonitor::new(2, 0.5);
        for _ in 0..20 {
            m.observe(NodeId(0), NodeId(1), GB / 4.0);
        }
        let r = m.rate(NodeId(0), NodeId(1)).unwrap();
        assert!((r - GB / 4.0).abs() < 1.0);
    }

    #[test]
    fn ewma_tracks_changes_gradually() {
        let mut m = RateMonitor::new(2, 0.5);
        m.observe(NodeId(0), NodeId(1), 100.0);
        m.observe(NodeId(0), NodeId(1), 200.0);
        // 0.5*200 + 0.5*100 = 150
        assert_eq!(m.rate(NodeId(0), NodeId(1)), Some(150.0));
    }

    #[test]
    fn self_and_garbage_observations_ignored() {
        let mut m = RateMonitor::new(2, 0.5);
        m.observe(NodeId(0), NodeId(0), GB);
        m.observe(NodeId(0), NodeId(1), -5.0);
        m.observe(NodeId(0), NodeId(1), f64::INFINITY);
        m.observe(NodeId(0), NodeId(1), 0.0);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.rate(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn congested_path_costs_more() {
        let mut m = RateMonitor::new(4, 1.0);
        m.observe(NodeId(0), NodeId(1), GB / 5.0); // heavily congested
        m.observe(NodeId(0), NodeId(2), GB); // idle
        let h = hops4();
        let c = m.congestion_scaled_matrix(&h, GB);
        assert_eq!(c.get(NodeId(0), NodeId(1)), 10.0); // 2 hops × 5x slowdown
        assert_eq!(c.get(NodeId(0), NodeId(2)), 2.0); // 2 hops × 1
        assert_eq!(c.get(NodeId(0), NodeId(3)), 2.0); // fallback
    }

    #[test]
    fn faster_than_nominal_never_cheaper_than_hops() {
        let mut m = RateMonitor::new(4, 1.0);
        m.observe(NodeId(0), NodeId(1), 4.0 * GB);
        let c = m.congestion_scaled_matrix(&hops4(), GB);
        assert_eq!(c.get(NodeId(0), NodeId(1)), 2.0);
    }

    #[test]
    fn inverse_rate_matrix_is_literal_inverse() {
        let mut m = RateMonitor::new(4, 1.0);
        m.observe(NodeId(0), NodeId(1), GB / 3.0);
        let c = m.inverse_rate_matrix(&hops4(), GB);
        assert!((c.get(NodeId(0), NodeId(1)) - 3.0).abs() < 1e-12);
        assert_eq!(c.get(NodeId(1), NodeId(0)), 2.0, "unobserved direction falls back");
    }

    #[test]
    fn live_cost_view_updates_with_observations() {
        let mut c = InverseRateCost::new(hops4(), RateMonitor::new(4, 1.0), GB);
        assert_eq!(c.path_cost(NodeId(0), NodeId(1)), 2.0);
        c.observe(NodeId(0), NodeId(1), GB / 2.0);
        assert_eq!(c.path_cost(NodeId(0), NodeId(1)), 4.0);
        assert_eq!(c.path_cost(NodeId(1), NodeId(1)), 0.0);
        assert_eq!(c.n_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn bad_alpha_rejected() {
        RateMonitor::new(2, 0.0);
    }
}
