#![warn(missing_docs)]
//! # pnats-net — cluster network substrate
//!
//! Network model underpinning the probabilistic network-aware scheduler of
//! Shen et al. (CLUSTER 2016). The paper's cost model needs three things
//! from the network layer:
//!
//! 1. a **distance matrix** `H` whose entry `h_ab` is the number of hops on
//!    the path between data nodes `D_a` and `D_b` (paper §II-B1);
//! 2. optionally, a **measured-rate matrix** that replaces `h_ab` with the
//!    inverse of the observed transmission rate of the path (paper §II-B3,
//!    "Considering Network Condition");
//! 3. for the simulator, an actual **capacity-constrained network** on which
//!    transfers contend — we provide a fluid max-min fair-share flow model.
//!
//! The module split mirrors those needs:
//!
//! * [`topology`] — nodes, racks, switches, links and standard cluster
//!   shapes (single rack, multi-rack tree, the paper's Palmetto slice).
//! * [`distance`] — the hop matrix `H`, computed by BFS or given verbatim
//!   (e.g. the worked example of the paper's Figure 2).
//! * [`routing`] — shortest link-level paths used by the flow model.
//! * [`flow`] — progressive-filling max-min fair bandwidth allocation.
//! * [`monitor`] — EWMA path-rate monitor and the inverse-rate cost matrix.
//! * [`cost`] — the [`PathCost`](cost::PathCost) abstraction consumed by the
//!   scheduler crates.

pub mod classed;
pub mod cost;
pub mod distance;
pub mod flow;
pub mod monitor;
pub mod routing;
pub mod topology;

pub use classed::ClassedDistance;
pub use cost::{PathCost, RackLadderCost, UniformCost};
pub use distance::DistanceMatrix;
pub use flow::{FlowId, FlowNetwork};
pub use monitor::{InverseRateCost, RateMonitor};
pub use routing::RoutingTable;
pub use topology::{ClusterLayout, LinkId, NodeId, RackId, SwitchId, Topology};
