//! Cluster topology: data nodes, racks, switches and capacity-annotated links.
//!
//! A [`Topology`] is an undirected graph whose vertices are either *data
//! nodes* (machines that hold blocks and run tasks) or *switches* (top-of-rack
//! and core). Every edge is a [`Link`] with a capacity in bytes per second.
//! Scheduler-facing code rarely touches the graph directly; it consumes the
//! hop [`DistanceMatrix`](crate::distance::DistanceMatrix) and the
//! [`ClusterLayout`] (node → rack mapping) derived from it.

use std::fmt;

/// Identifier of a data node (a machine with task slots and disks).
///
/// Node ids are dense indices `0..n_nodes`, which lets downstream code store
/// per-node state in flat vectors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// Identifier of a rack (a failure/locality domain served by one ToR switch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RackId(pub u32);

/// Identifier of a switch vertex (ToR or core).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SwitchId(pub u32);

/// Identifier of an undirected link; dense indices `0..n_links`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The node id as a flat vector index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl RackId {
    /// The rack id as a flat vector index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a flat vector index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// A vertex in the topology graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vertex {
    /// A data node.
    Node(NodeId),
    /// A switch (ToR or core).
    Switch(SwitchId),
}

/// An undirected, capacity-annotated edge of the topology graph.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// One endpoint.
    pub a: Vertex,
    /// The other endpoint.
    pub b: Vertex,
    /// Capacity in bytes per second (full duplex is modelled by treating the
    /// link as a single shared-capacity resource; good enough for the fluid
    /// contention effects the paper's evaluation depends on).
    pub capacity_bps: f64,
}

/// Node → rack assignment, the coarse locality structure baselines use.
///
/// The paper's baselines (Fair/Delay, Coupling) classify placements only as
/// *node-local*, *rack-local* or *remote*; this type answers those queries.
#[derive(Clone, Debug)]
pub struct ClusterLayout {
    rack_of: Vec<RackId>,
    n_racks: u32,
}

impl ClusterLayout {
    /// Build a layout from an explicit node → rack table.
    pub fn new(rack_of: Vec<RackId>) -> Self {
        let n_racks = rack_of.iter().map(|r| r.0 + 1).max().unwrap_or(0);
        Self { rack_of, n_racks }
    }

    /// Number of data nodes.
    pub fn n_nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.n_racks as usize
    }

    /// Rack housing `node`.
    #[inline]
    pub fn rack(&self, node: NodeId) -> RackId {
        self.rack_of[node.idx()]
    }

    /// Whether two nodes share a rack.
    #[inline]
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of[a.idx()] == self.rack_of[b.idx()]
    }

    /// All nodes in `rack`, in id order.
    pub fn nodes_in_rack(&self, rack: RackId) -> impl Iterator<Item = NodeId> + '_ {
        self.rack_of
            .iter()
            .enumerate()
            .filter(move |(_, r)| **r == rack)
            .map(|(i, _)| NodeId(i as u32))
    }
}

/// The cluster topology graph.
///
/// Construct with one of the shape builders ([`Topology::single_rack`],
/// [`Topology::multi_rack`], [`Topology::palmetto_slice`]) or assemble
/// manually via [`TopologyBuilder`].
#[derive(Clone, Debug)]
pub struct Topology {
    n_nodes: u32,
    n_switches: u32,
    links: Vec<Link>,
    layout: ClusterLayout,
    /// adjacency: for each vertex (nodes first, then switches), the incident
    /// links as (link id, neighbour vertex).
    adj: Vec<Vec<(LinkId, Vertex)>>,
}

impl Topology {
    fn vertex_index(&self, v: Vertex) -> usize {
        match v {
            Vertex::Node(n) => n.idx(),
            Vertex::Switch(s) => self.n_nodes as usize + s.0 as usize,
        }
    }

    /// Number of data nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes as usize
    }

    /// Number of switch vertices.
    pub fn n_switches(&self) -> usize {
        self.n_switches as usize
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Capacity of `link` in bytes/second.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.links[link.idx()].capacity_bps
    }

    /// Node → rack layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// All node ids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes).map(NodeId)
    }

    /// Links incident to vertex `v` as (link, neighbour) pairs.
    pub fn incident(&self, v: Vertex) -> &[(LinkId, Vertex)] {
        &self.adj[self.vertex_index(v)]
    }

    /// A single-rack star: `n` nodes all attached to one ToR switch.
    ///
    /// This is the shape of the paper's testbed ("the slave nodes we
    /// requested were all assigned to the same rack by Palmetto"): every
    /// node-to-node path is 2 hops and remote tasks are impossible.
    pub fn single_rack(n: usize, nic_bps: f64) -> Self {
        let mut b = TopologyBuilder::new();
        let tor = b.add_switch();
        for _ in 0..n {
            let node = b.add_node(RackId(0));
            b.link(Vertex::Node(node), Vertex::Switch(tor), nic_bps);
        }
        b.build()
    }

    /// A two-level tree: `racks` racks of `per_rack` nodes, each rack's ToR
    /// switch uplinked to a single core switch.
    ///
    /// Node → same node: 0 hops; same rack: 2 hops; cross-rack: 4 hops —
    /// the classic Hadoop distance ladder.
    pub fn multi_rack(racks: usize, per_rack: usize, nic_bps: f64, uplink_bps: f64) -> Self {
        let mut b = TopologyBuilder::new();
        let core = b.add_switch();
        for r in 0..racks {
            let tor = b.add_switch();
            b.link(Vertex::Switch(tor), Vertex::Switch(core), uplink_bps);
            for _ in 0..per_rack {
                let node = b.add_node(RackId(r as u32));
                b.link(Vertex::Node(node), Vertex::Switch(tor), nic_bps);
            }
        }
        b.build()
    }

    /// The evaluation cluster of the paper: 60 nodes in one *physical* rack
    /// but spread across several ToR switches with heterogeneous uplinks
    /// ("most top of rack switches are uplinked to the core switch at
    /// 10 Gbps, and some switches are aggregated to a Z9000 switch that is
    /// uplinked ... at 40 Gbps").
    ///
    /// We model 3 ToR switches of 20 nodes each; two uplink to the core at
    /// `uplink_mult × nic_bps` and one (the Z9000-aggregated switch, 4×
    /// faster in the paper) at `4 × uplink_mult × nic_bps`. All nodes
    /// report rack 0, so locality accounting matches Table III (zero remote
    /// tasks), while hop counts and link contention still differ across
    /// switch boundaries — exactly the regime where the paper argues
    /// fine-grained costs beat the node/rack dichotomy.
    ///
    /// `uplink_mult` encodes ToR oversubscription: with 20 nodes per
    /// switch, `uplink_mult = 4` means a 5:1 oversubscribed uplink — the
    /// Palmetto shape (20 × 10 GbE nodes behind a 10–40 Gbps uplink) is
    /// even harsher.
    pub fn palmetto_slice_oversub(n: usize, nic_bps: f64, uplink_mult: f64) -> Self {
        assert!(uplink_mult > 0.0);
        let mut b = TopologyBuilder::new();
        let core = b.add_switch();
        let n_tors = 3.min(n.max(1));
        let mut tors = Vec::new();
        for t in 0..n_tors {
            let tor = b.add_switch();
            let mult = if t == n_tors - 1 { 4.0 * uplink_mult } else { uplink_mult };
            b.link(Vertex::Switch(tor), Vertex::Switch(core), mult * nic_bps);
            tors.push(tor);
        }
        for i in 0..n {
            let node = b.add_node(RackId(0));
            let tor = tors[i % n_tors];
            b.link(Vertex::Node(node), Vertex::Switch(tor), nic_bps);
        }
        b.build()
    }

    /// [`Topology::palmetto_slice_oversub`] with the default 4× uplink
    /// multiplier (5:1 ToR oversubscription at 20 nodes per switch).
    pub fn palmetto_slice(n: usize, nic_bps: f64) -> Self {
        Self::palmetto_slice_oversub(n, nic_bps, 4.0)
    }

    /// A k-ary fat-tree (k even): `k` pods of `k/2` edge and `k/2`
    /// aggregation switches, `(k/2)²` core switches, `k³/4` nodes. All
    /// links share `link_bps` — the full-bisection data-centre fabric, for
    /// experiments beyond the paper's single-rack testbed.
    ///
    /// Rack = edge switch (`k/2` nodes per rack).
    pub fn fat_tree(k: usize, link_bps: f64) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even and >= 2");
        let half = k / 2;
        let mut b = TopologyBuilder::new();
        // Core switches.
        let cores: Vec<SwitchId> = (0..half * half).map(|_| b.add_switch()).collect();
        for pod in 0..k {
            let aggs: Vec<SwitchId> = (0..half).map(|_| b.add_switch()).collect();
            let edges: Vec<SwitchId> = (0..half).map(|_| b.add_switch()).collect();
            // Aggregation i of every pod connects to core group i.
            for (i, &agg) in aggs.iter().enumerate() {
                for j in 0..half {
                    b.link(
                        Vertex::Switch(agg),
                        Vertex::Switch(cores[i * half + j]),
                        link_bps,
                    );
                }
                for &edge in &edges {
                    b.link(Vertex::Switch(agg), Vertex::Switch(edge), link_bps);
                }
            }
            for (e, &edge) in edges.iter().enumerate() {
                let rack = RackId((pod * half + e) as u32);
                for _ in 0..half {
                    let node = b.add_node(rack);
                    b.link(Vertex::Node(node), Vertex::Switch(edge), link_bps);
                }
            }
        }
        b.build()
    }

    /// A degenerate topology of `n` isolated nodes and no links, for tests
    /// that supply an explicit distance matrix instead.
    pub fn isolated(n: usize) -> Self {
        let mut b = TopologyBuilder::new();
        for _ in 0..n {
            b.add_node(RackId(0));
        }
        b.build()
    }
}

/// Incremental topology assembly.
#[derive(Default)]
pub struct TopologyBuilder {
    n_nodes: u32,
    n_switches: u32,
    racks: Vec<RackId>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// A builder with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a data node in `rack`; returns its id.
    pub fn add_node(&mut self, rack: RackId) -> NodeId {
        let id = NodeId(self.n_nodes);
        self.n_nodes += 1;
        self.racks.push(rack);
        id
    }

    /// Add a switch vertex; returns its id.
    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.n_switches);
        self.n_switches += 1;
        id
    }

    /// Add an undirected link of the given capacity; returns its id.
    pub fn link(&mut self, a: Vertex, b: Vertex, capacity_bps: f64) -> LinkId {
        assert!(capacity_bps > 0.0, "link capacity must be positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a, b, capacity_bps });
        id
    }

    /// Finish, computing adjacency lists.
    pub fn build(self) -> Topology {
        let n_vertices = (self.n_nodes + self.n_switches) as usize;
        let mut topo = Topology {
            n_nodes: self.n_nodes,
            n_switches: self.n_switches,
            links: self.links,
            layout: ClusterLayout::new(self.racks),
            adj: vec![Vec::new(); n_vertices],
        };
        for (i, l) in topo.links.clone().into_iter().enumerate() {
            let ai = topo.vertex_index(l.a);
            let bi = topo.vertex_index(l.b);
            topo.adj[ai].push((LinkId(i as u32), l.b));
            topo.adj[bi].push((LinkId(i as u32), l.a));
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9 / 8.0;

    #[test]
    fn single_rack_shape() {
        let t = Topology::single_rack(4, GB);
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.n_switches(), 1);
        assert_eq!(t.links().len(), 4);
        assert_eq!(t.layout().n_racks(), 1);
        for n in t.nodes() {
            assert_eq!(t.incident(Vertex::Node(n)).len(), 1);
        }
        // The ToR sees every node.
        assert_eq!(t.incident(Vertex::Switch(SwitchId(0))).len(), 4);
    }

    #[test]
    fn multi_rack_shape() {
        let t = Topology::multi_rack(3, 5, GB, 10.0 * GB);
        assert_eq!(t.n_nodes(), 15);
        assert_eq!(t.n_switches(), 4); // core + 3 ToR
        assert_eq!(t.links().len(), 3 + 15);
        assert_eq!(t.layout().n_racks(), 3);
        assert!(t.layout().same_rack(NodeId(0), NodeId(4)));
        assert!(!t.layout().same_rack(NodeId(0), NodeId(5)));
    }

    #[test]
    fn multi_rack_rack_membership_is_contiguous() {
        let t = Topology::multi_rack(2, 3, GB, GB);
        let r0: Vec<_> = t.layout().nodes_in_rack(RackId(0)).collect();
        assert_eq!(r0, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let r1: Vec<_> = t.layout().nodes_in_rack(RackId(1)).collect();
        assert_eq!(r1, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn palmetto_slice_is_one_logical_rack_three_switches() {
        let t = Topology::palmetto_slice(60, GB);
        assert_eq!(t.n_nodes(), 60);
        assert_eq!(t.n_switches(), 4); // core + 3 ToR
        assert_eq!(t.layout().n_racks(), 1);
        // Uplinks: two at 10 Gbps, one at 40 Gbps.
        let mut uplinks: Vec<f64> = t
            .links()
            .iter()
            .filter(|l| matches!((l.a, l.b), (Vertex::Switch(_), Vertex::Switch(_))))
            .map(|l| l.capacity_bps)
            .collect();
        uplinks.sort_by(f64::total_cmp);
        assert_eq!(uplinks.len(), 3);
        assert!(uplinks[2] > uplinks[0]);
    }

    #[test]
    fn fat_tree_shape() {
        let k = 4;
        let t = Topology::fat_tree(k, GB);
        // k^3/4 nodes, k^2/4 core + k pods × k switches... : 4 core,
        // 4 pods × (2 agg + 2 edge) = 20 switches, 16 nodes.
        assert_eq!(t.n_nodes(), k * k * k / 4);
        assert_eq!(t.n_switches(), k * k / 4 + k * k);
        assert_eq!(t.layout().n_racks(), k * k / 2);
        // Distance ladder: 0 / 2 (same edge) / 4 (same pod) / 6 (cross pod).
        let h = crate::distance::DistanceMatrix::hops(&t);
        assert_eq!(h.get(NodeId(0), NodeId(1)), 2.0); // same edge switch
        assert_eq!(h.get(NodeId(0), NodeId(2)), 4.0); // same pod
        assert_eq!(h.get(NodeId(0), NodeId(15)), 6.0); // cross pod
        assert!(h.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "arity must be even")]
    fn fat_tree_odd_k_rejected() {
        Topology::fat_tree(3, GB);
    }

    #[test]
    fn isolated_has_no_links() {
        let t = Topology::isolated(3);
        assert_eq!(t.n_nodes(), 3);
        assert!(t.links().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_link_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_node(RackId(0));
        let c = b.add_node(RackId(0));
        b.link(Vertex::Node(a), Vertex::Node(c), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "D3");
        assert_eq!(RackId(1).to_string(), "rack1");
    }
}
