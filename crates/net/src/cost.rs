//! The path-cost abstraction consumed by schedulers.
//!
//! The paper computes transmission cost as `bytes × h_ab` (Formula 1/2) and
//! then generalizes `h_ab` from hop counts to inverse path transmission
//! rates (§II-B3). [`PathCost`] is that pluggable `h_ab`: schedulers are
//! written once against it and evaluated under either metric.

use crate::topology::NodeId;

/// Per-byte transfer cost of the path between two data nodes.
///
/// For the hop metric this is the number of hops; for the network-condition
/// metric it is `1 / rate(a→b)` (suitably scaled). The only invariant
/// schedulers rely on is `path_cost(a, a) == 0` — local access is free.
pub trait PathCost: Sync {
    /// Cost per byte of moving data from `a` to `b` (0 when `a == b`).
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64;

    /// Number of nodes the metric is defined over.
    fn n_nodes(&self) -> usize;

    /// Revision tag of the metric. Metrics whose entries change over time
    /// (e.g. the §II-B3 congestion-scaled matrix, refreshed per heartbeat)
    /// must return a different value after every change; schedulers use
    /// this to invalidate cached per-candidate aggregates. Static metrics
    /// keep the default constant 0.
    fn version(&self) -> u64 {
        0
    }
}

impl<T: PathCost + ?Sized> PathCost for &T {
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        (**self).path_cost(a, b)
    }

    fn n_nodes(&self) -> usize {
        (**self).n_nodes()
    }

    fn version(&self) -> u64 {
        (**self).version()
    }
}

/// A uniform metric: every distinct pair costs `c`, local access costs 0.
///
/// Useful in tests and as a degenerate baseline (it collapses the paper's
/// fine-grained model back to "local or not").
#[derive(Clone, Copy, Debug)]
pub struct UniformCost {
    n: usize,
    c: f64,
}

impl UniformCost {
    /// A uniform metric over `n` nodes with off-diagonal cost `c`.
    pub fn new(n: usize, c: f64) -> Self {
        assert!(c >= 0.0);
        Self { n, c }
    }
}

impl PathCost for UniformCost {
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else {
            self.c
        }
    }

    fn n_nodes(&self) -> usize {
        self.n
    }
}

/// The coarse node/rack/off-rack cost ladder prior schedulers reason in:
/// 0 on the same node, `rack_cost` within a rack, `remote_cost` across
/// racks. This is all the network structure Delay Scheduling, Coupling and
/// LARTS can see — the paper's §I criticizes exactly this granularity.
#[derive(Clone, Debug)]
pub struct RackLadderCost {
    layout: crate::topology::ClusterLayout,
    rack_cost: f64,
    remote_cost: f64,
}

impl RackLadderCost {
    /// The classic Hadoop ladder: 0 / 2 / 4.
    pub fn hadoop(layout: crate::topology::ClusterLayout) -> Self {
        Self::new(layout, 2.0, 4.0)
    }

    /// A custom ladder.
    pub fn new(layout: crate::topology::ClusterLayout, rack_cost: f64, remote_cost: f64) -> Self {
        assert!(remote_cost >= rack_cost && rack_cost >= 0.0);
        Self { layout, rack_cost, remote_cost }
    }
}

impl PathCost for RackLadderCost {
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else if self.layout.same_rack(a, b) {
            self.rack_cost
        } else {
            self.remote_cost
        }
    }

    fn n_nodes(&self) -> usize {
        self.layout.n_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn rack_ladder_matches_hadoop_classes() {
        let topo = Topology::multi_rack(2, 2, 1.0, 1.0);
        let c = RackLadderCost::hadoop(topo.layout().clone());
        assert_eq!(c.path_cost(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(c.path_cost(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(c.path_cost(NodeId(0), NodeId(2)), 4.0);
        assert_eq!(c.n_nodes(), 4);
    }

    #[test]
    fn rack_ladder_is_blind_within_a_rack() {
        // On a single-rack (or single-logical-rack) cluster every distinct
        // pair costs the same — the coarse view the paper improves on.
        let topo = Topology::palmetto_slice(9, 1.0);
        let c = RackLadderCost::hadoop(topo.layout().clone());
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    assert_eq!(c.path_cost(a, b), 2.0);
                }
            }
        }
    }

    #[test]
    fn uniform_cost_diagonal_is_zero() {
        let u = UniformCost::new(3, 5.0);
        assert_eq!(u.path_cost(NodeId(1), NodeId(1)), 0.0);
        assert_eq!(u.path_cost(NodeId(0), NodeId(2)), 5.0);
        assert_eq!(u.n_nodes(), 3);
    }

    #[test]
    fn reference_forwarding() {
        let u = UniformCost::new(2, 1.0);
        let r: &dyn PathCost = &u;
        assert_eq!((&r).path_cost(NodeId(0), NodeId(1)), 1.0);
        assert_eq!((&r).n_nodes(), 2);
    }
}
