//! Fluid flow model: max-min fair bandwidth sharing over routed paths.
//!
//! The simulator models every in-flight transfer (remote map input fetch,
//! shuffle segment) as a *flow* over the links of its route. Whenever the
//! flow set changes, rates are recomputed with the classic **progressive
//! filling** algorithm, which yields the max-min fair allocation:
//!
//! 1. all flows start unfrozen, every link has its full residual capacity;
//! 2. find the link whose equal share (`residual / unfrozen flows crossing
//!    it`) is smallest — this is the next bottleneck;
//! 3. freeze every unfrozen flow crossing it at that share, subtracting the
//!    share from the residual of every other link on the flow's path;
//! 4. repeat until every flow is frozen.
//!
//! The resulting per-flow rates are also what the paper's §II-B3 "network
//! condition" monitor observes: the measured transmission rate of a path is
//! exactly the rate contention leaves available on it.

use crate::topology::{LinkId, NodeId, Topology};

/// Handle of an active flow. Never reused within one [`FlowNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FlowId(pub u64);

#[derive(Clone, Debug)]
struct Flow {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    route: Vec<LinkId>,
    rate: f64,
}

/// A set of concurrent flows over a capacitated topology, with max-min
/// fair rate assignment.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    capacities: Vec<f64>,
    flows: Vec<Flow>,
    next_id: u64,
    /// Rates valid only when `clean`; recomputed lazily.
    clean: bool,
}

impl FlowNetwork {
    /// An empty flow set over the links of `topo`.
    pub fn new(topo: &Topology) -> Self {
        Self {
            capacities: topo.links().iter().map(|l| l.capacity_bps).collect(),
            flows: Vec::new(),
            next_id: 0,
            clean: true,
        }
    }

    /// An empty flow set over explicit link capacities (for tests).
    pub fn with_capacities(capacities: Vec<f64>) -> Self {
        Self { capacities, flows: Vec::new(), next_id: 0, clean: true }
    }

    /// Number of active flows.
    pub fn n_active(&self) -> usize {
        self.flows.len()
    }

    /// Start a flow from `src` to `dst` along `route`. An empty route means
    /// a node-local transfer; such flows get an infinite rate and never
    /// bottleneck anything.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, route: &[LinkId]) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.push(Flow { id, src, dst, route: route.to_vec(), rate: f64::INFINITY });
        self.clean = false;
        id
    }

    /// Remove a finished or cancelled flow. Panics on unknown id.
    pub fn remove_flow(&mut self, id: FlowId) {
        let pos = self
            .flows
            .iter()
            .position(|f| f.id == id)
            .expect("remove_flow: unknown flow id");
        self.flows.swap_remove(pos);
        self.clean = false;
    }

    /// Current max-min fair rate of `id` in bytes/second, recomputing if the
    /// flow set changed. Panics on unknown id.
    pub fn rate(&mut self, id: FlowId) -> f64 {
        self.ensure_rates();
        self.flows
            .iter()
            .find(|f| f.id == id)
            .expect("rate: unknown flow id")
            .rate
    }

    /// Endpoints of `id`.
    pub fn endpoints(&self, id: FlowId) -> (NodeId, NodeId) {
        let f = self
            .flows
            .iter()
            .find(|f| f.id == id)
            .expect("endpoints: unknown flow id");
        (f.src, f.dst)
    }

    /// Recompute (if needed) and iterate all `(id, src, dst, rate)` tuples.
    pub fn rates(&mut self) -> impl Iterator<Item = (FlowId, NodeId, NodeId, f64)> + '_ {
        self.ensure_rates();
        self.flows.iter().map(|f| (f.id, f.src, f.dst, f.rate))
    }

    /// Force recomputation now (no-op if rates are current).
    pub fn ensure_rates(&mut self) {
        if self.clean {
            return;
        }
        self.recompute();
        self.clean = true;
    }

    /// Progressive filling. O(L·B + F·P) where L = links carrying flows,
    /// B = bottleneck iterations (≤ L), F = flows, P = path length.
    fn recompute(&mut self) {
        let n_links = self.capacities.len();
        // Per-link state: residual capacity + unfrozen flow count.
        let mut residual = self.capacities.clone();
        let mut unfrozen_count = vec![0u32; n_links];
        // Per-link list of flow indices (rebuilt each recompute; cheaper and
        // simpler than incremental maintenance at our flow churn rates).
        let mut link_flows: Vec<Vec<u32>> = vec![Vec::new(); n_links];
        let mut frozen = vec![false; self.flows.len()];

        for (fi, f) in self.flows.iter_mut().enumerate() {
            if f.route.is_empty() {
                // Node-local transfer: unconstrained.
                f.rate = f64::INFINITY;
                frozen[fi] = true;
            } else {
                for l in &f.route {
                    unfrozen_count[l.idx()] += 1;
                    link_flows[l.idx()].push(fi as u32);
                }
            }
        }

        // Only links carrying ≥ 1 flow can ever be the bottleneck; scan that
        // (usually tiny) ascending subset instead of all `n_links`. Ascending
        // order preserves the exact first-strict-minimum selection of the
        // full scan, so allocations — and simulation traces — are unchanged.
        let mut loaded: Vec<u32> = (0..n_links as u32)
            .filter(|&l| unfrozen_count[l as usize] > 0)
            .collect();
        let mut remaining = frozen.iter().filter(|f| !**f).count();
        while remaining > 0 {
            // Find the bottleneck link: the smallest equal share.
            let mut best_link = usize::MAX;
            let mut best_share = f64::INFINITY;
            loaded.retain(|&l| unfrozen_count[l as usize] > 0);
            for &l in &loaded {
                let l = l as usize;
                let share = residual[l] / unfrozen_count[l] as f64;
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
            debug_assert!(best_link != usize::MAX, "unfrozen flows but no loaded link");
            let share = best_share.max(0.0);
            // Freeze every unfrozen flow crossing the bottleneck.
            for &fi in &link_flows[best_link] {
                let fi = fi as usize;
                if frozen[fi] {
                    continue;
                }
                frozen[fi] = true;
                remaining -= 1;
                self.flows[fi].rate = share;
                for l in &self.flows[fi].route {
                    let li = l.idx();
                    residual[li] = (residual[li] - share).max(0.0);
                    unfrozen_count[li] -= 1;
                }
            }
        }
    }

    /// Override the capacity of one link (fault injection: link-rate
    /// degradation windows scale a node's NIC down and back up). Rates are
    /// lazily recomputed on the next query. Panics on unknown link.
    pub fn set_capacity(&mut self, link: LinkId, capacity_bps: f64) {
        assert!(capacity_bps > 0.0, "link capacity must stay positive");
        self.capacities[link.idx()] = capacity_bps;
        self.clean = false;
    }

    /// Current configured capacity of `link` in bytes/second.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.capacities[link.idx()]
    }

    /// Sum of current rates crossing `link` (diagnostics / tests).
    pub fn link_load(&mut self, link: LinkId) -> f64 {
        self.ensure_rates();
        self.flows
            .iter()
            .filter(|f| f.route.contains(&link))
            .map(|f| f.rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    const GB: f64 = 1e9 / 8.0; // 1 Gbps in bytes/sec

    fn star(n: usize) -> (Topology, RoutingTable) {
        let t = Topology::single_rack(n, GB);
        let rt = RoutingTable::new(&t);
        (t, rt)
    }

    #[test]
    fn single_flow_gets_full_path_capacity() {
        let (t, rt) = star(3);
        let mut fx = FlowNetwork::new(&t);
        let f = fx.add_flow(NodeId(0), NodeId(1), rt.route(NodeId(0), NodeId(1)));
        assert!((fx.rate(f) - GB).abs() < 1e-6);
    }

    #[test]
    fn local_flow_is_unconstrained() {
        let (t, rt) = star(2);
        let mut fx = FlowNetwork::new(&t);
        let f = fx.add_flow(NodeId(0), NodeId(0), rt.route(NodeId(0), NodeId(0)));
        assert!(fx.rate(f).is_infinite());
    }

    #[test]
    fn two_flows_share_a_nic_evenly() {
        let (t, rt) = star(3);
        let mut fx = FlowNetwork::new(&t);
        // Both flows terminate at node 0: its NIC is the bottleneck.
        let f1 = fx.add_flow(NodeId(1), NodeId(0), rt.route(NodeId(1), NodeId(0)));
        let f2 = fx.add_flow(NodeId(2), NodeId(0), rt.route(NodeId(2), NodeId(0)));
        assert!((fx.rate(f1) - GB / 2.0).abs() < 1e-6);
        assert!((fx.rate(f2) - GB / 2.0).abs() < 1e-6);
    }

    #[test]
    fn removal_restores_capacity() {
        let (t, rt) = star(3);
        let mut fx = FlowNetwork::new(&t);
        let f1 = fx.add_flow(NodeId(1), NodeId(0), rt.route(NodeId(1), NodeId(0)));
        let f2 = fx.add_flow(NodeId(2), NodeId(0), rt.route(NodeId(2), NodeId(0)));
        assert!((fx.rate(f1) - GB / 2.0).abs() < 1e-6);
        fx.remove_flow(f2);
        assert!((fx.rate(f1) - GB).abs() < 1e-6);
        assert_eq!(fx.n_active(), 1);
    }

    #[test]
    fn max_min_is_not_merely_proportional() {
        // Two racks, thin uplink: cross-rack flows bottleneck on the uplink,
        // and the in-rack flow picks up the slack on its NIC — the defining
        // max-min behaviour.
        let t = Topology::multi_rack(2, 2, GB, GB / 2.0);
        let rt = RoutingTable::new(&t);
        let mut fx = FlowNetwork::new(&t);
        // Cross-rack: node2 -> node0 (shares node0's NIC with f_local).
        let f_cross = fx.add_flow(NodeId(2), NodeId(0), rt.route(NodeId(2), NodeId(0)));
        // In-rack: node1 -> node0.
        let f_local = fx.add_flow(NodeId(1), NodeId(0), rt.route(NodeId(1), NodeId(0)));
        // Uplink capacity GB/2 carries only f_cross -> f_cross = GB/2;
        // node0 NIC splits GB between both, equal share GB/2 each, so NIC is
        // not the binding constraint and f_local takes GB - GB/2 = GB/2...
        // with equal split both get GB/2: check uplink share first.
        let rc = fx.rate(f_cross);
        let rl = fx.rate(f_local);
        assert!((rc + rl - GB).abs() < 1e-6, "dst NIC saturated");
        assert!(rc <= GB / 2.0 + 1e-6, "cross-rack flow capped by uplink");
        assert!(rl >= rc - 1e-6, "in-rack flow never below cross-rack flow");
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // 3 flows into node0, one flow between node1 and node2. The NIC of
        // node0 is shared 3 ways; the 1<->2 flow only shares the switch, so
        // it gets its full NIC rate.
        let (t, rt) = star(4);
        let mut fx = FlowNetwork::new(&t);
        let into0: Vec<_> = (1..4)
            .map(|s| fx.add_flow(NodeId(s), NodeId(0), rt.route(NodeId(s), NodeId(0))))
            .collect();
        for f in &into0 {
            assert!((fx.rate(*f) - GB / 3.0).abs() < 1e-5);
        }
        // Node 3 -> node 2: node3's NIC carries the into0 flow (GB/3) plus
        // this one; max-min gives it the residual 2/3 GB.
        let side = fx.add_flow(NodeId(3), NodeId(2), rt.route(NodeId(3), NodeId(2)));
        let r = fx.rate(side);
        assert!((r - 2.0 * GB / 3.0).abs() < 1e-5, "got {r}");
    }

    #[test]
    fn rates_iterator_reports_all_flows() {
        let (t, rt) = star(3);
        let mut fx = FlowNetwork::new(&t);
        fx.add_flow(NodeId(1), NodeId(0), rt.route(NodeId(1), NodeId(0)));
        fx.add_flow(NodeId(2), NodeId(0), rt.route(NodeId(2), NodeId(0)));
        let v: Vec<_> = fx.rates().collect();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|(_, _, dst, r)| *dst == NodeId(0) && *r > 0.0));
    }

    #[test]
    fn link_load_never_exceeds_capacity() {
        let (t, rt) = star(5);
        let mut fx = FlowNetwork::new(&t);
        for s in 1..5 {
            fx.add_flow(NodeId(s), NodeId(0), rt.route(NodeId(s), NodeId(0)));
            fx.add_flow(NodeId(0), NodeId(s), rt.route(NodeId(0), NodeId(s)));
        }
        for (i, l) in t.links().iter().enumerate() {
            let load = fx.link_load(LinkId(i as u32));
            assert!(load <= l.capacity_bps + 1e-6, "link {i} overloaded: {load}");
        }
    }

    #[test]
    fn degrading_a_link_rescales_active_flows() {
        let (t, rt) = star(3);
        let mut fx = FlowNetwork::new(&t);
        let f = fx.add_flow(NodeId(1), NodeId(0), rt.route(NodeId(1), NodeId(0)));
        assert!((fx.rate(f) - GB).abs() < 1e-6);
        // Node 0's NIC is the first link in a single-rack topology's
        // incident list; find it through the topology rather than guessing.
        let nic = t.incident(crate::topology::Vertex::Node(NodeId(0)))[0].0;
        fx.set_capacity(nic, GB / 10.0);
        assert!((fx.rate(f) - GB / 10.0).abs() < 1e-6, "flow follows the degraded link");
        fx.set_capacity(nic, GB);
        assert!((fx.rate(f) - GB).abs() < 1e-6, "restore brings the rate back");
        assert!((fx.capacity(nic) - GB).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown flow id")]
    fn removing_unknown_flow_panics() {
        let (t, _) = star(2);
        let mut fx = FlowNetwork::new(&t);
        fx.remove_flow(FlowId(42));
    }
}
