//! The hop distance matrix `H` of the paper (§II-B1).
//!
//! `h_ab` is the number of hops (links) on the shortest path between data
//! nodes `D_a` and `D_b`. It can be computed from a [`Topology`] by BFS, or
//! supplied verbatim — the paper's Figure 2 worked example gives `H`
//! directly, and §II-B3 replaces hop counts with inverse transmission rates
//! while keeping the same matrix shape.

use crate::cost::PathCost;
use crate::topology::{NodeId, Topology, Vertex};
use std::collections::VecDeque;

/// A dense symmetric matrix of node-to-node path costs.
///
/// Entries are `f64` so the same type serves hop counts and the
/// inverse-rate variant of §II-B3. Diagonal entries are always 0.
///
/// The matrix carries a [`PathCost::version`] revision tag so schedulers
/// can cache values derived from it; `set` bumps the tag automatically and
/// runtimes that rebuild the matrix wholesale stamp it via `set_version`.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    entries: Vec<f64>,
    version: u64,
}

/// Value equality ignores the `version` cache tag.
impl PartialEq for DistanceMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.entries == other.entries
    }
}

impl DistanceMatrix {
    /// Build from explicit row-major entries. Panics if `entries` is not
    /// `n × n`, any diagonal entry is non-zero, or any entry is negative.
    pub fn from_rows(n: usize, entries: Vec<f64>) -> Self {
        assert_eq!(entries.len(), n * n, "distance matrix must be n×n");
        for i in 0..n {
            assert_eq!(entries[i * n + i], 0.0, "diagonal must be zero");
            for j in 0..n {
                assert!(entries[i * n + j] >= 0.0, "distances must be non-negative");
            }
        }
        Self { n, entries, version: 0 }
    }

    /// An all-zero matrix (every node equidistant at 0); mostly for tests.
    pub fn zero(n: usize) -> Self {
        Self { n, entries: vec![0.0; n * n], version: 0 }
    }

    /// Hop counts computed from `topo` by BFS from every node.
    ///
    /// Unreachable pairs get `f64::INFINITY`. Each link crossed counts as
    /// one hop, so two nodes under the same switch are 2 hops apart, nodes
    /// under different ToR switches of a common core are 4 hops apart, etc.
    pub fn hops(topo: &Topology) -> Self {
        let n = topo.n_nodes();
        let n_vertices = n + topo.n_switches();
        let mut entries = vec![f64::INFINITY; n * n];
        let mut dist = vec![u32::MAX; n_vertices];
        let mut queue = VecDeque::new();
        for src in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            queue.clear();
            let src_v = Vertex::Node(NodeId(src as u32));
            dist[src] = 0;
            queue.push_back(src_v);
            while let Some(v) = queue.pop_front() {
                let vi = match v {
                    Vertex::Node(nd) => nd.idx(),
                    Vertex::Switch(s) => n + s.0 as usize,
                };
                let d = dist[vi];
                for &(_, next) in topo.incident(v) {
                    let ni = match next {
                        Vertex::Node(nd) => nd.idx(),
                        Vertex::Switch(s) => n + s.0 as usize,
                    };
                    if dist[ni] == u32::MAX {
                        dist[ni] = d + 1;
                        queue.push_back(next);
                    }
                }
            }
            for dst in 0..n {
                if dist[dst] != u32::MAX {
                    entries[src * n + dst] = dist[dst] as f64;
                }
            }
        }
        Self { n, entries, version: 0 }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current revision tag (see [`PathCost::version`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamp the revision tag (used by runtimes that rebuild the matrix
    /// per refresh and need downstream caches to notice).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Distance between `a` and `b`.
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> f64 {
        self.entries[a.idx() * self.n + b.idx()]
    }

    /// Mutable entry access, e.g. to overwrite hop counts with inverse
    /// rates per §II-B3. Bumps the revision tag.
    pub fn set(&mut self, a: NodeId, b: NodeId, v: f64) {
        assert!(v >= 0.0);
        self.entries[a.idx() * self.n + b.idx()] = v;
        self.version += 1;
    }

    /// The matrix from the paper's Figure 2 worked example (4 nodes).
    ///
    /// The text pins down row `D_3`: distances to `D_1..D_4` are
    /// `[2, 10, 0, 6]`, and the map/reduce example uses `h(D_1,D_2)=4` and
    /// `h(D_2,D_3)=10` (cost of `M_2@D_2 → R_1@D_1` is `20·4`, and
    /// `M_2@D_2 → R_2@D_3` is `10·10`). We complete the symmetric matrix
    /// with `h(D_1,D_4)=8`, `h(D_2,D_4)=12` — unused by the example.
    pub fn paper_figure2() -> Self {
        #[rustfmt::skip]
        let rows = vec![
            0.0,  4.0,  2.0,  8.0,
            4.0,  0.0, 10.0, 12.0,
            2.0, 10.0,  0.0,  6.0,
            8.0, 12.0,  6.0,  0.0,
        ];
        Self::from_rows(4, rows)
    }

    /// Whether the matrix is symmetric (it is for hop counts; measured-rate
    /// matrices may not be).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.entries[i * self.n + j] != self.entries[j * self.n + i] {
                    return false;
                }
            }
        }
        true
    }
}

impl PathCost for DistanceMatrix {
    #[inline]
    fn path_cost(&self, a: NodeId, b: NodeId) -> f64 {
        self.get(a, b)
    }

    fn n_nodes(&self) -> usize {
        self.n
    }

    fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9 / 8.0;

    #[test]
    fn single_rack_hops_are_two() {
        let t = Topology::single_rack(4, GB);
        let h = DistanceMatrix::hops(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                let expect = if a == b { 0.0 } else { 2.0 };
                assert_eq!(h.get(a, b), expect, "{a}->{b}");
            }
        }
    }

    #[test]
    fn multi_rack_hop_ladder() {
        let t = Topology::multi_rack(2, 2, GB, GB);
        let h = DistanceMatrix::hops(&t);
        // same node / same rack / cross rack = 0 / 2 / 4
        assert_eq!(h.get(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(h.get(NodeId(0), NodeId(1)), 2.0);
        assert_eq!(h.get(NodeId(0), NodeId(2)), 4.0);
        assert!(h.is_symmetric());
    }

    #[test]
    fn isolated_nodes_are_unreachable() {
        let t = Topology::isolated(2);
        let h = DistanceMatrix::hops(&t);
        assert_eq!(h.get(NodeId(0), NodeId(0)), 0.0);
        assert!(h.get(NodeId(0), NodeId(1)).is_infinite());
    }

    #[test]
    fn paper_matrix_matches_text() {
        let h = DistanceMatrix::paper_figure2();
        // Row D3 (index 2) from the text: 2, 10, 0, 6.
        assert_eq!(h.get(NodeId(2), NodeId(0)), 2.0);
        assert_eq!(h.get(NodeId(2), NodeId(1)), 10.0);
        assert_eq!(h.get(NodeId(2), NodeId(2)), 0.0);
        assert_eq!(h.get(NodeId(2), NodeId(3)), 6.0);
        // Distances used by the reduce example.
        assert_eq!(h.get(NodeId(1), NodeId(0)), 4.0);
        assert_eq!(h.get(NodeId(1), NodeId(2)), 10.0);
        assert!(h.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "diagonal must be zero")]
    fn nonzero_diagonal_rejected() {
        DistanceMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must be n×n")]
    fn wrong_shape_rejected() {
        DistanceMatrix::from_rows(2, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn set_overrides_entry() {
        let mut h = DistanceMatrix::zero(2);
        h.set(NodeId(0), NodeId(1), 7.5);
        assert_eq!(h.get(NodeId(0), NodeId(1)), 7.5);
        assert_eq!(h.get(NodeId(1), NodeId(0)), 0.0, "set is directional");
    }

    #[test]
    fn path_cost_impl_delegates() {
        let h = DistanceMatrix::paper_figure2();
        assert_eq!(PathCost::path_cost(&h, NodeId(2), NodeId(1)), 10.0);
        assert_eq!(PathCost::n_nodes(&h), 4);
    }

    #[test]
    fn version_tracks_mutation_but_not_equality() {
        let mut h = DistanceMatrix::paper_figure2();
        let pristine = DistanceMatrix::paper_figure2();
        assert_eq!(PathCost::version(&h), 0);
        h.set(NodeId(0), NodeId(1), 4.0); // same value, still a mutation
        assert_eq!(PathCost::version(&h), 1);
        assert_eq!(h, pristine, "version is a cache tag, not part of value identity");
        h.set_version(42);
        assert_eq!(h.version(), 42);
    }
}
