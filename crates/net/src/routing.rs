//! Link-level shortest-path routing.
//!
//! The fluid flow model ([`crate::flow`]) needs, for every node pair, the
//! set of links a transfer occupies. [`RoutingTable`] precomputes a BFS
//! shortest-path tree per source node and materializes paths as link-id
//! lists on demand (paths in the tree shapes we build are ≤ 4 links).

use crate::topology::{LinkId, NodeId, Topology, Vertex};
use std::collections::VecDeque;

/// Precomputed routes between all node pairs of a topology.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    n_nodes: usize,
    /// `paths[a * n + b]` = links on the route a→b (empty when a == b or
    /// unreachable; use [`RoutingTable::reachable`] to distinguish).
    paths: Vec<Vec<LinkId>>,
    reachable: Vec<bool>,
}

impl RoutingTable {
    /// Compute routes for every ordered node pair of `topo`.
    pub fn new(topo: &Topology) -> Self {
        let n = topo.n_nodes();
        let n_vertices = n + topo.n_switches();
        let mut paths = vec![Vec::new(); n * n];
        let mut reachable = vec![false; n * n];

        let vid = |v: Vertex| -> usize {
            match v {
                Vertex::Node(nd) => nd.idx(),
                Vertex::Switch(s) => n + s.0 as usize,
            }
        };

        let mut parent: Vec<Option<(LinkId, Vertex)>> = vec![None; n_vertices];
        let mut seen = vec![false; n_vertices];
        for src in 0..n {
            parent.iter_mut().for_each(|p| *p = None);
            seen.iter_mut().for_each(|s| *s = false);
            let src_v = Vertex::Node(NodeId(src as u32));
            seen[vid(src_v)] = true;
            let mut queue = VecDeque::new();
            queue.push_back(src_v);
            while let Some(v) = queue.pop_front() {
                for &(link, next) in topo.incident(v) {
                    let ni = vid(next);
                    if !seen[ni] {
                        seen[ni] = true;
                        parent[ni] = Some((link, v));
                        queue.push_back(next);
                    }
                }
            }
            for dst in 0..n {
                if dst == src {
                    reachable[src * n + dst] = true;
                    continue;
                }
                if !seen[dst] {
                    continue;
                }
                reachable[src * n + dst] = true;
                let mut route = Vec::new();
                let mut cur = Vertex::Node(NodeId(dst as u32));
                while vid(cur) != vid(src_v) {
                    let (link, prev) =
                        parent[vid(cur)].expect("seen vertices have parents back to source");
                    route.push(link);
                    cur = prev;
                }
                route.reverse();
                paths[src * n + dst] = route;
            }
        }
        Self { n_nodes: n, paths, reachable }
    }

    /// Number of nodes routed over.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Links on the route `a → b`; empty for `a == b`.
    /// Panics if the pair is unreachable.
    pub fn route(&self, a: NodeId, b: NodeId) -> &[LinkId] {
        assert!(
            self.reachable[a.idx() * self.n_nodes + b.idx()],
            "no route {a} -> {b}"
        );
        &self.paths[a.idx() * self.n_nodes + b.idx()]
    }

    /// Whether a route exists from `a` to `b`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.reachable[a.idx() * self.n_nodes + b.idx()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;

    const GB: f64 = 1e9 / 8.0;

    #[test]
    fn single_rack_routes_have_two_links() {
        let t = Topology::single_rack(3, GB);
        let rt = RoutingTable::new(&t);
        assert!(rt.route(NodeId(0), NodeId(0)).is_empty());
        assert_eq!(rt.route(NodeId(0), NodeId(1)).len(), 2);
        assert_eq!(rt.route(NodeId(2), NodeId(1)).len(), 2);
    }

    #[test]
    fn multi_rack_cross_rack_routes_use_uplinks() {
        let t = Topology::multi_rack(2, 2, GB, GB);
        let rt = RoutingTable::new(&t);
        assert_eq!(rt.route(NodeId(0), NodeId(1)).len(), 2);
        assert_eq!(rt.route(NodeId(0), NodeId(2)).len(), 4);
    }

    #[test]
    fn route_length_equals_hop_distance() {
        let t = Topology::palmetto_slice(12, GB);
        let rt = RoutingTable::new(&t);
        let h = DistanceMatrix::hops(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(rt.route(a, b).len() as f64, h.get(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn isolated_pairs_unreachable() {
        let t = Topology::isolated(2);
        let rt = RoutingTable::new(&t);
        assert!(rt.reachable(NodeId(0), NodeId(0)));
        assert!(!rt.reachable(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unreachable_route_panics() {
        let t = Topology::isolated(2);
        let rt = RoutingTable::new(&t);
        rt.route(NodeId(0), NodeId(1));
    }

    #[test]
    fn routes_are_symmetric_in_length() {
        let t = Topology::multi_rack(3, 4, GB, 10.0 * GB);
        let rt = RoutingTable::new(&t);
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(rt.route(a, b).len(), rt.route(b, a).len());
            }
        }
    }
}
