//! Tenant descriptions and the service-mode configuration.

/// One tenant of the shared cluster: a named pool with a fair-share
/// weight, an admission bound, and an optional guaranteed minimum share
/// of the cluster's map slots.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (stable identifier in reports and counters).
    pub name: String,
    /// Fair-share weight; slot service converges to the weight ratio
    /// among demanding tenants. Must be > 0.
    pub weight: f64,
    /// Maximum jobs simultaneously *in system* (admitted and not yet
    /// finished). Arrivals beyond the bound are rejected with
    /// [`RejectReason::QueueFull`](crate::RejectReason::QueueFull).
    /// `usize::MAX` (the default) disables the bound.
    pub queue_cap: usize,
    /// Guaranteed minimum fraction of total map slots while the tenant
    /// has queued map work. When the tenant holds fewer running maps
    /// than this share and no slot is free, the preemption policy may
    /// kill-and-requeue an over-share tenant's attempt. 0 disables.
    pub min_share: f64,
}

impl TenantSpec {
    /// A tenant with `weight`, no queue bound and no minimum share.
    pub fn new(name: &str, weight: f64) -> Self {
        assert!(weight > 0.0, "tenant weight must be positive");
        Self { name: name.to_string(), weight, queue_cap: usize::MAX, min_share: 0.0 }
    }

    /// Bound the number of in-system jobs.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Guarantee a minimum fraction of total map slots.
    pub fn with_min_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "min_share must be in [0, 1]");
        self.min_share = share;
        self
    }
}

/// The set of tenants sharing the cluster. Tenant ids are indices into
/// this set and are stable for a run.
#[derive(Clone, Debug)]
pub struct TenantSet {
    specs: Vec<TenantSpec>,
}

impl TenantSet {
    /// Validate and freeze a tenant set. Panics on an empty set, a
    /// non-positive weight, or a combined `min_share` above 1.0 (the
    /// guarantees would be unsatisfiable).
    pub fn new(specs: Vec<TenantSpec>) -> Self {
        assert!(!specs.is_empty(), "tenant set must be non-empty");
        let mut total_min = 0.0;
        for s in &specs {
            assert!(s.weight > 0.0, "tenant {} weight must be positive", s.name);
            total_min += s.min_share;
        }
        assert!(total_min <= 1.0 + 1e-9, "combined min_share exceeds the cluster");
        Self { specs }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the set is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The spec of tenant `t`.
    pub fn get(&self, t: usize) -> &TenantSpec {
        &self.specs[t]
    }

    /// Iterate the specs in tenant-id order.
    pub fn iter(&self) -> impl Iterator<Item = &TenantSpec> {
        self.specs.iter()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.specs.iter().map(|s| s.weight).sum()
    }

    /// The fair-share weight vector, indexed by tenant id.
    pub fn weights(&self) -> Vec<f64> {
        self.specs.iter().map(|s| s.weight).collect()
    }
}

/// Full service-mode configuration handed to the simulator: who the
/// tenants are, which tenant each job belongs to, and which policies are
/// active.
#[derive(Clone, Debug)]
pub struct TenancyConfig {
    /// The tenants sharing the cluster.
    pub tenants: TenantSet,
    /// Tenant id of each job, indexed by job index (parallel to the
    /// simulator's job-input list). Jobs beyond the end of this vector
    /// belong to tenant 0.
    pub job_tenant: Vec<u32>,
    /// Arbitrate free slots between tenants with deficit-weighted
    /// round-robin instead of the global single-pool job order.
    pub fairness: bool,
    /// Enforce per-tenant queue bounds and cluster-saturation
    /// backpressure at job arrival.
    pub admission: bool,
    /// Kill-and-requeue an over-share map attempt when a tenant with
    /// queued map work falls below its `min_share` and no slot is free.
    pub preemption: bool,
    /// Saturation backpressure threshold: reject arrivals while the
    /// cluster-wide backlog of unassigned tasks exceeds this many tasks
    /// *per slot*. `f64::INFINITY` (the default) disables the check.
    pub saturation_backlog: f64,
    /// Minimum simulated seconds between two preemptions, bounding churn.
    pub preempt_cooldown_s: f64,
}

impl TenancyConfig {
    /// A config with every policy off — callers opt in per policy.
    pub fn new(tenants: TenantSet, job_tenant: Vec<u32>) -> Self {
        Self {
            tenants,
            job_tenant,
            fairness: false,
            admission: false,
            preemption: false,
            saturation_backlog: f64::INFINITY,
            preempt_cooldown_s: 10.0,
        }
    }

    /// The single-tenant special case: one tenant owning every job,
    /// every policy off. A simulator run through this configuration
    /// must be byte-identical to a run with no tenancy layer at all.
    pub fn single_tenant(n_jobs: usize) -> Self {
        Self::new(
            TenantSet::new(vec![TenantSpec::new("default", 1.0)]),
            vec![0; n_jobs],
        )
    }

    /// Whether this configuration is the identity: one tenant and no
    /// active policy, so scheduling decisions cannot differ from the
    /// tenancy-free path.
    pub fn is_passthrough(&self) -> bool {
        self.tenants.len() == 1 && !self.fairness && !self.admission && !self.preemption
    }

    /// The tenant id of job `job`.
    pub fn tenant_of(&self, job: usize) -> usize {
        self.job_tenant.get(job).copied().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_passthrough() {
        let c = TenancyConfig::single_tenant(5);
        assert!(c.is_passthrough());
        assert_eq!(c.tenants.len(), 1);
        assert_eq!(c.tenant_of(0), 0);
        assert_eq!(c.tenant_of(4), 0);
        assert_eq!(c.tenant_of(99), 0, "out-of-range jobs default to tenant 0");
    }

    #[test]
    fn any_policy_breaks_passthrough() {
        let mut c = TenancyConfig::single_tenant(3);
        c.fairness = true;
        assert!(!c.is_passthrough());
        let mut c = TenancyConfig::single_tenant(3);
        c.admission = true;
        assert!(!c.is_passthrough());
        let mut c = TenancyConfig::single_tenant(3);
        c.preemption = true;
        assert!(!c.is_passthrough());
    }

    #[test]
    fn multi_tenant_is_not_passthrough() {
        let set = TenantSet::new(vec![TenantSpec::new("a", 1.0), TenantSpec::new("b", 2.0)]);
        let c = TenancyConfig::new(set, vec![0, 1, 0]);
        assert!(!c.is_passthrough());
        assert_eq!(c.tenant_of(1), 1);
        assert_eq!(c.tenants.total_weight(), 3.0);
        assert_eq!(c.tenants.weights(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_tenant_set_panics() {
        TenantSet::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        TenantSpec::new("z", 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the cluster")]
    fn oversubscribed_min_share_panics() {
        TenantSet::new(vec![
            TenantSpec::new("a", 1.0).with_min_share(0.7),
            TenantSpec::new("b", 1.0).with_min_share(0.7),
        ]);
    }

    #[test]
    fn spec_builders() {
        let s = TenantSpec::new("gold", 4.0).with_queue_cap(8).with_min_share(0.25);
        assert_eq!(s.queue_cap, 8);
        assert_eq!(s.min_share, 0.25);
        assert_eq!(s.weight, 4.0);
    }
}
