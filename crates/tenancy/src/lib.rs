#![warn(missing_docs)]
//! # pnats-tenancy — multi-tenant service-mode policies
//!
//! The paper evaluates closed batches on an idle cluster; a production
//! tracker serves open-loop job streams from many tenants at once. This
//! crate holds the tenant-aware *policy* layer that sits **above** the
//! unmodified [`TaskPlacer`](https://docs.rs) impls: it decides *which
//! tenant's job* is offered each free slot, *whether* an arriving job is
//! admitted at all, and *when* a running map attempt is preempted to
//! restore a starved tenant's minimum share. The placer still decides
//! *where* the chosen task runs — the paper's probabilistic network-aware
//! placement is untouched.
//!
//! Three pieces, mirroring Hadoop's Fair Scheduler pools but slot-granular:
//!
//! * [`TenantSpec`]/[`TenantSet`]/[`TenancyConfig`] ([`spec`]) — weights,
//!   per-tenant queue bounds, minimum map-slot shares, and the per-job
//!   tenant tags. [`TenancyConfig::is_passthrough`] identifies the
//!   single-tenant/no-policy configuration that must behave byte-
//!   identically to a simulator without any tenancy layer at all.
//! * [`DwrrArbiter`] ([`arbiter`]) — deficit-weighted round-robin over
//!   *demanding* tenants (those with queued work). One `pick` per free
//!   slot; service converges to the weight ratio. Deterministic: state is
//!   a deficit vector and a cursor, no clocks, no randomness.
//! * [`admission`] — bounded per-tenant queues plus cluster-saturation
//!   backpressure with typed [`RejectReason`]s, and the per-tenant
//!   [`TenantCounters`] the observability layer reports.
//!
//! The crate is pure policy — no simulator types, no I/O — so the same
//! arbiter can drive the discrete-event simulator and, later, the live
//! TCP JobTracker.

pub mod admission;
pub mod arbiter;
pub mod spec;

pub use admission::{admit, AdmissionDecision, RejectReason, TenantCounters};
pub use arbiter::DwrrArbiter;
pub use spec::{TenancyConfig, TenantSet, TenantSpec};
