//! Deficit-weighted round-robin slot arbitration.
//!
//! Classic DWRR (Shreedhar & Varghese) at slot granularity: every
//! "packet" is one slot offer of cost 1, a tenant's quantum is its
//! weight, and only *demanding* tenants (non-empty work queues) sit in
//! the rotation. Over any window in which a set of tenants stays
//! demanding, each receives slots in proportion to its weight, with
//! bounded short-term error — the same guarantee the virtual-cluster
//! slot split of Lee & Lin's job-driven scheduler targets, computed
//! incrementally instead of by re-partitioning.

/// Deficit-weighted round-robin over a fixed universe of tenants.
///
/// Deterministic: the only state is a deficit per tenant and a rotation
/// cursor. Identical call sequences yield identical picks.
#[derive(Clone, Debug)]
pub struct DwrrArbiter {
    weights: Vec<f64>,
    deficit: Vec<f64>,
    /// Tenant id the rotation resumes from (inclusive).
    cursor: usize,
}

impl DwrrArbiter {
    /// An arbiter over `weights.len()` tenants. All weights must be
    /// positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "arbiter needs at least one tenant");
        assert!(weights.iter().all(|w| *w > 0.0), "weights must be positive");
        Self { weights: weights.to_vec(), deficit: vec![0.0; weights.len()], cursor: 0 }
    }

    /// Number of tenants in the universe.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the universe is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current deficit of tenant `t` (for tests and reports).
    pub fn deficit(&self, t: usize) -> f64 {
        self.deficit[t]
    }

    /// Forget tenant `t`'s banked credit. Call when the tenant's work
    /// queue empties: an idle tenant must not accumulate deficit and
    /// later burst past its share (standard DWRR queue-empty reset).
    pub fn reset(&mut self, t: usize) {
        self.deficit[t] = 0.0;
    }

    /// Return a slot charge taken by [`DwrrArbiter::pick`] that was not
    /// used — the task-level placer declined the offer, so the slot
    /// stayed idle. Without the refund a tenant would pay fair-share
    /// credit for slots it never received.
    pub fn refund(&mut self, t: usize) {
        self.deficit[t] += 1.0;
    }

    /// Choose the tenant that gets the next free slot, among `demanding`
    /// (sorted, non-empty, no duplicates). Charges the winner one slot
    /// of deficit.
    ///
    /// The rotation visits demanding tenants in id order starting at the
    /// cursor; a visit tops the tenant's deficit up by its weight, and a
    /// tenant with at least one slot of deficit is served immediately
    /// (the cursor stays on it, so it keeps winning while its credit
    /// lasts — DWRR serves a queue's whole quantum per visit).
    pub fn pick(&mut self, demanding: &[usize]) -> usize {
        assert!(!demanding.is_empty(), "pick() needs a demanding tenant");
        debug_assert!(demanding.windows(2).all(|w| w[0] < w[1]), "demanding must be sorted");
        loop {
            // First demanding tenant at or after the cursor, wrapping.
            let t = demanding
                .iter()
                .copied()
                .find(|&t| t >= self.cursor)
                .unwrap_or(demanding[0]);
            if self.deficit[t] >= 1.0 {
                self.deficit[t] -= 1.0;
                self.cursor = t;
                return t;
            }
            // Out of credit at this stop: top up and advance the rotation.
            // Each full rotation adds every demanding tenant's (positive)
            // weight, so some deficit reaches 1.0 and the loop terminates.
            self.deficit[t] += self.weights[t];
            self.cursor = t + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serve `n` slots and count per-tenant wins.
    fn serve(arb: &mut DwrrArbiter, demanding: &[usize], n: usize) -> Vec<usize> {
        let mut wins = vec![0usize; arb.len()];
        for _ in 0..n {
            wins[arb.pick(demanding)] += 1;
        }
        wins
    }

    #[test]
    fn single_tenant_always_wins() {
        let mut arb = DwrrArbiter::new(&[3.0]);
        assert_eq!(serve(&mut arb, &[0], 10), vec![10]);
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut arb = DwrrArbiter::new(&[1.0, 1.0]);
        let wins = serve(&mut arb, &[0, 1], 100);
        assert_eq!(wins, vec![50, 50]);
    }

    #[test]
    fn service_tracks_weight_ratio() {
        let mut arb = DwrrArbiter::new(&[2.0, 1.0]);
        let wins = serve(&mut arb, &[0, 1], 90);
        assert_eq!(wins, vec![60, 30], "2:1 weights give 2:1 service");
        let mut arb = DwrrArbiter::new(&[4.0, 2.0, 1.0]);
        let wins = serve(&mut arb, &[0, 1, 2], 140);
        assert_eq!(wins, vec![80, 40, 20], "4:2:1 weights give 4:2:1 service");
    }

    #[test]
    fn fractional_weights_work() {
        let mut arb = DwrrArbiter::new(&[0.5, 0.25]);
        let wins = serve(&mut arb, &[0, 1], 60);
        assert_eq!(wins, vec![40, 20], "ratios matter, not magnitudes");
    }

    #[test]
    fn non_demanding_tenants_get_nothing() {
        let mut arb = DwrrArbiter::new(&[1.0, 5.0, 1.0]);
        let wins = serve(&mut arb, &[0, 2], 40);
        assert_eq!(wins[1], 0);
        assert_eq!(wins, vec![20, 0, 20]);
    }

    #[test]
    fn reset_forfeits_banked_credit() {
        let mut arb = DwrrArbiter::new(&[10.0, 1.0]);
        // Tenant 0 banks a big deficit…
        arb.pick(&[0, 1]);
        assert!(arb.deficit(0) > 1.0);
        // …but going idle forfeits it.
        arb.reset(0);
        assert_eq!(arb.deficit(0), 0.0);
    }

    #[test]
    fn refund_restores_the_charge() {
        let mut arb = DwrrArbiter::new(&[1.0, 1.0]);
        let t = arb.pick(&[0, 1]);
        let before = arb.deficit(t);
        arb.refund(t);
        assert_eq!(arb.deficit(t), before + 1.0);
        // A refunded pick does not shift long-run shares: tenant t's next
        // win is free, so 100 charged slots still split 50/50.
        let mut wins = vec![0usize; 2];
        wins[t] += 0; // the refunded offer assigned nothing
        for _ in 0..100 {
            wins[arb.pick(&[0, 1])] += 1;
        }
        assert_eq!(wins.iter().sum::<usize>(), 100);
        assert!((wins[0] as i64 - wins[1] as i64).abs() <= 2, "{wins:?}");
    }

    #[test]
    fn deterministic_replay() {
        let mut a = DwrrArbiter::new(&[3.0, 1.0, 2.0]);
        let mut b = DwrrArbiter::new(&[3.0, 1.0, 2.0]);
        let demanding = [0, 1, 2];
        for _ in 0..200 {
            assert_eq!(a.pick(&demanding), b.pick(&demanding));
        }
    }

    #[test]
    fn short_term_error_is_bounded() {
        // Over any prefix, a tenant's service deviates from its weight
        // share by at most ~one quantum.
        let w = [3.0, 1.0];
        let mut arb = DwrrArbiter::new(&w);
        let mut wins = [0f64; 2];
        for n in 1..=200 {
            wins[arb.pick(&[0, 1])] += 1.0;
            let expected0 = n as f64 * 3.0 / 4.0;
            assert!(
                (wins[0] - expected0).abs() <= 3.0 + 1.0,
                "prefix {n}: service {} vs expected {expected0}",
                wins[0]
            );
        }
    }
}
