//! Admission control and per-tenant service counters.
//!
//! Open-loop arrival streams have no intrinsic back-off: past the
//! cluster's saturation point, queues only grow. Service mode therefore
//! sheds load at *arrival* — per-tenant bounded queues first (a noisy
//! tenant cannot monopolize the backlog), then a cluster-wide saturation
//! check (no tenant benefits from joining a hopeless backlog). Every
//! rejection carries a typed reason so the experiment harness can report
//! *why* load was shed, not just how much.

use crate::spec::TenantSpec;

/// Why an arriving job was turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant already has `queue_cap` jobs in system.
    QueueFull,
    /// The cluster-wide unassigned-task backlog exceeds the configured
    /// per-slot threshold.
    ClusterSaturated,
}

impl RejectReason {
    /// Stable label for counters and trace records.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::ClusterSaturated => "cluster_saturated",
        }
    }
}

/// The outcome of an admission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Let the job in.
    Admit,
    /// Shed it, with the reason.
    Reject(RejectReason),
}

/// Decide whether a job arriving for `spec`'s tenant is admitted.
///
/// * `in_system` — the tenant's jobs already admitted and not finished.
/// * `backlog_tasks` — cluster-wide unassigned tasks across admitted,
///   unfinished jobs.
/// * `total_slots` — total task slots in the cluster.
/// * `saturation_backlog` — reject when `backlog_tasks` exceeds this
///   many tasks per slot (`f64::INFINITY` disables).
///
/// The per-tenant bound is checked first: a tenant over its own cap is
/// rejected with [`RejectReason::QueueFull`] even if the cluster is
/// otherwise idle.
pub fn admit(
    spec: &TenantSpec,
    in_system: usize,
    backlog_tasks: u64,
    total_slots: u64,
    saturation_backlog: f64,
) -> AdmissionDecision {
    if in_system >= spec.queue_cap {
        return AdmissionDecision::Reject(RejectReason::QueueFull);
    }
    if (backlog_tasks as f64) > saturation_backlog * total_slots as f64 {
        return AdmissionDecision::Reject(RejectReason::ClusterSaturated);
    }
    AdmissionDecision::Admit
}

/// Per-tenant service tallies accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Jobs admitted into the system.
    pub admitted: u64,
    /// Jobs rejected because the tenant's queue was full.
    pub rejected_queue: u64,
    /// Jobs rejected by cluster-saturation backpressure.
    pub rejected_saturated: u64,
    /// Map attempts of this tenant killed by the preemption policy.
    pub preempted: u64,
    /// Peak number of this tenant's jobs simultaneously in system.
    pub peak_in_system: u64,
}

impl TenantCounters {
    /// Total rejections, either reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue + self.rejected_saturated
    }

    /// Record a rejection under its typed reason.
    pub fn record_reject(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::QueueFull => self.rejected_queue += 1,
            RejectReason::ClusterSaturated => self.rejected_saturated += 1,
        }
    }

    /// Fold another tally into this one (peak takes the max).
    pub fn merge(&mut self, other: &TenantCounters) {
        self.admitted += other.admitted;
        self.rejected_queue += other.rejected_queue;
        self.rejected_saturated += other.rejected_saturated;
        self.preempted += other.preempted;
        self.peak_in_system = self.peak_in_system.max(other.peak_in_system);
    }

    /// `k=v` pairs in a stable order, for stderr `TENANTS` lines.
    pub fn to_kv(&self) -> String {
        format!(
            "admitted={} rejected_queue={} rejected_saturated={} preempted={} peak_in_system={}",
            self.admitted,
            self.rejected_queue,
            self.rejected_saturated,
            self.preempted,
            self.peak_in_system
        )
    }

    /// Parse [`TenantCounters::to_kv`] tokens back (unknown keys and
    /// malformed tokens are ignored, so the format can grow).
    pub fn from_kv<'a>(tokens: impl Iterator<Item = &'a str>) -> TenantCounters {
        let mut c = TenantCounters::default();
        for tok in tokens {
            let Some((key, value)) = tok.split_once('=') else {
                continue;
            };
            let Ok(v) = value.parse::<u64>() else {
                continue;
            };
            match key {
                "admitted" => c.admitted = v,
                "rejected_queue" => c.rejected_queue = v,
                "rejected_saturated" => c.rejected_saturated = v,
                "preempted" => c.preempted = v,
                "peak_in_system" => c.peak_in_system = v,
                _ => {}
            }
        }
        c
    }

    /// The tally as a compact JSON object (for `BENCH_harness.json`).
    pub fn to_json_object(&self) -> String {
        format!(
            "{{\"admitted\": {}, \"rejected_queue\": {}, \"rejected_saturated\": {}, \"preempted\": {}, \"peak_in_system\": {}}}",
            self.admitted,
            self.rejected_queue,
            self.rejected_saturated,
            self.preempted,
            self.peak_in_system
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TenantSpec;

    #[test]
    fn admits_under_both_bounds() {
        let s = TenantSpec::new("t", 1.0).with_queue_cap(3);
        assert_eq!(admit(&s, 2, 10, 100, 4.0), AdmissionDecision::Admit);
    }

    #[test]
    fn queue_cap_rejects_first() {
        let s = TenantSpec::new("t", 1.0).with_queue_cap(3);
        assert_eq!(
            admit(&s, 3, 0, 100, f64::INFINITY),
            AdmissionDecision::Reject(RejectReason::QueueFull)
        );
        // Queue bound wins even when the cluster is also saturated.
        assert_eq!(
            admit(&s, 3, 10_000, 100, 1.0),
            AdmissionDecision::Reject(RejectReason::QueueFull)
        );
    }

    #[test]
    fn saturation_backpressure() {
        let s = TenantSpec::new("t", 1.0);
        // 100 slots × 2.0 backlog factor = 200-task threshold.
        assert_eq!(admit(&s, 0, 200, 100, 2.0), AdmissionDecision::Admit);
        assert_eq!(
            admit(&s, 0, 201, 100, 2.0),
            AdmissionDecision::Reject(RejectReason::ClusterSaturated)
        );
        // Infinite threshold disables the check entirely.
        assert_eq!(admit(&s, 0, u64::MAX / 2, 100, f64::INFINITY), AdmissionDecision::Admit);
    }

    #[test]
    fn unbounded_queue_by_default() {
        let s = TenantSpec::new("t", 1.0);
        assert_eq!(admit(&s, 1_000_000, 0, 100, f64::INFINITY), AdmissionDecision::Admit);
    }

    #[test]
    fn reject_reason_labels() {
        assert_eq!(RejectReason::QueueFull.label(), "queue_full");
        assert_eq!(RejectReason::ClusterSaturated.label(), "cluster_saturated");
    }

    #[test]
    fn counters_record_and_merge() {
        let mut a = TenantCounters { admitted: 5, ..Default::default() };
        a.record_reject(RejectReason::QueueFull);
        a.record_reject(RejectReason::ClusterSaturated);
        a.record_reject(RejectReason::ClusterSaturated);
        a.peak_in_system = 4;
        assert_eq!(a.rejected(), 3);

        let mut b = TenantCounters { admitted: 2, preempted: 1, peak_in_system: 7, ..Default::default() };
        b.merge(&a);
        assert_eq!(b.admitted, 7);
        assert_eq!(b.rejected_queue, 1);
        assert_eq!(b.rejected_saturated, 2);
        assert_eq!(b.preempted, 1);
        assert_eq!(b.peak_in_system, 7, "peak merges by max");
        assert_eq!(
            b.to_kv(),
            "admitted=7 rejected_queue=1 rejected_saturated=2 preempted=1 peak_in_system=7"
        );
    }

    #[test]
    fn kv_roundtrips_and_json_matches() {
        let c = TenantCounters {
            admitted: 9,
            rejected_queue: 2,
            rejected_saturated: 1,
            preempted: 3,
            peak_in_system: 6,
        };
        assert_eq!(TenantCounters::from_kv(c.to_kv().split_whitespace()), c);
        assert_eq!(TenantCounters::from_kv("garbage x= =1 admitted=4".split_whitespace()).admitted, 4);
        assert_eq!(
            c.to_json_object(),
            "{\"admitted\": 9, \"rejected_queue\": 2, \"rejected_saturated\": 1, \"preempted\": 3, \"peak_in_system\": 6}"
        );
    }
}
