//! The transmission cost model (paper §II-B).
//!
//! Cost is `bytes × per-byte path cost`, where the per-byte cost is either a
//! hop count or the §II-B3 inverse-rate metric — both behind
//! [`PathCost`]. Following the cost measurement of the paper's citations
//! [13, 14], a placement's cost is the product of data size and distance.

use crate::context::{MapCandidate, ReduceCandidate};
use crate::costidx::{CostClasses, CostView};
use crate::estimate::IntermediateEstimator;
use pnats_net::{NodeId, PathCost};

/// Formula (1): cost of running map candidate `c` on `node`, reading its
/// block from the nearest replica:
/// `C_m(i,j) = B_j · min_{l : L_lj = 1} h_il`.
///
/// A candidate with no replicas (data lost / not yet placed) costs
/// `+∞` — it can never look attractive.
pub fn map_cost(c: &MapCandidate, node: NodeId, cost: &dyn PathCost) -> f64 {
    let nearest = c
        .replicas
        .iter()
        .map(|&r| cost.path_cost(node, r))
        .min_by(f64::total_cmp);
    match nearest {
        Some(h) => c.block_size as f64 * h,
        None => f64::INFINITY,
    }
}

/// `C_m_ave` (Algorithm 1, line 6): the expected cost of assigning map
/// candidate `c` uniformly over the nodes that currently have free map
/// slots: `Σ_{k=1}^{N_m} C_m(k,j) / N_m`.
pub fn map_cost_avg(c: &MapCandidate, free_nodes: &[NodeId], cost: &dyn PathCost) -> f64 {
    if free_nodes.is_empty() {
        return f64::INFINITY;
    }
    let sum: f64 = free_nodes.iter().map(|&k| map_cost(c, k, cost)).sum();
    sum / free_nodes.len() as f64
}

/// Formula (3): cost of running reduce candidate `c` on `node`, summing the
/// estimated shuffle bytes of every placed map weighted by path cost:
/// `C_r(i,f) = Σ_j Σ_p x_jp · h_pi · Î_jf` with `Î_jf` supplied by `est`.
pub fn reduce_cost(
    c: &ReduceCandidate,
    node: NodeId,
    cost: &dyn PathCost,
    est: IntermediateEstimator,
) -> f64 {
    c.sources
        .iter()
        .map(|s| est.estimate(s) * cost.path_cost(s.node, node))
        .sum()
}

/// `C_r_ave` (Algorithm 2, line 7): expected cost of assigning reduce
/// candidate `c` uniformly over the nodes with free reduce slots:
/// `Σ_{k=1}^{N_r} C_r(k,f) / N_r`.
pub fn reduce_cost_avg(
    c: &ReduceCandidate,
    free_nodes: &[NodeId],
    cost: &dyn PathCost,
    est: IntermediateEstimator,
) -> f64 {
    if free_nodes.is_empty() {
        return f64::INFINITY;
    }
    let sum: f64 = free_nodes
        .iter()
        .map(|&k| reduce_cost(c, k, cost, est))
        .sum();
    sum / free_nodes.len() as f64
}

/// Total estimated shuffle bytes destined for reduce candidate `c`
/// (used by LARTS-style baselines and diagnostics).
pub fn reduce_total_input(c: &ReduceCandidate, est: IntermediateEstimator) -> f64 {
    c.sources.iter().map(|s| est.estimate(s)).sum()
}

/// `C_m_ave` via the class index: mathematically equal to
/// [`map_cost_avg`] for any zero-diagonal, non-negative metric (the only
/// kind [`CostClasses`] is derived for), but `O(classes × replicas)`
/// instead of `O(free nodes × replicas)`.
///
/// Free nodes hosting a replica contribute 0 (their nearest replica is
/// local); any other free node in class `q` contributes
/// `min_l h[q][class(l)]`, counted `free(q) − free replicas in q` times.
/// The integer class counts come from `view`, so the result is a
/// deterministic function of `(candidate, h-table, counts)` — the property
/// the differential parity gate relies on.
///
/// `h` must be `classes.h_table(..)` for the same matrix revision the
/// counts describe.
pub fn map_cost_avg_classed(
    c: &MapCandidate,
    classes: &CostClasses,
    h: &[f64],
    view: &CostView<'_>,
) -> f64 {
    if c.replicas.is_empty() || view.total_free == 0 {
        return f64::INFINITY;
    }
    let nc = classes.n_classes();
    let mut sum = 0.0;
    for (q, &cnt) in view.free_counts.iter().enumerate() {
        if cnt == 0 {
            continue;
        }
        let mut free_reps = 0u32;
        let m = c
            .replicas
            .iter()
            .map(|&r| {
                if classes.class(r) as usize == q && view.is_free(r) {
                    free_reps += 1;
                }
                h[q * nc + classes.class(r) as usize]
            })
            .min_by(f64::total_cmp)
            .expect("non-empty replicas");
        let eff = cnt - free_reps;
        if eff > 0 {
            sum += m * eff as f64;
        }
    }
    c.block_size as f64 * sum / view.total_free as f64
}

/// The per-class free-set distance sums feeding
/// [`reduce_cost_avg_classed`]: `base[p] = Σ_q free(q) · h[p][q]`, i.e. the
/// summed distance from a node of class `p` to every free node *other than
/// itself* (the diagonal of `h` is the intra-class pair distance; the
/// self-term correction happens per source). Classes with no free nodes are
/// skipped so an unreachable (`∞`) empty class cannot poison the sum.
///
/// Recomputed only when the free-set generation or matrix revision moves;
/// `out` is overwritten.
pub fn reduce_class_base(classes: &CostClasses, h: &[f64], counts: &[u32], out: &mut Vec<f64>) {
    let nc = classes.n_classes();
    out.clear();
    out.resize(nc, 0.0);
    for (p, slot) in out.iter_mut().enumerate() {
        let mut sum = 0.0;
        for (q, &cnt) in counts.iter().enumerate() {
            if cnt > 0 {
                sum += cnt as f64 * h[p * nc + q];
            }
        }
        *slot = sum;
    }
}

/// `C_r_ave` via the class index: mathematically equal to
/// [`reduce_cost_avg`] (with the per-node and per-source summations
/// interchanged), but `O(sources)` per candidate with the `O(classes²)`
/// part amortised into `base`.
///
/// Each source on node `p` radiates `est(s)` bytes to every free node:
/// summed distance `base[class(p)]`, minus the intra-class pair distance
/// when `p` itself is free (its self-distance is 0, not `intra`).
pub fn reduce_cost_avg_classed(
    c: &ReduceCandidate,
    classes: &CostClasses,
    base: &[f64],
    view: &CostView<'_>,
    est: IntermediateEstimator,
) -> f64 {
    if view.total_free == 0 {
        return f64::INFINITY;
    }
    let mut sum = 0.0;
    for s in &c.sources {
        let p = classes.class(s.node) as usize;
        let w = if view.is_free(s.node) { base[p] - classes.intra()[p] } else { base[p] };
        sum += est.estimate(s) * w;
    }
    sum / view.total_free as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ShuffleSource;
    use crate::types::{JobId, MapTaskId, ReduceTaskId};
    use pnats_net::DistanceMatrix;

    const MB: u64 = 1024 * 1024;

    fn mt(i: u32) -> MapTaskId {
        MapTaskId { job: JobId(0), index: i }
    }

    fn rt(i: u32) -> ReduceTaskId {
        ReduceTaskId { job: JobId(0), index: i }
    }

    /// The paper's Figure 2 example: block of M1 on D1, M1 assigned to D3,
    /// distance h(D3, D1) = 2, B = 128 MB -> cost 128 × 2 = 256 (in MB·hops).
    #[test]
    fn figure2_map_costs() {
        let h = DistanceMatrix::paper_figure2();
        let m1 = MapCandidate { task: mt(0), block_size: 128, replicas: vec![NodeId(0)] };
        let m2 = MapCandidate { task: mt(1), block_size: 128, replicas: vec![NodeId(1)] };
        assert_eq!(map_cost(&m1, NodeId(2), &h), 256.0);
        assert_eq!(map_cost(&m2, NodeId(1), &h), 0.0, "local placement is free");
    }

    #[test]
    fn map_cost_uses_nearest_replica() {
        let h = DistanceMatrix::paper_figure2();
        // Replicas on D1 (h from D2 = 10) and D3 (h from D2 = 6).
        let c = MapCandidate { task: mt(0), block_size: 10, replicas: vec![NodeId(1), NodeId(3)] };
        assert_eq!(map_cost(&c, NodeId(2), &h), 60.0);
    }

    #[test]
    fn map_cost_no_replicas_is_infinite() {
        let h = DistanceMatrix::zero(2);
        let c = MapCandidate { task: mt(0), block_size: 10, replicas: vec![] };
        assert!(map_cost(&c, NodeId(0), &h).is_infinite());
    }

    #[test]
    fn map_cost_avg_is_mean_over_free_nodes() {
        let h = DistanceMatrix::paper_figure2();
        let c = MapCandidate { task: mt(0), block_size: 1, replicas: vec![NodeId(0)] };
        // Costs from D0..D3 to replica D0: 0, 4, 2, 8 -> mean over {D0,D2} = 1.
        let avg = map_cost_avg(&c, &[NodeId(0), NodeId(2)], &h);
        assert_eq!(avg, 1.0);
        assert!(map_cost_avg(&c, &[], &h).is_infinite());
    }

    /// The full reduce-side worked example of Figure 2(b): with M1@D3,
    /// M2@D2, R1@D1, R2@D3 and I = [[10,5],[20,10]] (MB), the link costs
    /// are 10·2, 5·0, 20·4, 10·10 — total 200.
    #[test]
    fn figure2_reduce_costs() {
        let h = DistanceMatrix::paper_figure2();
        // All maps finished: current == final, d_read == B.
        let srcs_r1 = vec![
            ShuffleSource { node: NodeId(2), current_bytes: 10.0, input_read: 128, input_total: 128 },
            ShuffleSource { node: NodeId(1), current_bytes: 20.0, input_read: 128, input_total: 128 },
        ];
        let srcs_r2 = vec![
            ShuffleSource { node: NodeId(2), current_bytes: 5.0, input_read: 128, input_total: 128 },
            ShuffleSource { node: NodeId(1), current_bytes: 10.0, input_read: 128, input_total: 128 },
        ];
        let r1 = ReduceCandidate { task: rt(0), sources: srcs_r1 };
        let r2 = ReduceCandidate { task: rt(1), sources: srcs_r2 };
        let est = IntermediateEstimator::ProgressExtrapolated;
        // R1 on D1 (idx 0): 10·h(D3,D1) + 20·h(D2,D1) = 10·2 + 20·4 = 100.
        assert_eq!(reduce_cost(&r1, NodeId(0), &h, est), 100.0);
        // R2 on D3 (idx 2): 5·h(D3,D3) + 10·h(D2,D3) = 0 + 100 = 100.
        assert_eq!(reduce_cost(&r2, NodeId(2), &h, est), 100.0);
        // Total transmission cost of the assignment = 200, as in Fig. 2(b).
        let total = reduce_cost(&r1, NodeId(0), &h, est) + reduce_cost(&r2, NodeId(2), &h, est);
        assert_eq!(total, 200.0);
    }

    #[test]
    fn reduce_cost_extrapolates_in_progress_maps() {
        let h = DistanceMatrix::paper_figure2();
        // A half-done map on D1 with 3 bytes so far -> estimates 6 bytes.
        let c = ReduceCandidate {
            task: rt(0),
            sources: vec![ShuffleSource {
                node: NodeId(1),
                current_bytes: 3.0,
                input_read: 50,
                input_total: 100,
            }],
        };
        let ext = reduce_cost(&c, NodeId(0), &h, IntermediateEstimator::ProgressExtrapolated);
        let cur = reduce_cost(&c, NodeId(0), &h, IntermediateEstimator::CurrentSize);
        assert_eq!(ext, 6.0 * 4.0);
        assert_eq!(cur, 3.0 * 4.0);
    }

    #[test]
    fn reduce_cost_zero_on_sole_source_node() {
        let h = DistanceMatrix::paper_figure2();
        let c = ReduceCandidate {
            task: rt(0),
            sources: vec![ShuffleSource {
                node: NodeId(1),
                current_bytes: 9.0,
                input_read: 1,
                input_total: 1,
            }],
        };
        assert_eq!(
            reduce_cost(&c, NodeId(1), &h, IntermediateEstimator::default()),
            0.0
        );
    }

    #[test]
    fn reduce_cost_avg_and_total_input() {
        let h = DistanceMatrix::paper_figure2();
        let c = ReduceCandidate {
            task: rt(0),
            sources: vec![ShuffleSource {
                node: NodeId(0),
                current_bytes: 2.0,
                input_read: 1,
                input_total: 1,
            }],
        };
        let est = IntermediateEstimator::default();
        // Costs from D0..D3: 0, 8, 4, 16 -> mean over all four = 7.
        let avg = reduce_cost_avg(
            &c,
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            &h,
            est,
        );
        assert_eq!(avg, 7.0);
        assert_eq!(reduce_total_input(&c, est), 2.0);
        assert!(reduce_cost_avg(&c, &[], &h, est).is_infinite());
    }

    /// Build a cost view over `free` for classed-vs-legacy cross-checks.
    fn view_over<'a>(
        classes: &'a CostClasses,
        counts: &'a [u32],
        bits: &'a [u64],
        total: u32,
    ) -> CostView<'a> {
        CostView {
            classes: Some(classes),
            free_counts: counts,
            free_bits: bits,
            total_free: total,
            generation: 0,
        }
    }

    /// 2 racks × 2 nodes, hop ladder 0/2/4 — integer-valued, so legacy and
    /// classed means agree exactly, not just approximately.
    fn two_racks() -> DistanceMatrix {
        #[rustfmt::skip]
        let rows = vec![
            0.0, 2.0, 4.0, 4.0,
            2.0, 0.0, 4.0, 4.0,
            4.0, 4.0, 0.0, 2.0,
            4.0, 4.0, 2.0, 0.0,
        ];
        DistanceMatrix::from_rows(4, rows)
    }

    #[test]
    fn classed_map_avg_matches_legacy() {
        let m = two_racks();
        let classes = CostClasses::derive(&m, 8).unwrap();
        let h = classes.h_table(&m);
        // Replica on node 1 (free) and node 2 (not free); free = {0, 1, 3}.
        let c = MapCandidate {
            task: mt(0),
            block_size: 128,
            replicas: vec![NodeId(1), NodeId(2)],
        };
        let free = [NodeId(0), NodeId(1), NodeId(3)];
        let (counts, bits, total) = crate::costidx::recount_free(&classes, &free);
        let view = view_over(&classes, &counts, &bits, total);
        assert_eq!(
            map_cost_avg_classed(&c, &classes, &h, &view),
            map_cost_avg(&c, &free, &m),
        );
        assert!(map_cost_avg_classed(
            &MapCandidate { task: mt(1), block_size: 1, replicas: vec![] },
            &classes,
            &h,
            &view
        )
        .is_infinite());
    }

    #[test]
    fn classed_reduce_avg_matches_legacy() {
        let m = two_racks();
        let classes = CostClasses::derive(&m, 8).unwrap();
        let h = classes.h_table(&m);
        let est = IntermediateEstimator::default();
        // Sources on a free node (1) and a busy node (2); free = {1, 3}.
        let c = ReduceCandidate {
            task: rt(0),
            sources: vec![
                ShuffleSource { node: NodeId(1), current_bytes: 8.0, input_read: 1, input_total: 1 },
                ShuffleSource { node: NodeId(2), current_bytes: 3.0, input_read: 1, input_total: 1 },
            ],
        };
        let free = [NodeId(1), NodeId(3)];
        let (counts, bits, total) = crate::costidx::recount_free(&classes, &free);
        let view = view_over(&classes, &counts, &bits, total);
        let mut base = Vec::new();
        reduce_class_base(&classes, &h, &counts, &mut base);
        assert_eq!(
            reduce_cost_avg_classed(&c, &classes, &base, &view, est),
            reduce_cost_avg(&c, &free, &m, est),
        );
    }

    #[test]
    fn classed_reduce_base_skips_empty_classes() {
        // An isolated (unreachable, ∞-distance) node whose class has no
        // free slots must not poison the base sums with ∞ · 0.
        #[rustfmt::skip]
        let rows = vec![
            0.0, 2.0, f64::INFINITY,
            2.0, 0.0, f64::INFINITY,
            f64::INFINITY, f64::INFINITY, 0.0,
        ];
        let m = DistanceMatrix::from_rows(3, rows);
        let classes = CostClasses::derive(&m, 8).unwrap();
        let h = classes.h_table(&m);
        let free = [NodeId(0), NodeId(1)];
        let (counts, bits, total) = crate::costidx::recount_free(&classes, &free);
        let view = view_over(&classes, &counts, &bits, total);
        let mut base = Vec::new();
        reduce_class_base(&classes, &h, &counts, &mut base);
        let c = ReduceCandidate {
            task: rt(0),
            sources: vec![ShuffleSource {
                node: NodeId(0),
                current_bytes: 4.0,
                input_read: 1,
                input_total: 1,
            }],
        };
        let got = reduce_cost_avg_classed(&c, &classes, &base, &view, IntermediateEstimator::default());
        assert_eq!(got, reduce_cost_avg(&c, &free, &m, IntermediateEstimator::default()));
        assert!(got.is_finite());
    }

    #[test]
    fn costs_scale_with_block_size() {
        let h = DistanceMatrix::paper_figure2();
        let small = MapCandidate { task: mt(0), block_size: MB, replicas: vec![NodeId(0)] };
        let large = MapCandidate { task: mt(1), block_size: 4 * MB, replicas: vec![NodeId(0)] };
        assert_eq!(
            4.0 * map_cost(&small, NodeId(2), &h),
            map_cost(&large, NodeId(2), &h)
        );
    }
}
