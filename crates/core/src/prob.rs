//! Placement probability models (paper Formulas 4/5 and §V future work).
//!
//! Given a candidate's cost `C` on the offered node and the expected cost
//! `C_ave` of assigning it uniformly over the free-slot nodes, the paper
//! maps the ratio to an assignment probability
//!
//! ```text
//! P = 1 − e^{−C_ave / C}        (P = 1 when C = 0)
//! ```
//!
//! so cheap-relative-to-average placements are taken eagerly and expensive
//! ones are usually declined, leaving the slot to a later, better-suited
//! task. The paper's §V explicitly flags "various probabilistic computation
//! models" as future work, so the model is pluggable: all variants here are
//! monotone non-decreasing in the ratio `C_ave / C`, equal 1 at `C = 0`,
//! and fall toward 0 as the candidate gets pricier than average.

/// A map from the cost ratio to an assignment probability.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProbabilityModel {
    /// The paper's model: `P = 1 − e^{−ratio}`. Ratio 1 (candidate exactly
    /// average) gives P ≈ 0.632.
    #[default]
    Exponential,
    /// `P = ratio / (1 + ratio)`; heavier-tailed, ratio 1 gives 0.5.
    Reciprocal,
    /// `P = min(1, ratio / 2)`; linear ramp saturating at twice-better-than-
    /// average, ratio 1 gives 0.5.
    Linear,
    /// Logistic in `ln(ratio)`: `P = ratio / (ratio + e^{−ratio}) …`
    /// concretely `P = 1 / (1 + e^{1 − ratio})`; sharper switch around
    /// ratio 1 than the exponential.
    Sigmoid,
}

impl ProbabilityModel {
    /// Probability of assigning a candidate of cost `cost` when the uniform
    /// expected cost is `cost_avg`.
    ///
    /// Conventions shared by all models (matching Algorithm 1's handling):
    /// * `cost == 0` (data-local placement) → probability 1;
    /// * `cost == +∞` → probability 0;
    /// * `cost_avg == +∞` with finite `cost` → probability 1 (every
    ///   alternative is unreachable; this node is strictly better).
    pub fn probability(self, cost_avg: f64, cost: f64) -> f64 {
        debug_assert!(cost >= 0.0 && cost_avg >= 0.0);
        if cost == 0.0 {
            return 1.0;
        }
        if cost.is_infinite() {
            return 0.0;
        }
        if cost_avg.is_infinite() {
            return 1.0;
        }
        let ratio = cost_avg / cost;
        let p = match self {
            ProbabilityModel::Exponential => 1.0 - (-ratio).exp(),
            ProbabilityModel::Reciprocal => ratio / (1.0 + ratio),
            ProbabilityModel::Linear => (ratio / 2.0).min(1.0),
            ProbabilityModel::Sigmoid => 1.0 / (1.0 + (1.0 - ratio).exp()),
        };
        p.clamp(0.0, 1.0)
    }

    /// The cost ceiling implied by a probability threshold: a candidate is
    /// assignable (`P ≥ p_min`) iff `cost ≤ ceiling(cost_avg, p_min)`.
    ///
    /// For the exponential model the paper derives
    /// `C ≤ C_ave / (−ln(1 − P_min))`.
    pub fn cost_ceiling(self, cost_avg: f64, p_min: f64) -> f64 {
        assert!((0.0..1.0).contains(&p_min));
        if p_min == 0.0 {
            return f64::INFINITY;
        }
        match self {
            ProbabilityModel::Exponential => cost_avg / -(1.0 - p_min).ln(),
            ProbabilityModel::Reciprocal => cost_avg * (1.0 - p_min) / p_min,
            ProbabilityModel::Linear => cost_avg / (2.0 * p_min),
            ProbabilityModel::Sigmoid => {
                // P = 1/(1+e^{1-r})  =>  r = 1 - ln(1/P - 1)
                let r = 1.0 - (1.0 / p_min - 1.0).ln();
                if r <= 0.0 {
                    f64::INFINITY // threshold unreachable by any finite cost? no: r<=0 means even infinite cost passes
                } else {
                    cost_avg / r
                }
            }
        }
    }

    /// All models, for sweeps.
    pub const ALL: [ProbabilityModel; 4] = [
        ProbabilityModel::Exponential,
        ProbabilityModel::Reciprocal,
        ProbabilityModel::Linear,
        ProbabilityModel::Sigmoid,
    ];

    /// Short machine-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProbabilityModel::Exponential => "exponential",
            ProbabilityModel::Reciprocal => "reciprocal",
            ProbabilityModel::Linear => "linear",
            ProbabilityModel::Sigmoid => "sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_is_certain_for_all_models() {
        for m in ProbabilityModel::ALL {
            assert_eq!(m.probability(5.0, 0.0), 1.0, "{m:?}");
            assert_eq!(m.probability(0.0, 0.0), 1.0, "{m:?}");
        }
    }

    #[test]
    fn infinite_cost_is_never_assigned() {
        for m in ProbabilityModel::ALL {
            assert_eq!(m.probability(5.0, f64::INFINITY), 0.0, "{m:?}");
        }
    }

    #[test]
    fn infinite_average_is_certain() {
        for m in ProbabilityModel::ALL {
            assert_eq!(m.probability(f64::INFINITY, 5.0), 1.0, "{m:?}");
        }
    }

    #[test]
    fn exponential_matches_formula_4() {
        let m = ProbabilityModel::Exponential;
        // ratio 1
        assert!((m.probability(10.0, 10.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // ratio 2
        assert!((m.probability(20.0, 10.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn all_models_monotone_in_ratio() {
        for m in ProbabilityModel::ALL {
            let mut last = 0.0;
            for r in [0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 50.0] {
                let p = m.probability(r, 1.0);
                assert!(p >= last - 1e-12, "{m:?} not monotone at ratio {r}");
                assert!((0.0..=1.0).contains(&p));
                last = p;
            }
        }
    }

    #[test]
    fn models_scale_invariant() {
        // Probability depends only on the ratio.
        for m in ProbabilityModel::ALL {
            let p1 = m.probability(3.0, 7.0);
            let p2 = m.probability(300.0, 700.0);
            assert!((p1 - p2).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn exponential_cost_ceiling_matches_paper_inequality() {
        // Paper: P >= P_min  <=>  C <= C_ave / (−ln(1 − P_min)).
        let m = ProbabilityModel::Exponential;
        let c_ave = 100.0;
        let p_min = 0.4;
        let ceiling = m.cost_ceiling(c_ave, p_min);
        assert!(m.probability(c_ave, ceiling) - p_min < 1e-9);
        assert!(m.probability(c_ave, ceiling * 0.99) > p_min);
        assert!(m.probability(c_ave, ceiling * 1.01) < p_min);
    }

    #[test]
    fn ceilings_consistent_with_probability_for_all_models() {
        for m in ProbabilityModel::ALL {
            for p_min in [0.1, 0.4, 0.7] {
                let c = m.cost_ceiling(50.0, p_min);
                if c.is_finite() {
                    assert!(
                        (m.probability(50.0, c) - p_min).abs() < 1e-9,
                        "{m:?} pmin={p_min}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_p_min_allows_everything() {
        for m in ProbabilityModel::ALL {
            assert!(m.cost_ceiling(10.0, 0.0).is_infinite());
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = ProbabilityModel::ALL.iter().map(|m| m.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
