//! Deterministic fault schedules shared by the simulator and the engine.
//!
//! A [`FaultPlan`] is a *seeded, fully explicit* description of every fault a
//! run will experience: node crashes (with optional recovery), per-attempt
//! transient map failures, heartbeat-loss windows, and link-rate degradation
//! windows. Because the plan is plain data and every probabilistic choice is
//! keyed off the run seed, two runs with the same seed and the same plan are
//! bit-identical — faults are replayable, not sampled live.
//!
//! [`FaultPlan::none`] is the default and is guaranteed to be *zero-cost
//! when unused*: runtimes consult no extra randomness and schedule no extra
//! events for an empty plan, so a `none()` run is byte-identical to a build
//! without the fault subsystem in the path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One node crash (and optional recovery) at a fixed point in the schedule.
///
/// In the simulator `at`/`recover_at` are simulated seconds; in the
/// wall-clock engine they are interpreted as heartbeat round numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCrash {
    /// Index of the node that dies.
    pub node: usize,
    /// When the node dies (seconds in `sim`, heartbeat round in `engine`).
    pub at: f64,
    /// When the node comes back — with empty local disks, so any map output
    /// it held is lost for good. `None` means the node never returns.
    pub recover_at: Option<f64>,
}

/// A window during which an otherwise healthy node's heartbeats are dropped.
///
/// The node keeps computing; it just receives no new work while the master
/// cannot hear it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeartbeatLoss {
    /// Index of the affected node.
    pub node: usize,
    /// Start of the loss window (inclusive).
    pub from: f64,
    /// End of the loss window (exclusive).
    pub until: f64,
}

/// A window during which a node's NIC runs at `factor` × its nominal rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkDegradation {
    /// Index of the node whose access link degrades.
    pub node: usize,
    /// Start of the degradation window.
    pub from: f64,
    /// End of the degradation window.
    pub until: f64,
    /// Capacity multiplier in `(0, 1]`; `0.1` means the link runs at 10%.
    pub factor: f64,
}

/// A deterministic, seeded schedule of faults for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Node crashes, in no particular order (runtimes sort by time).
    pub crashes: Vec<NodeCrash>,
    /// Probability that any single map attempt fails mid-run. Decided per
    /// `(run seed, map, attempt)` — independent of scheduling order — via
    /// [`FaultPlan::map_attempt_fails`].
    pub transient_map_failure_p: f64,
    /// Attempts allowed per map before the whole job is declared failed.
    pub max_attempts: u32,
    /// Windows during which a node's heartbeats are dropped.
    pub heartbeat_losses: Vec<HeartbeatLoss>,
    /// Windows during which a node's access link degrades.
    pub link_degradations: Vec<LinkDegradation>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no crashes, no transient failures, no loss windows.
    pub fn none() -> Self {
        Self {
            crashes: Vec::new(),
            transient_map_failure_p: 0.0,
            max_attempts: 4,
            heartbeat_losses: Vec::new(),
            link_degradations: Vec::new(),
        }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.transient_map_failure_p <= 0.0
            && self.heartbeat_losses.is_empty()
            && self.link_degradations.is_empty()
    }

    /// Check the plan against a cluster size. Returns the first problem as a
    /// human-readable message; runtimes assert this before starting.
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        for c in &self.crashes {
            if c.node >= n_nodes {
                return Err(format!("crash targets node {} of {n_nodes}", c.node));
            }
            if !c.at.is_finite() || c.at < 0.0 {
                return Err(format!("crash time {} is not a valid time", c.at));
            }
            if let Some(r) = c.recover_at {
                if !r.is_finite() || r <= c.at {
                    return Err(format!("recovery at {r} does not follow crash at {}", c.at));
                }
            }
        }
        if !(0.0..=1.0).contains(&self.transient_map_failure_p) {
            return Err(format!("transient_map_failure_p {} outside [0,1]", self.transient_map_failure_p));
        }
        if self.transient_map_failure_p > 0.0 && self.max_attempts == 0 {
            return Err("max_attempts must be >= 1 when transient failures are on".into());
        }
        for h in &self.heartbeat_losses {
            if h.node >= n_nodes {
                return Err(format!("heartbeat loss targets node {} of {n_nodes}", h.node));
            }
            if !h.from.is_finite() || !h.until.is_finite() || h.from < 0.0 || h.until <= h.from {
                return Err(format!("heartbeat loss window [{}, {}) is invalid", h.from, h.until));
            }
        }
        for d in &self.link_degradations {
            if d.node >= n_nodes {
                return Err(format!("link degradation targets node {} of {n_nodes}", d.node));
            }
            if !d.from.is_finite() || !d.until.is_finite() || d.from < 0.0 || d.until <= d.from {
                return Err(format!("degradation window [{}, {}) is invalid", d.from, d.until));
            }
            if !(d.factor > 0.0 && d.factor <= 1.0) {
                return Err(format!("degradation factor {} outside (0, 1]", d.factor));
            }
        }
        Ok(())
    }

    /// Build a plan of `n_crashes` crash/recovery pairs drawn deterministically
    /// from `seed`: crash times are uniform in `window`, victims are uniform
    /// over the cluster, and each node recovers `mttr` seconds later
    /// (`None` = permanent loss).
    pub fn with_random_crashes(
        n_crashes: usize,
        n_nodes: usize,
        window: (f64, f64),
        mttr: Option<f64>,
        seed: u64,
    ) -> Self {
        assert!(n_nodes > 0 && window.1 > window.0 && window.0 >= 0.0);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17_0000_0000_0001);
        let mut plan = Self::none();
        for _ in 0..n_crashes {
            let node = rng.gen_range(0..n_nodes);
            let at = rng.gen_range(window.0..window.1);
            plan.crashes.push(NodeCrash { node, at, recover_at: mttr.map(|m| at + m) });
        }
        plan
    }

    /// Deterministic transient-failure decision for one map attempt.
    ///
    /// Keyed on `(seed, map, attempt)` only, so the verdict does not depend
    /// on the order in which a runtime happens to launch attempts — this is
    /// what keeps the wall-clock engine's fault behaviour reproducible.
    /// `attempt` counts from 0. Callers fail the job once a map has burned
    /// `max_attempts` attempts.
    pub fn map_attempt_fails(&self, seed: u64, map: usize, attempt: u32) -> bool {
        if self.transient_map_failure_p <= 0.0 {
            return false;
        }
        let mut key = seed ^ 0xfa17_7a5c_0000_0000;
        key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(map as u64);
        key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(attempt as u64);
        let mut rng = SmallRng::seed_from_u64(key);
        rng.gen::<f64>() < self.transient_map_failure_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(p.validate(1).is_ok());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut p = FaultPlan::none();
        p.crashes.push(NodeCrash { node: 9, at: 1.0, recover_at: None });
        assert!(p.validate(4).is_err());
        p.crashes[0] = NodeCrash { node: 0, at: 5.0, recover_at: Some(2.0) };
        assert!(p.validate(4).is_err());
        p.crashes.clear();
        p.transient_map_failure_p = 1.5;
        assert!(p.validate(4).is_err());
        p.transient_map_failure_p = 0.0;
        p.link_degradations.push(LinkDegradation { node: 0, from: 0.0, until: 1.0, factor: 0.0 });
        assert!(p.validate(4).is_err());
    }

    #[test]
    fn random_crashes_are_seed_deterministic() {
        let a = FaultPlan::with_random_crashes(5, 10, (0.0, 100.0), Some(30.0), 7);
        let b = FaultPlan::with_random_crashes(5, 10, (0.0, 100.0), Some(30.0), 7);
        let c = FaultPlan::with_random_crashes(5, 10, (0.0, 100.0), Some(30.0), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.validate(10).is_ok());
        assert!(!a.is_none());
    }

    #[test]
    fn attempt_failures_are_order_independent_and_bounded() {
        let mut p = FaultPlan::none();
        p.transient_map_failure_p = 0.6;
        p.max_attempts = 3;
        // Same key, same verdict, regardless of when we ask.
        let early = p.map_attempt_fails(42, 3, 1);
        for _ in 0..4 {
            assert_eq!(p.map_attempt_fails(42, 3, 1), early);
        }
        // With p=1 every attempt fails (callers then fail the job at the
        // max_attempts bound); with p=0 none do.
        p.transient_map_failure_p = 1.0;
        for map in 0..8 {
            assert!(p.map_attempt_fails(42, map, 0));
            assert!(p.map_attempt_fails(42, map, 7));
        }
        // The empty plan never fails anything.
        assert!(!FaultPlan::none().map_attempt_fails(42, 0, 0));
    }
}
