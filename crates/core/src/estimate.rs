//! Intermediate-data-size estimation (paper §II-B2).
//!
//! Reduce-task placement needs `I_jf` — how many bytes map `M_j` will
//! ultimately produce for reduce `R_f` — but reduces are scheduled *before*
//! maps finish, so `I_jf` is unknown. The paper's insight: each map reports
//! `(d_read^j, A_jf)` in its heartbeat, and because a map's output grows
//! with the input it has consumed,
//!
//! ```text
//! Î_jf = A_jf × B_j / d_read^j          (plugged into Formula 3)
//! ```
//!
//! extrapolates the final size far better than Coupling Scheduler's use of
//! the raw `A_jf`. The paper's motivating example: `M_2` at 10 % progress
//! has 1 MB of output headed to `R_1` but will finish with 10 MB, while
//! `M_1` at 90 % already shows 5 MB (final ≈ 5.6 MB). Current-size steers
//! `R_1` toward `M_1`; extrapolation correctly prefers `M_2`'s node.

use crate::context::ShuffleSource;

/// How to turn a progress report into an `Î_jf` estimate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IntermediateEstimator {
    /// The paper's estimator: `A_jf · B_j / d_read^j`. A placed map that
    /// has not read anything yet contributes 0 estimated bytes — there is
    /// nothing to extrapolate from, and dividing by `d_read = 0` would turn
    /// one fresh map into a NaN/∞ that poisons the whole candidate cost.
    /// (A live runtime can report `A_jf > 0` with `d_read = 0` when output
    /// bytes are published before the read counter.)
    #[default]
    ProgressExtrapolated,
    /// Coupling Scheduler's estimator: the raw current size `A_jf`.
    CurrentSize,
}

impl IntermediateEstimator {
    /// Estimated final bytes this source will ship to the reduce task.
    #[inline]
    pub fn estimate(self, s: &ShuffleSource) -> f64 {
        match self {
            IntermediateEstimator::CurrentSize => s.current_bytes,
            IntermediateEstimator::ProgressExtrapolated => {
                if s.input_read == 0 {
                    0.0
                } else {
                    s.current_bytes * (s.input_total as f64 / s.input_read as f64)
                }
            }
        }
    }

    /// Short machine-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            IntermediateEstimator::ProgressExtrapolated => "progress-extrapolated",
            IntermediateEstimator::CurrentSize => "current-size",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_net::NodeId;

    fn src(current: f64, read: u64, total: u64) -> ShuffleSource {
        ShuffleSource { node: NodeId(0), current_bytes: current, input_read: read, input_total: total }
    }

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn papers_motivating_example() {
        // M2: 10% done, 1MB produced -> extrapolates to 10MB.
        let m2 = src(1.0 * MB, 10, 100);
        // M1: 90% done, 5MB produced -> extrapolates to ~5.56MB.
        let m1 = src(5.0 * MB, 90, 100);

        let cur = IntermediateEstimator::CurrentSize;
        assert!(cur.estimate(&m1) > cur.estimate(&m2), "current-size prefers M1");

        let ext = IntermediateEstimator::ProgressExtrapolated;
        assert!(ext.estimate(&m2) > ext.estimate(&m1), "extrapolation prefers M2");
        assert!((ext.estimate(&m2) - 10.0 * MB).abs() < 1e-6);
        assert!((ext.estimate(&m1) - 5.0 * MB * 100.0 / 90.0).abs() < 1e-6);
    }

    #[test]
    fn finished_map_estimates_exactly() {
        let s = src(7.0 * MB, 100, 100);
        assert_eq!(IntermediateEstimator::ProgressExtrapolated.estimate(&s), 7.0 * MB);
    }

    #[test]
    fn unstarted_map_contributes_current_size() {
        let s = src(0.0, 0, 100);
        assert_eq!(IntermediateEstimator::ProgressExtrapolated.estimate(&s), 0.0);
        assert_eq!(IntermediateEstimator::CurrentSize.estimate(&s), 0.0);
    }

    #[test]
    fn zero_progress_with_output_estimates_zero_not_nan() {
        // The race a live runtime exhibits: output bytes published before
        // the read counter. Extrapolating would be 3/0 = ∞ (or 0/0 = NaN);
        // the estimate must instead be a harmless 0.
        let s = src(3.0, 0, 100);
        let est = IntermediateEstimator::ProgressExtrapolated.estimate(&s);
        assert_eq!(est, 0.0);
        assert!(est.is_finite());
    }

    #[test]
    fn extrapolation_is_linear_in_progress_inverse() {
        let quarter = src(2.0, 25, 100);
        let half = src(2.0, 50, 100);
        let e = IntermediateEstimator::ProgressExtrapolated;
        assert_eq!(e.estimate(&quarter), 8.0);
        assert_eq!(e.estimate(&half), 4.0);
    }

    #[test]
    fn labels() {
        assert_eq!(IntermediateEstimator::default().label(), "progress-extrapolated");
        assert_eq!(IntermediateEstimator::CurrentSize.label(), "current-size");
    }
}
