//! Scheduling contexts: what a placer sees at a heartbeat.
//!
//! Hadoop's JobTracker makes placement decisions "at the time of receiving a
//! heartbeat from a node indicating slot availability" (paper §II-A). These
//! structs are the snapshot of cluster state the decision is made against.
//! They are *views* borrowed from whichever runtime hosts the placer — the
//! discrete-event simulator, the threaded engine or a test harness.

use crate::costidx::CostView;
use crate::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_net::{ClusterLayout, NodeId, PathCost};

/// A pending map task `M_j` and everything its cost depends on.
#[derive(Clone, Debug)]
pub struct MapCandidate {
    /// The task's identity.
    pub task: MapTaskId,
    /// `B_j`: bytes of the input block the task processes.
    pub block_size: u64,
    /// Nodes storing a replica of that block (`{D_l : L_lj = 1}`).
    pub replicas: Vec<NodeId>,
}

/// One placed map task's contribution to a reduce task's shuffle input —
/// the progress report `(d_read^j, A_jf)` of §II-B2 plus the map's location.
#[derive(Clone, Copy, Debug)]
pub struct ShuffleSource {
    /// Node `D_p` the map task was placed on (`x_jp = 1`).
    pub node: NodeId,
    /// `A_jf`: bytes of intermediate data currently produced by map `j`
    /// for this reduce partition `f`.
    pub current_bytes: f64,
    /// `d_read^j`: input bytes the map has read so far.
    pub input_read: u64,
    /// `B_j`: total input bytes the map will read.
    pub input_total: u64,
}

/// A pending reduce task `R_f` and the shuffle sources feeding it.
#[derive(Clone, Debug)]
pub struct ReduceCandidate {
    /// The task's identity; `task.index` is the partition it consumes.
    pub task: ReduceTaskId,
    /// One entry per map task of the job that has been *placed* (running or
    /// finished). Unplaced maps contribute nothing to Formula (2)'s double
    /// sum because their `x_jp` row is all zeros.
    pub sources: Vec<ShuffleSource>,
}

/// Snapshot handed to [`TaskPlacer::place_map`](crate::placer::TaskPlacer::place_map).
///
/// Construct with [`MapSchedContext::new`] plus the chainable setters —
/// the struct is `#[non_exhaustive]` so every runtime and test assembles
/// its snapshot through the same audited constructor path.
#[non_exhaustive]
#[derive(Clone, Copy)]
pub struct MapSchedContext<'a> {
    /// Job whose tasks are being scheduled (chosen by job-level scheduling).
    pub job: JobId,
    /// Unassigned map tasks of that job.
    pub candidates: &'a [MapCandidate],
    /// Nodes currently advertising ≥ 1 free map slot (the `N_m` nodes over
    /// which `C_m_ave` is averaged). Always contains the heartbeating node.
    pub free_map_nodes: &'a [NodeId],
    /// Cost metric (`H` or its §II-B3 network-condition variant).
    pub cost: &'a dyn PathCost,
    /// Rack layout, for baselines that reason in locality classes.
    pub layout: &'a ClusterLayout,
    /// Current time in seconds (drives delay-based baselines).
    pub now: f64,
    /// Incremental cost index over the free set, when the runtime maintains
    /// one (see [`CostView`]). `None` preserves the legacy recompute path.
    pub cost_view: Option<CostView<'a>>,
}

/// Snapshot handed to [`TaskPlacer::place_reduce`](crate::placer::TaskPlacer::place_reduce).
///
/// Construct with [`ReduceSchedContext::new`] plus the chainable setters —
/// the struct is `#[non_exhaustive]` so every runtime and test assembles
/// its snapshot through the same audited constructor path.
#[non_exhaustive]
#[derive(Clone, Copy)]
pub struct ReduceSchedContext<'a> {
    /// Job whose tasks are being scheduled.
    pub job: JobId,
    /// Unassigned reduce tasks of that job.
    pub candidates: &'a [ReduceCandidate],
    /// Nodes currently advertising ≥ 1 free reduce slot (the `N_r` nodes of
    /// Formula 5). Always contains the heartbeating node.
    pub free_reduce_nodes: &'a [NodeId],
    /// Nodes already running a reduce task of this job (Algorithm 2 line 1
    /// refuses to co-locate two reduces of one job).
    pub job_reduce_nodes: &'a [NodeId],
    /// Cost metric.
    pub cost: &'a dyn PathCost,
    /// Rack layout.
    pub layout: &'a ClusterLayout,
    /// Fraction of the job's total map *work* completed, in [0, 1]
    /// (Coupling's launch gate reads this).
    pub job_map_progress: f64,
    /// Completed map tasks of the job.
    pub maps_finished: usize,
    /// Total map tasks of the job.
    pub maps_total: usize,
    /// Reduce tasks of the job already launched.
    pub reduces_launched: usize,
    /// Total reduce tasks of the job.
    pub reduces_total: usize,
    /// Current time in seconds.
    pub now: f64,
    /// Incremental cost index over the free set, when the runtime maintains
    /// one (see [`CostView`]). `None` preserves the legacy recompute path.
    pub cost_view: Option<CostView<'a>>,
}

impl<'a> MapSchedContext<'a> {
    /// A map-scheduling snapshot at time 0. Chain [`at`](Self::at) to set
    /// the clock.
    pub fn new(
        job: JobId,
        candidates: &'a [MapCandidate],
        free_map_nodes: &'a [NodeId],
        cost: &'a dyn PathCost,
        layout: &'a ClusterLayout,
    ) -> Self {
        Self { job, candidates, free_map_nodes, cost, layout, now: 0.0, cost_view: None }
    }

    /// Set the current time in seconds.
    pub fn at(mut self, now: f64) -> Self {
        self.now = now;
        self
    }

    /// Attach an incremental cost index over `free_map_nodes`.
    pub fn with_cost_view(mut self, view: CostView<'a>) -> Self {
        self.cost_view = Some(view);
        self
    }
}

impl<'a> ReduceSchedContext<'a> {
    /// A reduce-scheduling snapshot at time 0 with permissive defaults:
    /// no reduce of the job running anywhere, map phase complete
    /// (`job_map_progress = 1`, `maps_finished = maps_total = 0`), no
    /// reduces launched, `reduces_total = candidates.len()`. Chain the
    /// setters to model mid-job states.
    pub fn new(
        job: JobId,
        candidates: &'a [ReduceCandidate],
        free_reduce_nodes: &'a [NodeId],
        cost: &'a dyn PathCost,
        layout: &'a ClusterLayout,
    ) -> Self {
        Self {
            job,
            candidates,
            free_reduce_nodes,
            job_reduce_nodes: &[],
            cost,
            layout,
            job_map_progress: 1.0,
            maps_finished: 0,
            maps_total: 0,
            reduces_launched: 0,
            reduces_total: candidates.len(),
            now: 0.0,
            cost_view: None,
        }
    }

    /// Attach an incremental cost index over `free_reduce_nodes`.
    pub fn with_cost_view(mut self, view: CostView<'a>) -> Self {
        self.cost_view = Some(view);
        self
    }

    /// Nodes already running a reduce task of this job.
    pub fn running_on(mut self, nodes: &'a [NodeId]) -> Self {
        self.job_reduce_nodes = nodes;
        self
    }

    /// Map-phase state: fraction of map *work* done plus finished/total
    /// task counts.
    pub fn map_phase(mut self, progress: f64, finished: usize, total: usize) -> Self {
        self.job_map_progress = progress;
        self.maps_finished = finished;
        self.maps_total = total;
        self
    }

    /// Reduce-phase launch accounting: tasks launched / total.
    pub fn reduce_phase(mut self, launched: usize, total: usize) -> Self {
        self.reduces_launched = launched;
        self.reduces_total = total;
        self
    }

    /// Set the current time in seconds.
    pub fn at(mut self, now: f64) -> Self {
        self.now = now;
        self
    }
}

impl MapCandidate {
    /// Whether a replica of the task's block lives on `node`.
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }

    /// Whether any replica shares a rack with `node`.
    pub fn is_rack_local_to(&self, node: NodeId, layout: &ClusterLayout) -> bool {
        self.replicas.iter().any(|r| layout.same_rack(*r, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_net::Topology;

    #[test]
    fn candidate_locality_classes() {
        let topo = Topology::multi_rack(2, 2, 1.0, 1.0);
        let c = MapCandidate {
            task: MapTaskId { job: JobId(0), index: 0 },
            block_size: 1,
            replicas: vec![NodeId(0)],
        };
        assert!(c.is_local_to(NodeId(0)));
        assert!(!c.is_local_to(NodeId(1)));
        assert!(c.is_rack_local_to(NodeId(1), topo.layout()));
        assert!(!c.is_rack_local_to(NodeId(2), topo.layout()));
    }
}
