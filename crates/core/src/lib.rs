#![warn(missing_docs)]
//! # pnats-core — probabilistic network-aware task placement
//!
//! The primary contribution of Shen, Sarker, Yu & Deng, *"Probabilistic
//! Network-Aware Task Placement for MapReduce Scheduling"* (IEEE CLUSTER
//! 2016), as a reusable library:
//!
//! * [`cost`] — the transmission cost model. Formula (1) for map tasks
//!   (`C_m(i,j) = B_j · min_{L_lj=1} h_il`), Formulas (2)/(3) for reduce
//!   tasks (`C_r(i,f) = Σ_j Σ_p x_jp · h_pi · Î_jf`), both generic over a
//!   [`pnats_net::PathCost`] so hop counts and the §II-B3 inverse-rate
//!   metric plug in interchangeably.
//! * [`estimate`] — intermediate-data-size estimation. The paper's
//!   progress-extrapolated estimator `Î_jf = A_jf · B_j / d_read_j`
//!   alongside the Coupling Scheduler's current-size estimator it improves
//!   upon, so the ablation of §II-B2's motivating example is one enum away.
//! * [`prob`] — the placement probability `P = 1 − e^{−C_ave/C}` (Formulas
//!   4/5) plus the alternative probability models the paper's §V names as
//!   future work.
//! * [`context`] — the cluster-state snapshot a placer sees at a heartbeat
//!   (candidates, free slots, progress reports, cost metric).
//! * [`placer`] — the [`TaskPlacer`](placer::TaskPlacer) trait that the
//!   simulator, the threaded engine and every baseline implement.
//! * [`prob_sched`] — Algorithms 1 and 2: the probabilistic network-aware
//!   map/reduce placement algorithms themselves.
//! * [`analysis`] — closed-form expected-cost / acceptance / fairness
//!   analysis of the probabilistic policy (§V's "theoretical analysis"
//!   future work).
//!
//! ## Quick taste
//!
//! ```
//! use pnats_core::context::{MapCandidate, MapSchedContext};
//! use pnats_core::placer::{Decision, TaskPlacer};
//! use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
//! use pnats_core::types::{JobId, MapTaskId};
//! use pnats_net::{DistanceMatrix, NodeId, Topology};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let topo = Topology::single_rack(4, 1e9 / 8.0);
//! let hops = DistanceMatrix::hops(&topo);
//! let job = JobId(0);
//! // One pending map task whose block lives on D0.
//! let cands = vec![MapCandidate {
//!     task: MapTaskId { job, index: 0 },
//!     block_size: 128 << 20,
//!     replicas: vec![NodeId(0)],
//! }];
//! let free = vec![NodeId(0), NodeId(1)];
//! let ctx = MapSchedContext::new(job, &cands, &free, &hops, topo.layout());
//! let mut placer = ProbabilisticPlacer::new(ProbConfig::default());
//! let mut rng = SmallRng::seed_from_u64(42);
//! // Offering the slot on the data-local node always assigns (P = 1).
//! assert_eq!(placer.place_map(&ctx, NodeId(0), &mut rng), Decision::Assign(0));
//! ```

pub mod analysis;
pub mod context;
pub mod cost;
pub mod costidx;
pub mod estimate;
pub mod faults;
pub mod partition;
pub mod placer;
pub mod prob;
pub mod prob_sched;
pub mod types;

pub use context::{
    MapCandidate, MapSchedContext, ReduceCandidate, ReduceSchedContext, ShuffleSource,
};
pub use costidx::{CostClasses, CostView};
pub use estimate::IntermediateEstimator;
pub use faults::{FaultPlan, HeartbeatLoss, LinkDegradation, NodeCrash};
pub use partition::{partition_of, Partitioner};
pub use placer::{Decision, DecisionDetail, PlacerStats, SkipReason, TaskPlacer};
pub use prob::ProbabilityModel;
pub use prob_sched::{CostPath, ProbConfig, ProbabilisticPlacer};
pub use types::{JobId, MapTaskId, ReduceTaskId};
