//! Algorithms 1 and 2: probabilistic network-aware map / reduce placement.
//!
//! Both algorithms run when a heartbeat advertises a free slot on node
//! `D_i`:
//!
//! 1. for every unassigned task, compute its cost `C` on `D_i` (Formula 1
//!    for maps, Formula 3 for reduces) and the expected cost `C_ave` of
//!    placing it uniformly on the currently-free-slot nodes;
//! 2. convert to a probability `P = 1 − e^{−C_ave/C}` (Formulas 4/5);
//! 3. take the task with the **largest** `P` — i.e. the task this node is
//!    most unusually good for;
//! 4. if `P < P_min`, leave the slot idle (some other node will be a much
//!    better home for every pending task);
//! 5. otherwise assign with probability `P` (a Bernoulli draw) — the
//!    probabilistic relaxation that trades a little locality for immediate
//!    resource use and fair access to good slots.
//!
//! Algorithm 2 additionally refuses to run two reduce tasks of one job on
//! the same node (I/O contention and downlink congestion; paper §II-D).
//!
//! Every decision is booked into a [`PlacerStats`] keyed by
//! [`SkipReason`], and the intermediates of the last decision (`C_i`,
//! `C_ave`, `P`) are exposed through
//! [`TaskPlacer::last_detail`] for the tracing layer.

use crate::context::{MapCandidate, MapSchedContext, ReduceCandidate, ReduceSchedContext};
use crate::cost::{
    map_cost, map_cost_avg, map_cost_avg_classed, reduce_class_base, reduce_cost,
    reduce_cost_avg, reduce_cost_avg_classed,
};
use crate::costidx::{audit_view, CostClasses, CostView};
use crate::estimate::IntermediateEstimator;
use crate::placer::{Decision, DecisionDetail, PlacerStats, SkipReason, TaskPlacer};
use crate::prob::ProbabilityModel;
use pnats_net::{NodeId, PathCost};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// Which `C_ave` maintenance strategy scores candidates when the context
/// carries a [`CostView`]. Both strategies are bit-identical by
/// construction — [`CostPath::Reference`] exists to *prove* it, decision by
/// decision, in the differential parity tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostPath {
    /// Trust the runtime's incrementally-maintained class counts and the
    /// epoch-keyed `C_ave` memo (still audited under `debug_assertions`).
    #[default]
    Incremental,
    /// Full-recompute reference: recount the class counts from the free
    /// list before every decision, recompute every memoized `C_ave` from
    /// scratch (asserting bit-equality against the cache), and cross-check
    /// the classed formulas against the legacy per-node means. Booked
    /// stats are identical to [`CostPath::Incremental`] — only assertions
    /// are added — so traces and reports must match byte for byte.
    Reference,
}

/// Tunables of the probabilistic network-aware scheduler.
#[derive(Clone, Copy, Debug)]
pub struct ProbConfig {
    /// `P_min`: below this best-candidate probability the slot is skipped.
    /// The paper selects 0.4 empirically (§III).
    pub p_min: f64,
    /// The probability model (paper default: exponential, Formula 4/5).
    pub model: ProbabilityModel,
    /// How reduce-side intermediate sizes are estimated (paper default:
    /// progress extrapolation, §II-B2).
    pub estimator: IntermediateEstimator,
}

impl Default for ProbConfig {
    fn default() -> Self {
        Self {
            p_min: 0.4,
            model: ProbabilityModel::Exponential,
            estimator: IntermediateEstimator::ProgressExtrapolated,
        }
    }
}

impl ProbConfig {
    /// Paper configuration with a different `P_min` (for the sweep that
    /// reproduces the paper's threshold selection).
    pub fn with_p_min(p_min: f64) -> Self {
        assert!((0.0..1.0).contains(&p_min), "P_min must be in [0,1)");
        Self { p_min, ..Self::default() }
    }
}

/// The paper's scheduler: Algorithm 1 for maps, Algorithm 2 for reduces.
#[derive(Clone, Debug)]
pub struct ProbabilisticPlacer {
    config: ProbConfig,
    /// `cost_ceiling(1, p_min)`: the ceiling is linear in `C_ave`, so a
    /// candidate satisfies `P ≥ P_min` iff `C ≤ C_ave · ceiling_factor`.
    /// Precomputed once; `+∞` when no finite cost can miss the threshold.
    ceiling_factor: f64,
    /// Memoized `C_ave` per map candidate for the current free-node set.
    map_avg_cache: AvgCostCache,
    /// Memoized `C_ave` per reduce candidate for the current free-node set.
    reduce_avg_cache: AvgCostCache,
    /// How to treat an incoming [`CostView`]: trust it or verify it.
    cost_path: CostPath,
    /// Class-index tables for map contexts (built from the map-side
    /// matrix).
    map_tables: ClassTables,
    /// Class-index tables for reduce contexts. Separate from the map-side
    /// tables because the simulator hands reduce contexts the *transposed*
    /// matrix (same revision number, different values).
    reduce_tables: ClassTables,
    /// Intermediates of the most recent gate evaluation.
    last_detail: Option<DecisionDetail>,
    /// Decision statistics (diagnostics; not used for scheduling).
    pub stats: PlacerStats,
}

/// Dense class-to-class tables derived from a [`CostClasses`] partition:
/// the `h` distance table (rebuilt per matrix revision) and the reduce-side
/// per-class free-set distance sums (rebuilt per free-set generation).
#[derive(Clone, Debug, Default)]
struct ClassTables {
    /// `(classes.version, n_classes)` the `h` table was built for.
    h_for: Option<(u64, usize)>,
    h: Vec<f64>,
    /// `(classes.version, free-set generation)` `base` was built for.
    base_for: Option<(u64, u64)>,
    base: Vec<f64>,
}

impl ClassTables {
    /// Rebuild the class distance table if the matrix revision moved.
    fn ensure_h(&mut self, classes: &CostClasses, cost: &dyn PathCost) {
        let key = (classes.version(), classes.n_classes());
        if self.h_for != Some(key) {
            self.h = classes.h_table(cost);
            self.h_for = Some(key);
            self.base_for = None;
        }
    }

    /// Rebuild the reduce base sums if the free-set generation moved.
    fn ensure_base(&mut self, classes: &CostClasses, counts: &[u32], generation: u64) {
        let key = (classes.version(), generation);
        if self.base_for != Some(key) {
            reduce_class_base(classes, &self.h, counts, &mut self.base);
            self.base_for = Some(key);
        }
    }
}

/// Memoized per-candidate `C_ave` values, valid for one (free-node set,
/// cost-matrix revision) pair. `C_ave` does not depend on the offered node,
/// so within one heartbeat round — and across rounds while the free set and
/// the §II-B3 congestion matrix are unchanged — recomputing it per offer is
/// pure waste. Keys hash the candidate's full cost-relevant content
/// (replicas / shuffle-source progress), so a candidate whose inputs moved
/// simply misses the cache instead of reading a stale value.
#[derive(Clone, Debug, Default)]
struct AvgCostCache {
    free_nodes: Vec<NodeId>,
    cost_version: u64,
    /// Free-set generation the values were computed at (epoch mode).
    generation: u64,
    /// Whether validity is keyed by `(generation, cost_version)` instead of
    /// comparing free lists. Runtimes that maintain a [`CostView`] bump the
    /// generation on every free-set membership change, making the `O(free)`
    /// list comparison per decision unnecessary.
    epoch_keyed: bool,
    values: HashMap<u64, f64>,
}

impl AvgCostCache {
    /// Drop every memoized value unless it was computed against exactly
    /// this free-node set and cost-matrix revision.
    fn sync(&mut self, free_nodes: &[NodeId], cost_version: u64) {
        if self.epoch_keyed
            || self.cost_version != cost_version
            || self.free_nodes.as_slice() != free_nodes
        {
            self.values.clear();
            self.free_nodes.clear();
            self.free_nodes.extend_from_slice(free_nodes);
            self.cost_version = cost_version;
            self.epoch_keyed = false;
        }
    }

    /// Drop every memoized value unless it was computed within this
    /// `(free-set generation, cost-matrix revision)` epoch.
    fn sync_epoch(&mut self, generation: u64, cost_version: u64) {
        if !self.epoch_keyed || self.cost_version != cost_version || self.generation != generation
        {
            self.values.clear();
            self.free_nodes.clear();
            self.cost_version = cost_version;
            self.generation = generation;
            self.epoch_keyed = true;
        }
    }
}

/// SplitMix64-style word mixer for cache keys.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut x = (h ^ v).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn map_candidate_key(c: &MapCandidate) -> u64 {
    let mut h = mix(
        0x9E37_79B9_7F4A_7C15,
        ((c.task.job.0 as u64) << 32) | c.task.index as u64,
    );
    h = mix(h, c.block_size);
    for r in &c.replicas {
        h = mix(h, r.0 as u64);
    }
    h
}

fn reduce_candidate_key(c: &ReduceCandidate) -> u64 {
    let mut h = mix(
        0xD1B5_4A32_D192_ED03,
        ((c.task.job.0 as u64) << 32) | c.task.index as u64,
    );
    for s in &c.sources {
        h = mix(h, s.node.0 as u64);
        h = mix(h, s.current_bytes.to_bits());
        h = mix(h, s.input_read);
        h = mix(h, s.input_total);
    }
    h
}

/// The prune must never reject a candidate the exact probability
/// computation would accept: compare against the ceiling inflated by one
/// part in 10¹², so boundary candidates fall through to the full formula.
const PRUNE_SLACK: f64 = 1.0 + 1e-12;

/// What the per-candidate scoring loop observed besides the probabilities —
/// decides the [`SkipReason`] when no candidate survives.
#[derive(Default)]
struct ScanFlags {
    /// Some candidate was pruned by the `P_min` cost ceiling.
    below_threshold: bool,
    /// Some candidate's probability evaluated to NaN (non-finite costs).
    non_finite: bool,
}

impl ScanFlags {
    /// The reason to report when `argmax_probability` found nothing.
    fn empty_scan_reason(&self) -> SkipReason {
        if self.below_threshold {
            // All candidates over the cost ceiling: exactly the decision the
            // unpruned computation would book as a below-`P_min` skip.
            SkipReason::BelowPMin
        } else if self.non_finite {
            SkipReason::NonFiniteCost
        } else {
            SkipReason::NoCandidate
        }
    }
}

impl ProbabilisticPlacer {
    /// A placer with the given configuration.
    pub fn new(config: ProbConfig) -> Self {
        Self {
            ceiling_factor: config.model.cost_ceiling(1.0, config.p_min),
            config,
            map_avg_cache: AvgCostCache::default(),
            reduce_avg_cache: AvgCostCache::default(),
            cost_path: CostPath::default(),
            map_tables: ClassTables::default(),
            reduce_tables: ClassTables::default(),
            last_detail: None,
            stats: PlacerStats::default(),
        }
    }

    /// A placer with the paper's published configuration
    /// (`P_min = 0.4`, exponential model, progress extrapolation).
    pub fn paper() -> Self {
        Self::new(ProbConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> ProbConfig {
        self.config
    }

    /// Select the [`CostPath`] (default: [`CostPath::Incremental`]).
    pub fn with_cost_path(mut self, path: CostPath) -> Self {
        self.cost_path = path;
        self
    }

    /// The active [`CostPath`].
    pub fn cost_path(&self) -> CostPath {
        self.cost_path
    }

    /// Shared tail of both algorithms: threshold gate + Bernoulli draw on
    /// the winning candidate. Does not touch `stats` — the `place_*`
    /// wrappers book the final decision exactly once.
    fn gate(&mut self, idx: usize, p: f64, rng: &mut SmallRng) -> Decision {
        // `argmax_probability` never yields NaN, but guard anyway: a NaN
        // must not burn an RNG draw or be miscounted as a failed draw
        // (both comparisons below are false for NaN).
        if p.is_nan() {
            return Decision::Skip(SkipReason::NonFiniteCost);
        }
        if p < self.config.p_min {
            return Decision::Skip(SkipReason::BelowPMin);
        }
        if rng.gen::<f64>() < p {
            Decision::Assign(idx)
        } else {
            Decision::Skip(SkipReason::DrawFailed)
        }
    }

    /// Validate an incoming [`CostView`] against `free` and prepare the
    /// class tables; returns the partition to score with, if any. The
    /// audit runs always under [`CostPath::Reference`], and in debug
    /// builds under [`CostPath::Incremental`] too.
    fn admit_view<'a>(
        tables: &mut ClassTables,
        cost_path: CostPath,
        view: &Option<CostView<'a>>,
        free: &[NodeId],
        cost: &dyn PathCost,
        side: &str,
    ) -> Option<&'a CostClasses> {
        let v = view.as_ref()?;
        let verify = cost_path == CostPath::Reference || cfg!(debug_assertions);
        if verify {
            assert_eq!(
                v.total_free as usize,
                free.len(),
                "{side}: view total_free diverged from the free list"
            );
        }
        let classes = v.classes?;
        debug_assert_eq!(
            classes.version(),
            cost.version(),
            "{side}: class partition is for another matrix revision"
        );
        if verify {
            audit_view(classes, free, v, side);
        }
        tables.ensure_h(classes, cost);
        Some(classes)
    }

    /// Algorithm 1 body; the trait wrapper books the decision.
    fn decide_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        match &ctx.cost_view {
            Some(v) => self.map_avg_cache.sync_epoch(v.generation, ctx.cost.version()),
            None => self.map_avg_cache.sync(ctx.free_map_nodes, ctx.cost.version()),
        }
        let classes = Self::admit_view(
            &mut self.map_tables,
            self.cost_path,
            &ctx.cost_view,
            ctx.free_map_nodes,
            ctx.cost,
            "map",
        );
        let reference = self.cost_path == CostPath::Reference;
        let model = self.config.model;
        let prune = self.ceiling_factor * PRUNE_SLACK;
        let cache = &mut self.map_avg_cache;
        let stats = &mut self.stats;
        let tables = &self.map_tables;
        let mut flags = ScanFlags::default();
        let best = argmax_probability(ctx.candidates.iter().map(|c| {
            let c_here = map_cost(c, node, ctx.cost); // line 4
            let compute = || match (classes, &ctx.cost_view) {
                (Some(cl), Some(v)) => {
                    let ave = map_cost_avg_classed(c, cl, &tables.h, v); // line 6
                    if reference {
                        let legacy = map_cost_avg(c, ctx.free_map_nodes, ctx.cost);
                        assert!(
                            nearly_equal(ave, legacy),
                            "map: classed C_ave {ave} diverged from legacy mean {legacy}"
                        );
                    }
                    ave
                }
                _ => map_cost_avg(c, ctx.free_map_nodes, ctx.cost), // line 6
            };
            let c_ave = if reference {
                cached_avg_verified(cache, stats, map_candidate_key(c), compute)
            } else {
                cached_avg(cache, stats, map_candidate_key(c), compute)
            };
            // A NaN cost (poisoned metric) can be neither pruned nor
            // scored — flag it so the skip is reported as NonFiniteCost.
            // (±∞ is fine: the probability model maps it to 0 or 1.)
            if c_here.is_nan() || c_ave.is_nan() {
                flags.non_finite = true;
                return f64::NAN;
            }
            // Cost-ceiling prune: `C > C_ave · ceiling` already implies
            // `P < P_min`, so skip the probability computation. The NaN
            // sentinel is invisible to `argmax_probability`; all pruned
            // candidates are tallied as one below-`P_min` skip after the
            // argmax, exactly as the unpruned computation would decide.
            // (A NaN cost never prunes — both comparisons are false — and
            // falls through to the full formula.)
            if c_here > c_ave * prune {
                flags.below_threshold = true;
                stats.pruned += 1;
                return f64::NAN;
            }
            model.probability(c_ave, c_here) // line 7
        }));
        let Some((idx, p)) = best else {
            return Decision::Skip(flags.empty_scan_reason());
        };
        let winner = &ctx.candidates[idx];
        self.last_detail = Some(DecisionDetail {
            cost: map_cost(winner, node, ctx.cost),
            cost_avg: self.cached_map_avg(winner),
            probability: p,
        });
        self.gate(idx, p, rng) // lines 9-16
    }

    /// Algorithm 2 body; the trait wrapper books the decision.
    fn decide_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        // Line 1: refuse a second reduce task of this job on the node.
        if ctx.job_reduce_nodes.contains(&node) {
            return Decision::Skip(SkipReason::Collocated);
        }
        match &ctx.cost_view {
            Some(v) => self.reduce_avg_cache.sync_epoch(v.generation, ctx.cost.version()),
            None => self.reduce_avg_cache.sync(ctx.free_reduce_nodes, ctx.cost.version()),
        }
        let classes = Self::admit_view(
            &mut self.reduce_tables,
            self.cost_path,
            &ctx.cost_view,
            ctx.free_reduce_nodes,
            ctx.cost,
            "reduce",
        );
        if let (Some(cl), Some(v)) = (classes, &ctx.cost_view) {
            self.reduce_tables.ensure_base(cl, v.free_counts, v.generation);
        }
        let reference = self.cost_path == CostPath::Reference;
        let est = self.config.estimator;
        let model = self.config.model;
        let prune = self.ceiling_factor * PRUNE_SLACK;
        let cache = &mut self.reduce_avg_cache;
        let stats = &mut self.stats;
        let tables = &self.reduce_tables;
        let mut flags = ScanFlags::default();
        let best = argmax_probability(ctx.candidates.iter().map(|c| {
            let c_here = reduce_cost(c, node, ctx.cost, est); // line 5
            let compute = || match (classes, &ctx.cost_view) {
                (Some(cl), Some(v)) => {
                    let ave = reduce_cost_avg_classed(c, cl, &tables.base, v, est); // line 7
                    if reference {
                        let legacy = reduce_cost_avg(c, ctx.free_reduce_nodes, ctx.cost, est);
                        assert!(
                            nearly_equal(ave, legacy),
                            "reduce: classed C_ave {ave} diverged from legacy mean {legacy}"
                        );
                    }
                    ave
                }
                _ => reduce_cost_avg(c, ctx.free_reduce_nodes, ctx.cost, est), // line 7
            };
            let c_ave = if reference {
                cached_avg_verified(cache, stats, reduce_candidate_key(c), compute)
            } else {
                cached_avg(cache, stats, reduce_candidate_key(c), compute)
            };
            if c_here.is_nan() || c_ave.is_nan() {
                flags.non_finite = true;
                return f64::NAN;
            }
            if c_here > c_ave * prune {
                flags.below_threshold = true;
                stats.pruned += 1;
                return f64::NAN;
            }
            model.probability(c_ave, c_here) // line 8
        }));
        let Some((idx, p)) = best else {
            return Decision::Skip(flags.empty_scan_reason());
        };
        let winner = &ctx.candidates[idx];
        self.last_detail = Some(DecisionDetail {
            cost: reduce_cost(winner, node, ctx.cost, est),
            cost_avg: self.cached_reduce_avg(winner),
            probability: p,
        });
        self.gate(idx, p, rng) // lines 10-17
    }

    /// The winner's memoized `C_ave` (always present — the scoring loop
    /// just inserted it). Not booked as a cache hit: it is a re-read of
    /// this call's own lookup, not a saved recomputation.
    fn cached_map_avg(&self, c: &MapCandidate) -> f64 {
        self.map_avg_cache
            .values
            .get(&map_candidate_key(c))
            .copied()
            .unwrap_or(f64::NAN)
    }

    /// See [`Self::cached_map_avg`].
    fn cached_reduce_avg(&self, c: &ReduceCandidate) -> f64 {
        self.reduce_avg_cache
            .values
            .get(&reduce_candidate_key(c))
            .copied()
            .unwrap_or(f64::NAN)
    }
}

/// One memoized `C_ave` lookup, booking a hit or miss in `stats`.
fn cached_avg(
    cache: &mut AvgCostCache,
    stats: &mut PlacerStats,
    key: u64,
    compute: impl FnOnce() -> f64,
) -> f64 {
    match cache.values.get(&key) {
        Some(&v) => {
            stats.cache_hits += 1;
            v
        }
        None => {
            stats.cache_misses += 1;
            let v = compute();
            cache.values.insert(key, v);
            v
        }
    }
}

/// [`CostPath::Reference`]'s variant of [`cached_avg`]: recompute from
/// scratch on *every* lookup and assert any cached value is bit-identical.
/// A stale epoch — a free-set change whose generation bump went missing —
/// surfaces here as a hard panic instead of a silently wrong decision.
/// Books the same hits/misses as [`cached_avg`], so stats stay identical.
fn cached_avg_verified(
    cache: &mut AvgCostCache,
    stats: &mut PlacerStats,
    key: u64,
    compute: impl FnOnce() -> f64,
) -> f64 {
    let fresh = compute();
    match cache.values.get(&key) {
        Some(&v) => {
            assert!(
                v.to_bits() == fresh.to_bits(),
                "stale memoized C_ave: cached {v}, recomputed {fresh}"
            );
            stats.cache_hits += 1;
            v
        }
        None => {
            stats.cache_misses += 1;
            cache.values.insert(key, fresh);
            fresh
        }
    }
}

/// Loose equality for cross-checking the classed `C_ave` formulas against
/// the legacy per-node means: the two summation orders differ, so allow a
/// relative error of 1e-9. NaN matches NaN and ∞ matches same-signed ∞
/// (degenerate inputs degenerate identically on both paths).
fn nearly_equal(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

/// Select the candidate with the largest probability; ties broken toward
/// the lower index (stable, deterministic). NaN probabilities are never
/// selected: a NaN arriving first would otherwise survive as "best" because
/// `p > bp` is false both ways against NaN.
fn argmax_probability(probs: impl Iterator<Item = f64>) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in probs.enumerate() {
        if p.is_nan() {
            continue;
        }
        if best.is_none_or(|(_, bp)| p > bp) {
            best = Some((i, p));
        }
    }
    best
}

impl TaskPlacer for ProbabilisticPlacer {
    fn name(&self) -> &'static str {
        "probabilistic"
    }

    /// Algorithm 1.
    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        self.last_detail = None;
        let decision = self.decide_map(ctx, node, rng);
        self.stats.record(decision);
        decision
    }

    /// Algorithm 2.
    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision {
        self.last_detail = None;
        let decision = self.decide_reduce(ctx, node, rng);
        self.stats.record(decision);
        decision
    }

    fn stats(&self) -> Option<&PlacerStats> {
        Some(&self.stats)
    }

    fn last_detail(&self) -> Option<DecisionDetail> {
        self.last_detail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{MapCandidate, ReduceCandidate, ShuffleSource};
    use crate::types::{JobId, MapTaskId, ReduceTaskId};
    use pnats_net::{ClusterLayout, DistanceMatrix, RackId};
    use rand::SeedableRng;

    fn layout4() -> ClusterLayout {
        ClusterLayout::new(vec![RackId(0); 4])
    }

    fn mcand(i: u32, size: u64, replicas: Vec<NodeId>) -> MapCandidate {
        MapCandidate {
            task: MapTaskId { job: JobId(0), index: i },
            block_size: size,
            replicas,
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    fn map_ctx<'a>(
        cands: &'a [MapCandidate],
        free: &'a [NodeId],
        cost: &'a DistanceMatrix,
        layout: &'a ClusterLayout,
    ) -> MapSchedContext<'a> {
        MapSchedContext::new(JobId(0), cands, free, cost, layout)
    }

    #[test]
    fn local_task_always_assigned() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![mcand(0, 128, vec![NodeId(2)])];
        let free = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        // P = 1 on the data node: assignment is certain regardless of seed.
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            assert_eq!(p.place_map(&ctx, NodeId(2), &mut rng), Decision::Assign(0));
        }
        assert_eq!(p.stats.assigned, 20);
        // Within one (free set, cost version) epoch the candidate's C_ave
        // is computed once and re-read 19 times.
        assert_eq!(p.stats.cache_misses, 1);
        assert_eq!(p.stats.cache_hits, 19);
        // The winner's intermediates are exposed for tracing.
        let d = p.last_detail().expect("detail after an assign");
        assert_eq!(d.cost, 0.0);
        assert_eq!(d.probability, 1.0);
    }

    #[test]
    fn prefers_task_this_node_is_best_for() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // Task 0's data is far from D2; task 1's data is on D2.
        let cands = vec![mcand(0, 128, vec![NodeId(1)]), mcand(1, 128, vec![NodeId(2)])];
        let free = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(p.place_map(&ctx, NodeId(2), &mut rng), Decision::Assign(1));
    }

    #[test]
    fn below_p_min_skips() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // Only task's data on D1. Offer the slot on D2: h(D2,D1) = 10,
        // while D1 itself is free (cost 0) — the average is dragged down so
        // the ratio (and probability) on D2 is small.
        let cands = vec![mcand(0, 128, vec![NodeId(1)])];
        let free = vec![NodeId(1), NodeId(2)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        // C on D2 = 1280; C_ave = (0 + 1280)/2 = 640; ratio 0.5 ->
        // P = 1 - e^-0.5 ≈ 0.393 < 0.4.
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(
            p.place_map(&ctx, NodeId(2), &mut rng),
            Decision::Skip(SkipReason::BelowPMin)
        );
        assert_eq!(p.stats.skipped(SkipReason::BelowPMin), 1);
    }

    #[test]
    fn p_min_zero_still_draws_bernoulli() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![mcand(0, 128, vec![NodeId(1)])];
        let free = vec![NodeId(1), NodeId(2)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        let mut p = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.0));
        // P ≈ 0.393: over many draws, both outcomes must occur.
        let mut rng = rng();
        let mut assigned = 0;
        let mut skipped = 0;
        for _ in 0..500 {
            match p.place_map(&ctx, NodeId(2), &mut rng) {
                Decision::Assign(_) => assigned += 1,
                Decision::Skip(r) => {
                    assert_eq!(r, SkipReason::DrawFailed);
                    skipped += 1;
                }
            }
        }
        assert!(assigned > 100, "assigned {assigned}");
        assert!(skipped > 100, "skipped {skipped}");
        assert_eq!(p.stats.skipped(SkipReason::DrawFailed), skipped);
        // Empirical rate close to 0.393.
        let rate = assigned as f64 / 500.0;
        assert!((rate - 0.393).abs() < 0.08, "rate {rate}");
    }

    #[test]
    fn assignment_rate_matches_formula_probability() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // C on D0 (replica at D2, h=2, B=128) = 256;
        // free = {D0, D2}: C_ave = (256 + 0)/2 = 128; ratio 0.5 — gate it
        // through p_min=0 and measure.
        let cands = vec![mcand(0, 128, vec![NodeId(2)])];
        let free = vec![NodeId(0), NodeId(2)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        let expect = 1.0 - (-0.5f64).exp();
        let mut p = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.0));
        let mut rng = rng();
        let n = 4000;
        let mut hits = 0;
        for _ in 0..n {
            if p.place_map(&ctx, NodeId(0), &mut rng).assigned().is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - expect).abs() < 0.03, "rate {rate} vs {expect}");
    }

    fn rcand(i: u32, sources: Vec<ShuffleSource>) -> ReduceCandidate {
        ReduceCandidate { task: ReduceTaskId { job: JobId(0), index: i }, sources }
    }

    fn reduce_ctx<'a>(
        cands: &'a [ReduceCandidate],
        free: &'a [NodeId],
        running: &'a [NodeId],
        cost: &'a DistanceMatrix,
        layout: &'a ClusterLayout,
    ) -> ReduceSchedContext<'a> {
        ReduceSchedContext::new(JobId(0), cands, free, cost, layout)
            .running_on(running)
            .map_phase(0.5, 1, 2)
            .reduce_phase(0, 1)
    }

    #[test]
    fn reduce_collocation_constraint() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![rcand(
            0,
            vec![ShuffleSource { node: NodeId(0), current_bytes: 10.0, input_read: 1, input_total: 1 }],
        )];
        let free = vec![NodeId(0), NodeId(1)];
        let running = vec![NodeId(0)];
        let ctx = reduce_ctx(&cands, &free, &running, &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        // D0 would be free and perfect (cost 0) but already runs a reduce
        // of this job.
        assert_eq!(
            p.place_reduce(&ctx, NodeId(0), &mut rng),
            Decision::Skip(SkipReason::Collocated)
        );
        assert_eq!(p.stats.skipped(SkipReason::Collocated), 1);
    }

    #[test]
    fn reduce_on_source_node_is_certain() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![rcand(
            0,
            vec![ShuffleSource { node: NodeId(3), current_bytes: 10.0, input_read: 1, input_total: 1 }],
        )];
        let free = vec![NodeId(1), NodeId(3)];
        let ctx = reduce_ctx(&cands, &free, &[], &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(p.place_reduce(&ctx, NodeId(3), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn reduce_with_no_map_output_is_free_everywhere() {
        // Before any map produces output, all costs are 0 => P = 1: the
        // scheduler launches reduces eagerly (slow-start gating is the
        // runtime's job, not the placer's).
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![rcand(0, vec![])];
        let free = vec![NodeId(0), NodeId(1)];
        let ctx = reduce_ctx(&cands, &free, &[], &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(p.place_reduce(&ctx, NodeId(1), &mut rng), Decision::Assign(0));
    }

    #[test]
    fn estimator_changes_reduce_choice() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        // Recreate §II-B2's example: R could join M1@D0 (90% done, 5MB) or
        // M2@D3 (10% done, 1MB now, 10MB final). Candidate reduce tasks are
        // per-partition; here one task, two sources. The *placement node*
        // choice is what differs: offer slot on D3.
        let sources = vec![
            ShuffleSource { node: NodeId(0), current_bytes: 5.0, input_read: 90, input_total: 100 },
            ShuffleSource { node: NodeId(3), current_bytes: 1.0, input_read: 10, input_total: 100 },
        ];
        let cands = vec![rcand(0, sources)];
        let free = vec![NodeId(0), NodeId(3)];
        let ctx = reduce_ctx(&cands, &free, &[], &h, &layout);

        // Extrapolated: on D3 cost = Î(M1)·h(0,3) = 5.56·8 ≈ 44.4;
        //               on D0 cost = Î(M2)·h(3,0) = 10·8 = 80.
        // So D3 is below-average -> high probability there.
        let mut ext = ProbabilisticPlacer::new(ProbConfig {
            p_min: 0.5,
            ..ProbConfig::default()
        });
        let mut rng = rng();
        assert_eq!(ext.place_reduce(&ctx, NodeId(3), &mut rng), Decision::Assign(0));

        // Current-size: on D3 cost = 5·8 = 40; on D0 cost = 1·8 = 8.
        // Now D3 looks *worse* than average ((40+8)/2=24; ratio 0.6,
        // P ≈ 0.45 < 0.5) -> skipped.
        let mut cur = ProbabilisticPlacer::new(ProbConfig {
            p_min: 0.5,
            estimator: IntermediateEstimator::CurrentSize,
            ..ProbConfig::default()
        });
        assert_eq!(
            cur.place_reduce(&ctx, NodeId(3), &mut rng),
            Decision::Skip(SkipReason::BelowPMin)
        );
    }

    #[test]
    #[should_panic(expected = "P_min must be in [0,1)")]
    fn bad_p_min_rejected() {
        ProbConfig::with_p_min(1.5);
    }

    #[test]
    fn argmax_never_selects_nan() {
        // NaN first: must not survive as "best".
        assert_eq!(
            argmax_probability([f64::NAN, 0.3, 0.7].into_iter()),
            Some((2, 0.7))
        );
        // NaN after a real value: must not displace it.
        assert_eq!(argmax_probability([0.9, f64::NAN].into_iter()), Some((0, 0.9)));
        // All NaN: no candidate at all.
        assert_eq!(argmax_probability([f64::NAN, f64::NAN].into_iter()), None);
        assert_eq!(argmax_probability(std::iter::empty()), None);
    }

    #[test]
    fn gate_skips_nan_without_stats_or_rng_draw() {
        let mut p = ProbabilisticPlacer::paper();
        let mut gated = rng();
        assert_eq!(
            p.gate(0, f64::NAN, &mut gated),
            Decision::Skip(SkipReason::NonFiniteCost)
        );
        // `gate` itself never books stats (the `place_*` wrappers do).
        assert_eq!(p.stats.total_decisions(), 0);
        // The RNG stream must be untouched by the NaN path.
        let mut fresh = rng();
        assert_eq!(gated.gen::<f64>(), fresh.gen::<f64>());
    }

    /// A poisoned metric: every path cost is NaN.
    struct NanCost(usize);

    impl pnats_net::PathCost for NanCost {
        fn path_cost(&self, _: NodeId, _: NodeId) -> f64 {
            f64::NAN
        }

        fn n_nodes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn non_finite_costs_reported_as_such() {
        // Poison every path cost: no candidate can be scored, so the skip
        // must be booked as NonFiniteCost, not BelowPMin.
        let h = NanCost(4);
        let layout = layout4();
        let cands = vec![mcand(0, 128, vec![NodeId(1)])];
        let free = vec![NodeId(1), NodeId(2)];
        let ctx = MapSchedContext::new(JobId(0), &cands, &free, &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(
            p.place_map(&ctx, NodeId(2), &mut rng),
            Decision::Skip(SkipReason::NonFiniteCost)
        );
        assert_eq!(p.stats.skipped(SkipReason::NonFiniteCost), 1);
    }

    #[test]
    fn cached_placer_matches_fresh_placer() {
        // The C_ave cache must be pure memoization: a placer reused across
        // calls (warm cache) must make exactly the decisions a fresh placer
        // (cold cache) makes, including after the free set shrinks and
        // after the cost matrix is mutated (version bump).
        let mut h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![
            mcand(0, 128, vec![NodeId(1)]),
            mcand(1, 128, vec![NodeId(2)]),
            mcand(2, 64, vec![NodeId(0), NodeId(3)]),
        ];
        let free_all = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let free_few = vec![NodeId(1), NodeId(2)];

        let mut warm = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.2));
        let mut warm_rng = rng();
        let mut phase = 0;
        loop {
            let free: &[NodeId] = if phase == 1 { &free_few } else { &free_all };
            if phase == 2 {
                // Same free set as phase 0, but the matrix changed: the
                // version bump must invalidate, not the value equality.
                h.set(NodeId(1), NodeId(2), 3.0);
            }
            let ctx = map_ctx(&cands, free, &h, &layout);
            for &node in &free_all {
                let mut fresh = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.2));
                let mut fresh_rng = warm_rng.clone();
                let expect = fresh.place_map(&ctx, node, &mut fresh_rng);
                let got = warm.place_map(&ctx, node, &mut warm_rng);
                assert_eq!(got, expect, "phase {phase}, node {node:?}");
                assert_eq!(
                    warm.last_detail(),
                    fresh.last_detail(),
                    "details diverged: phase {phase}, node {node:?}"
                );
                assert_eq!(
                    warm_rng.gen::<u64>(),
                    fresh_rng.gen::<u64>(),
                    "RNG streams diverged: phase {phase}, node {node:?}"
                );
            }
            phase += 1;
            if phase == 3 {
                break;
            }
        }
        assert!(warm.stats.assigned > 0, "test never exercised the assign path");
        assert!(warm.stats.cache_hits > 0, "warm placer never hit its cache");
    }

    #[test]
    fn prune_preserves_below_p_min_accounting() {
        // Same scenario as `below_p_min_skips`: the only candidate is over
        // the cost ceiling, so it is pruned without a probability
        // computation — yet the skip must still be booked as below-P_min.
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![mcand(0, 128, vec![NodeId(1)])];
        let free = vec![NodeId(1), NodeId(2)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(
            p.place_map(&ctx, NodeId(2), &mut rng),
            Decision::Skip(SkipReason::BelowPMin)
        );
        assert_eq!(p.stats.skipped(SkipReason::BelowPMin), 1);
        assert_eq!(p.stats.pruned, 1, "the 1280 > 640·1.96 candidate should be pruned");
    }

    #[test]
    fn stats_accessible_through_trait_object() {
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let cands = vec![mcand(0, 128, vec![NodeId(2)])];
        let free = vec![NodeId(2)];
        let ctx = map_ctx(&cands, &free, &h, &layout);
        let mut boxed: Box<dyn TaskPlacer> = Box::new(ProbabilisticPlacer::paper());
        let mut rng = rng();
        assert_eq!(boxed.place_map(&ctx, NodeId(2), &mut rng), Decision::Assign(0));
        let stats = boxed.stats().expect("probabilistic placer keeps stats");
        assert_eq!(stats.assigned, 1);
        assert_eq!(stats.total_decisions(), 1);
    }

    #[test]
    fn zero_progress_source_keeps_reduce_placeable() {
        // Regression: a just-started map (output bytes visible before its
        // read counter) used to extrapolate to ∞/NaN and poison the whole
        // candidate. The cost must stay finite and the probability valid.
        let h = DistanceMatrix::paper_figure2();
        let layout = layout4();
        let sources = vec![
            ShuffleSource { node: NodeId(0), current_bytes: 3.0, input_read: 0, input_total: 100 },
            ShuffleSource { node: NodeId(3), current_bytes: 10.0, input_read: 50, input_total: 100 },
        ];
        let est = IntermediateEstimator::ProgressExtrapolated;
        let cands = vec![rcand(0, sources)];
        let free = vec![NodeId(0), NodeId(3)];
        let ctx = reduce_ctx(&cands, &free, &[], &h, &layout);

        let c_here = reduce_cost(&cands[0], NodeId(0), &h, est);
        assert!(c_here.is_finite(), "cost poisoned: {c_here}");
        let c_ave = reduce_cost_avg(&cands[0], &free, &h, est);
        assert!(c_ave.is_finite(), "avg cost poisoned: {c_ave}");
        let prob = ProbabilityModel::Exponential.probability(c_ave, c_here);
        assert!(!prob.is_nan(), "probability NaN");
        assert!((0.0..=1.0).contains(&prob), "probability out of range: {prob}");

        // The zero-progress source is on D0; the real data is on D3, so the
        // D3 offer must still be accepted (its cost is below average).
        let mut p = ProbabilisticPlacer::paper();
        let mut rng = rng();
        assert_eq!(p.place_reduce(&ctx, NodeId(3), &mut rng), Decision::Assign(0));
    }
}
