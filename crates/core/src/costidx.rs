//! Path-cost equivalence classes: the incremental `C_ave` index.
//!
//! Averaging a candidate's cost over every free-slot node (Algorithm 1
//! line 6 / Algorithm 2 line 7) is `O(free nodes)` per candidate, and the
//! free set changes on almost every placement or completion — at 10k nodes
//! the recomputation dominates the whole simulation. The fix exploits the
//! structure of hop metrics: in any switch hierarchy, all nodes hanging off
//! one leaf switch are *interchangeable* as far as path costs go. Partition
//! the nodes into such equivalence classes and `C_ave` collapses to a sum
//! over classes weighted by **integer** per-class free-slot counts.
//!
//! The integer counts are the key to the differential gate
//! (`tests/scale_parity.rs`): the runtime maintains them incrementally
//! (±1 on each free-slot membership flip) while the reference path recounts
//! them from the free list on every decision. Identical integers fed to the
//! same summation yield bit-identical `f64` results, so the incremental and
//! full-recompute schedulers produce byte-identical decision traces — any
//! stale-invalidation bug surfaces as a hard mismatch instead of a silent
//! drift.
//!
//! Matrices without exploitable structure (the §II-B3 congestion-scaled
//! matrices quickly make every row distinct) fail [`CostClasses::derive`]'s
//! class cap, and every consumer falls back to the legacy per-node mean —
//! preserving the exact floating-point behaviour of the unindexed code.

use pnats_net::{NodeId, PathCost};

/// A partition of the cluster's nodes into path-cost equivalence classes.
///
/// Nodes `i` and `j` are equivalent iff swapping them changes no path cost:
/// `h(i,k) = h(j,k)` and `h(k,i) = h(k,j)` for every third node `k`, and
/// `h(i,j) = h(j,i)`. Classes are numbered in first-seen (ascending node
/// id) order, so the partition — and everything derived from it — is a
/// deterministic function of the matrix alone.
#[derive(Clone, Debug, PartialEq)]
pub struct CostClasses {
    /// Node → class index.
    class_of: Vec<u32>,
    /// Class → representative node (its lowest-id member).
    reps: Vec<NodeId>,
    /// Class → member count.
    sizes: Vec<u32>,
    /// Class → distance between two *distinct* members (0.0 for
    /// singletons, where no such pair exists). Well-defined because the
    /// equivalence relation forces all intra-class pairs to one value.
    intra: Vec<f64>,
    /// The [`PathCost::version`] of the matrix this partition was derived
    /// from; consumers key caches on it.
    version: u64,
}

impl CostClasses {
    /// Derive the partition from a cost matrix, or `None` if it needs more
    /// than `max_classes` classes (an unstructured matrix — congestion
    /// scaling makes rows distinct — where class bookkeeping would cost
    /// more than it saves).
    pub fn derive(cost: &dyn PathCost, max_classes: usize) -> Option<Self> {
        let n = cost.n_nodes();
        let mut class_of = vec![0u32; n];
        let mut reps: Vec<NodeId> = Vec::new();
        let mut sizes: Vec<u32> = Vec::new();
        let mut intra: Vec<f64> = Vec::new();
        for (i, slot) in class_of.iter_mut().enumerate() {
            let ni = NodeId(i as u32);
            let mut found = None;
            'classes: for (q, &r) in reps.iter().enumerate() {
                let pair = cost.path_cost(ni, r);
                // NaN never matches (both comparisons false), pushing the
                // node into its own class — NaN-poisoned matrices derive as
                // all-singletons or fail the cap, never alias nodes.
                if !(pair == cost.path_cost(r, ni)) {
                    continue;
                }
                if sizes[q] >= 2 && !(pair == intra[q]) {
                    continue;
                }
                for k in 0..n {
                    let nk = NodeId(k as u32);
                    if nk == ni || nk == r {
                        continue;
                    }
                    if !(cost.path_cost(ni, nk) == cost.path_cost(r, nk))
                        || !(cost.path_cost(nk, ni) == cost.path_cost(nk, r))
                    {
                        continue 'classes;
                    }
                }
                found = Some((q, pair));
                break;
            }
            match found {
                Some((q, pair)) => {
                    *slot = q as u32;
                    if sizes[q] == 1 {
                        intra[q] = pair;
                    }
                    sizes[q] += 1;
                }
                None => {
                    if reps.len() >= max_classes {
                        return None;
                    }
                    *slot = reps.len() as u32;
                    reps.push(ni);
                    sizes.push(1);
                    intra.push(0.0);
                }
            }
        }
        Some(Self { class_of, reps, sizes, intra, version: cost.version() })
    }

    /// Build from an explicit node → class map (for cost models that know
    /// their class structure up front, e.g. a switch-grouped hop model,
    /// where an `O(n²)` derivation would defeat the purpose). Class ids are
    /// renumbered into first-seen order so the result is identical to what
    /// [`CostClasses::derive`] would produce on the same partition.
    pub fn from_class_map(raw_class_of: &[u32], cost: &dyn PathCost) -> Self {
        let n = raw_class_of.len();
        assert_eq!(n, cost.n_nodes(), "class map must cover every node");
        let n_raw = raw_class_of.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut remap = vec![u32::MAX; n_raw];
        let mut class_of = vec![0u32; n];
        let mut reps: Vec<NodeId> = Vec::new();
        let mut sizes: Vec<u32> = Vec::new();
        let mut second: Vec<Option<NodeId>> = Vec::new();
        for (i, &raw) in raw_class_of.iter().enumerate() {
            let q = if remap[raw as usize] == u32::MAX {
                let q = reps.len() as u32;
                remap[raw as usize] = q;
                reps.push(NodeId(i as u32));
                sizes.push(0);
                second.push(None);
                q
            } else {
                remap[raw as usize]
            };
            class_of[i] = q;
            sizes[q as usize] += 1;
            if sizes[q as usize] == 2 {
                second[q as usize] = Some(NodeId(i as u32));
            }
        }
        let intra = reps
            .iter()
            .zip(&second)
            .map(|(&r, s)| match s {
                Some(m) => cost.path_cost(r, *m),
                None => 0.0,
            })
            .collect();
        Self { class_of, reps, sizes, intra, version: cost.version() }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.reps.len()
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.class_of.len()
    }

    /// Node → class index table.
    pub fn class_of(&self) -> &[u32] {
        &self.class_of
    }

    /// Class of one node.
    #[inline]
    pub fn class(&self, node: NodeId) -> u32 {
        self.class_of[node.idx()]
    }

    /// Class → representative node.
    pub fn reps(&self) -> &[NodeId] {
        &self.reps
    }

    /// Class → member count.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Class → intra-class pair distance (0.0 for singletons).
    pub fn intra(&self) -> &[f64] {
        &self.intra
    }

    /// The matrix revision this partition describes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dense class-to-class distance table for `cost` (row-major,
    /// `n_classes × n_classes`): entry `(a, b)` is the distance from a
    /// member of `a` to a *different* node in `b` — the representative
    /// distance off-diagonal, the intra-class pair distance on it.
    ///
    /// `cost` must share the partition's structure but may be a different
    /// view of it (the simulator uses one partition for a matrix and its
    /// transpose, since the equivalence relation is direction-symmetric).
    pub fn h_table(&self, cost: &dyn PathCost) -> Vec<f64> {
        let c = self.reps.len();
        let mut h = vec![0.0; c * c];
        for a in 0..c {
            for b in 0..c {
                h[a * c + b] = if a == b {
                    self.intra[a]
                } else {
                    cost.path_cost(self.reps[a], self.reps[b])
                };
            }
        }
        h
    }
}

/// The incremental cost index a runtime hands to the placer alongside each
/// scheduling context: the class partition plus the *current* per-class
/// free-slot counts, free-node bitset and a generation stamp.
///
/// `generation` must change whenever free-set membership changes (a node
/// gaining its first or losing its last free slot); the placer keys its
/// `C_ave` memo on `(generation, cost version)` instead of comparing free
/// lists. `classes` is `None` when the matrix is unstructured — consumers
/// then use the legacy per-node mean (bit-identical to the unindexed code)
/// while still enjoying generation-keyed caching.
#[derive(Clone, Copy, Debug)]
pub struct CostView<'a> {
    /// The partition, if the matrix has exploitable structure.
    pub classes: Option<&'a CostClasses>,
    /// Per-class free-slot node counts (empty when `classes` is `None`).
    pub free_counts: &'a [u32],
    /// Free-node membership bitset, 64 nodes per word, node id = bit index.
    pub free_bits: &'a [u64],
    /// Total free-slot nodes (must equal the context's free-list length).
    pub total_free: u32,
    /// Free-set revision stamp.
    pub generation: u64,
}

impl<'a> CostView<'a> {
    /// Whether `node` is in the free set.
    #[inline]
    pub fn is_free(&self, node: NodeId) -> bool {
        let i = node.idx();
        (self.free_bits[i / 64] >> (i % 64)) & 1 == 1
    }
}

/// Recount the per-class free counts from an explicit free list — the
/// reference implementation the incremental bookkeeping is audited against.
/// Returns `(per-class counts, membership bits, total)`.
pub fn recount_free(classes: &CostClasses, free: &[NodeId]) -> (Vec<u32>, Vec<u64>, u32) {
    let mut counts = vec![0u32; classes.n_classes()];
    let mut bits = vec![0u64; classes.n_nodes().div_ceil(64)];
    for &f in free {
        counts[classes.class(f) as usize] += 1;
        bits[f.idx() / 64] |= 1 << (f.idx() % 64);
    }
    (counts, bits, free.len() as u32)
}

/// Panic unless `view`'s incremental bookkeeping matches a from-scratch
/// recount over `free` — the audit the reference scheduling path (and
/// debug builds) run before every decision.
pub fn audit_view(classes: &CostClasses, free: &[NodeId], view: &CostView<'_>, side: &str) {
    let (counts, bits, total) = recount_free(classes, free);
    assert_eq!(
        view.total_free, total,
        "{side}: incremental total_free diverged from the free list"
    );
    assert_eq!(
        view.free_counts, &counts[..],
        "{side}: incremental per-class free counts diverged from recount"
    );
    for (w, (&got, &want)) in view.free_bits.iter().zip(&bits).enumerate() {
        assert_eq!(got, want, "{side}: free bitset word {w} diverged from recount");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_net::DistanceMatrix;

    /// 2 racks × 2 nodes: hop ladder 0/2/4, two classes of two nodes.
    fn two_racks() -> DistanceMatrix {
        #[rustfmt::skip]
        let rows = vec![
            0.0, 2.0, 4.0, 4.0,
            2.0, 0.0, 4.0, 4.0,
            4.0, 4.0, 0.0, 2.0,
            4.0, 4.0, 2.0, 0.0,
        ];
        DistanceMatrix::from_rows(4, rows)
    }

    #[test]
    fn derive_groups_rack_mates() {
        let c = CostClasses::derive(&two_racks(), 8).expect("structured");
        assert_eq!(c.n_classes(), 2);
        assert_eq!(c.class_of(), &[0, 0, 1, 1]);
        assert_eq!(c.reps(), &[NodeId(0), NodeId(2)]);
        assert_eq!(c.sizes(), &[2, 2]);
        assert_eq!(c.intra(), &[2.0, 2.0]);
    }

    #[test]
    fn derive_single_rack_is_one_class() {
        let m = DistanceMatrix::from_rows(
            3,
            vec![0.0, 2.0, 2.0, 2.0, 0.0, 2.0, 2.0, 2.0, 0.0],
        );
        let c = CostClasses::derive(&m, 8).expect("structured");
        assert_eq!(c.n_classes(), 1);
        assert_eq!(c.sizes(), &[3]);
        assert_eq!(c.intra(), &[2.0]);
    }

    #[test]
    fn derive_respects_class_cap() {
        // Figure 2's matrix has four distinct rows — four classes.
        let m = DistanceMatrix::paper_figure2();
        assert!(CostClasses::derive(&m, 3).is_none(), "cap must reject");
        let c = CostClasses::derive(&m, 4).expect("under cap");
        assert_eq!(c.n_classes(), 4);
        assert_eq!(c.sizes(), &[1, 1, 1, 1]);
        assert_eq!(c.intra(), &[0.0; 4]);
    }

    #[test]
    fn derive_rejects_asymmetric_pairs_from_one_class() {
        // h(0,1) ≠ h(1,0): 0 and 1 must not share a class even though
        // their third-party rows agree.
        #[rustfmt::skip]
        let rows = vec![
            0.0, 3.0, 5.0,
            2.0, 0.0, 5.0,
            5.0, 5.0, 0.0,
        ];
        let m = DistanceMatrix::from_rows(3, rows);
        let c = CostClasses::derive(&m, 8).expect("still derivable");
        assert_eq!(c.n_classes(), 3);
    }

    #[test]
    fn h_table_has_intra_diagonal() {
        let m = two_racks();
        let c = CostClasses::derive(&m, 8).unwrap();
        let h = c.h_table(&m);
        assert_eq!(h, vec![2.0, 4.0, 4.0, 2.0]);
    }

    #[test]
    fn from_class_map_matches_derive() {
        let m = two_racks();
        let derived = CostClasses::derive(&m, 8).unwrap();
        // Same partition under scrambled raw ids: renumbered to first-seen.
        let built = CostClasses::from_class_map(&[7, 7, 3, 3], &m);
        assert_eq!(built, derived);
    }

    #[test]
    fn recount_and_view_audit() {
        let m = two_racks();
        let c = CostClasses::derive(&m, 8).unwrap();
        let free = vec![NodeId(1), NodeId(2), NodeId(3)];
        let (counts, bits, total) = recount_free(&c, &free);
        assert_eq!(counts, vec![1, 2]);
        assert_eq!(total, 3);
        assert_eq!(bits, vec![0b1110]);
        let view = CostView {
            classes: Some(&c),
            free_counts: &counts,
            free_bits: &bits,
            total_free: total,
            generation: 0,
        };
        assert!(!view.is_free(NodeId(0)));
        assert!(view.is_free(NodeId(3)));
        audit_view(&c, &free, &view, "test");
    }

    #[test]
    #[should_panic(expected = "per-class free counts diverged")]
    fn audit_catches_stale_counts() {
        let m = two_racks();
        let c = CostClasses::derive(&m, 8).unwrap();
        let free = vec![NodeId(1), NodeId(2)];
        let (_, bits, _) = recount_free(&c, &free);
        let stale = vec![2, 0]; // wrong: node 2 moved class
        let view = CostView {
            classes: Some(&c),
            free_counts: &stale,
            free_bits: &bits,
            total_free: 2,
            generation: 0,
        };
        audit_view(&c, &free, &view, "test");
    }

    #[test]
    fn nan_poisoned_matrix_never_aliases_nodes() {
        struct NanCost;
        impl PathCost for NanCost {
            fn path_cost(&self, _: NodeId, _: NodeId) -> f64 {
                f64::NAN
            }
            fn n_nodes(&self) -> usize {
                3
            }
        }
        let c = CostClasses::derive(&NanCost, 8).expect("all singletons fit");
        assert_eq!(c.n_classes(), 3);
        assert!(CostClasses::derive(&NanCost, 2).is_none());
    }
}
