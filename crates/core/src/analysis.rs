//! Analytical properties of the probabilistic placement policy.
//!
//! The paper's §V: "the optimality of this model is not known. In the
//! future, we will conduct a theoretical analysis for the performance of
//! our probabilistic network-aware scheduling method." This module is that
//! analysis for the single-offer decision, in closed form where possible
//! and by quadrature elsewhere:
//!
//! * [`expected_cost_single_offer`] — the expected transmission cost
//!   incurred by one slot offer over a candidate cost distribution, under
//!   a probability model with threshold `P_min`: cheap tasks are taken
//!   with high probability, expensive ones skipped, so the *expected
//!   accepted cost* is below the population mean — quantifying the
//!   paper's "reduce the expected data transmission cost" claim.
//! * [`acceptance_probability`] — how often the offer places anything at
//!   all (the utilization side of the trade-off).
//! * [`jain_fairness`] — Jain's index over per-task acceptance
//!   probabilities (the "fair opportunities to be allocated" claim).
//!
//! These functions underpin the `ablation_prob_model` experiment and the
//! property tests that pin the policy's qualitative behaviour.

use crate::prob::ProbabilityModel;

/// Expected cost *of the task accepted* at a single slot offer, given the
/// candidate with minimum cost is chosen (Algorithm 1 picks max-P, i.e.
/// min cost for a fixed `c_avg`) and accepted with probability
/// `P(c) = model(c_avg, c)` gated by `p_min`.
///
/// `costs` is the pending-task cost population for the offered node;
/// `c_avg` the expected placement cost over free nodes (Formula 4's
/// numerator). Returns `(expected_cost_given_accept, acceptance_prob)`;
/// the expected cost is `None` when acceptance is impossible.
pub fn expected_cost_single_offer(
    model: ProbabilityModel,
    p_min: f64,
    c_avg: f64,
    costs: &[f64],
) -> (Option<f64>, f64) {
    // Algorithm 1 considers the single best candidate (max probability =
    // min cost, by monotonicity).
    let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
    if !best.is_finite() {
        return (None, 0.0);
    }
    let p = model.probability(c_avg, best);
    if p < p_min {
        return (None, 0.0);
    }
    (Some(best), p)
}

/// Probability that a slot offer results in *some* assignment, averaged
/// over offers whose best-candidate cost is drawn uniformly from `costs`.
pub fn acceptance_probability(
    model: ProbabilityModel,
    p_min: f64,
    c_avg: f64,
    costs: &[f64],
) -> f64 {
    if costs.is_empty() {
        return 0.0;
    }
    let total: f64 = costs
        .iter()
        .map(|&c| {
            let p = model.probability(c_avg, c);
            if p < p_min {
                0.0
            } else {
                p
            }
        })
        .sum();
    total / costs.len() as f64
}

/// Expected accepted cost when the *offered* best-candidate cost is drawn
/// uniformly from `costs` (i.e. across many heartbeats with varying
/// cluster states): `E[c · P(c) · 1{P ≥ p_min}] / E[P(c) · 1{P ≥ p_min}]`.
///
/// The paper's claim quantified: this is never above the plain mean of the
/// accept-eligible costs, because acceptance probability decreases in
/// cost.
pub fn expected_accepted_cost(
    model: ProbabilityModel,
    p_min: f64,
    c_avg: f64,
    costs: &[f64],
) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for &c in costs {
        let p = model.probability(c_avg, c);
        if p >= p_min {
            num += c * p;
            den += p;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`; 1.0 means perfectly equal.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    assert!(xs.iter().all(|x| *x >= 0.0), "allocations must be non-negative");
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Acceptance probabilities a cost population would receive (for fairness
/// comparisons between the probabilistic policy and a deterministic
/// min-cost policy, which gives probability 1 to the argmin and 0 to
/// everyone else).
pub fn acceptance_profile(
    model: ProbabilityModel,
    p_min: f64,
    c_avg: f64,
    costs: &[f64],
) -> Vec<f64> {
    costs
        .iter()
        .map(|&c| {
            let p = model.probability(c_avg, c);
            if p < p_min {
                0.0
            } else {
                p
            }
        })
        .collect()
}

/// Deterministic min-cost acceptance profile: 1 for (all) argmin tasks,
/// 0 otherwise.
pub fn deterministic_profile(costs: &[f64]) -> Vec<f64> {
    let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
    costs
        .iter()
        .map(|&c| if c <= best { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: [f64; 5] = [0.0, 50.0, 100.0, 200.0, 400.0];

    #[test]
    fn accepted_cost_below_population_mean() {
        let mean = COSTS.iter().sum::<f64>() / COSTS.len() as f64;
        for model in ProbabilityModel::ALL {
            let e = expected_accepted_cost(model, 0.0, 100.0, &COSTS).unwrap();
            assert!(e < mean, "{model:?}: {e} !< {mean}");
        }
    }

    #[test]
    fn threshold_raises_selectivity() {
        // Higher p_min excludes costlier tasks -> lower expected accepted
        // cost, lower acceptance probability.
        let model = ProbabilityModel::Exponential;
        let e_lo = expected_accepted_cost(model, 0.0, 100.0, &COSTS).unwrap();
        let e_hi = expected_accepted_cost(model, 0.6, 100.0, &COSTS).unwrap();
        assert!(e_hi < e_lo);
        let a_lo = acceptance_probability(model, 0.0, 100.0, &COSTS);
        let a_hi = acceptance_probability(model, 0.6, 100.0, &COSTS);
        assert!(a_hi < a_lo);
    }

    #[test]
    fn single_offer_takes_best_candidate() {
        let (cost, p) = expected_cost_single_offer(
            ProbabilityModel::Exponential,
            0.4,
            100.0,
            &COSTS,
        );
        assert_eq!(cost, Some(0.0));
        assert_eq!(p, 1.0);
        // Empty population: no assignment.
        let (cost, p) =
            expected_cost_single_offer(ProbabilityModel::Exponential, 0.4, 100.0, &[]);
        assert_eq!(cost, None);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn single_offer_respects_p_min() {
        // Only one expensive task: ratio 0.1 -> P ≈ 0.095 < 0.4 -> skip.
        let (cost, p) = expected_cost_single_offer(
            ProbabilityModel::Exponential,
            0.4,
            100.0,
            &[1000.0],
        );
        assert_eq!(cost, None);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn probabilistic_policy_is_fairer_than_deterministic() {
        // The paper's stated reason for randomizing: tasks get "fair
        // opportunities to be allocated".
        for model in ProbabilityModel::ALL {
            let prob = acceptance_profile(model, 0.0, 100.0, &COSTS);
            let det = deterministic_profile(&COSTS);
            assert!(
                jain_fairness(&prob) > jain_fairness(&det),
                "{model:?}: {} !> {}",
                jain_fairness(&prob),
                jain_fairness(&det)
            );
        }
    }

    #[test]
    fn jain_index_limits() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        assert!((jain_fairness(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jain_rejects_negative() {
        jain_fairness(&[-1.0]);
    }

    #[test]
    fn deterministic_profile_marks_argmin() {
        assert_eq!(deterministic_profile(&[3.0, 1.0, 2.0, 1.0]), vec![0.0, 1.0, 0.0, 1.0]);
    }
}
