//! The shuffle-partition function shared by every runtime.
//!
//! A MapReduce computation's *output bytes* are determined by which reduce
//! partition each intermediate key lands in, so every runtime — the
//! threaded engine, the discrete-event simulator's shuffle model and the
//! TCP cluster runtime — must agree on one definition. This module is that
//! definition; the golden-hash test below pins its outputs so the mapping
//! can never drift silently across platforms or PRs (drifting would break
//! the engine-vs-cluster byte-parity gate and invalidate archived traces).

/// Hadoop's default partitioner: stable hash of the key modulo partitions.
///
/// FNV-1a (64-bit): stable across runs and platforms, unlike std's
/// `DefaultHasher` whose output is randomized per process.
pub fn partition_of(key: &str, n_reduces: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n_reduces as u64) as usize
}

/// How intermediate keys map to reduce partitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Partitioner {
    /// Stable FNV-1a hash of the key (Hadoop default) — [`partition_of`].
    #[default]
    Hash,
    /// Range partition by the key's first byte — gives globally sorted
    /// output for uniformly distributed keys (TeraSort's sampler, scaled
    /// down).
    RangeByFirstByte,
}

impl Partitioner {
    /// The partition `key` belongs to, out of `n` (`n > 0`).
    pub fn of(self, key: &str, n: usize) -> usize {
        match self {
            Partitioner::Hash => partition_of(key, n),
            Partitioner::RangeByFirstByte => {
                let b = key.as_bytes().first().copied().unwrap_or(0) as usize;
                (b * n / 256).min(n - 1)
            }
        }
    }

    /// Stable one-byte wire tag (the cluster runtime ships the partitioner
    /// choice to its workers in `RegisterAck`).
    pub fn tag(self) -> u8 {
        match self {
            Partitioner::Hash => 0,
            Partitioner::RangeByFirstByte => 1,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Partitioner::Hash),
            1 => Some(Partitioner::RangeByFirstByte),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values computed independently from the FNV-1a reference
    /// parameters (offset basis 0xcbf29ce484222325, prime 0x100000001b3).
    /// If this test fails, the partition function changed — which breaks
    /// byte-parity between runtimes and invalidates every archived trace.
    /// Do not update the constants without bumping the RPC protocol version.
    #[test]
    fn golden_hash_pins_partition_of() {
        let cases: [(&str, usize, usize); 10] = [
            ("", 7, 2),
            ("", 157, 28),
            ("a", 7, 5),
            ("a", 16, 12),
            ("hello", 16, 11),
            ("hello", 157, 117),
            ("apple", 3, 0),
            ("Zebra-12", 157, 101),
            ("the", 16, 12),
            ("pnats", 7, 6),
        ];
        for (key, n, expect) in cases {
            assert_eq!(partition_of(key, n), expect, "partition_of({key:?}, {n})");
        }
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        for n in [1usize, 7, 157] {
            for key in ["", "a", "hello", "Zebra-12"] {
                let p = partition_of(key, n);
                assert!(p < n);
                assert_eq!(p, partition_of(key, n), "stable");
            }
        }
    }

    #[test]
    fn partition_spreads_keys() {
        let n = 16;
        let mut seen = vec![false; n];
        for i in 0..1000 {
            seen[partition_of(&format!("key{i}"), n)] = true;
        }
        assert!(seen.iter().all(|s| *s), "every partition hit");
    }

    #[test]
    fn range_partitioner_is_monotone_and_bounded() {
        let p = Partitioner::RangeByFirstByte;
        let n = 4;
        let mut last = 0;
        for b in 0u8..=255 {
            let key = String::from_utf8_lossy(&[b]).to_string();
            if !key.is_empty() && key.as_bytes()[0] == b {
                let part = p.of(&key, n);
                assert!(part < n);
                assert!(part >= last, "range partition must be monotone in the first byte");
                last = part;
            }
        }
        assert_eq!(p.of("", n), 0, "empty key goes to partition 0");
    }

    #[test]
    fn wire_tags_round_trip() {
        for p in [Partitioner::Hash, Partitioner::RangeByFirstByte] {
            assert_eq!(Partitioner::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Partitioner::from_tag(2), None);
    }
}
