//! Job and task identities shared across the scheduling stack.

use std::fmt;

/// Identifier of a MapReduce job (`J_i` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct JobId(pub u32);

/// Identifier of a map task (`M_j`), scoped to its job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MapTaskId {
    /// Owning job.
    pub job: JobId,
    /// Index within the job, `0..m`.
    pub index: u32,
}

/// Identifier of a reduce task (`R_f`), scoped to its job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ReduceTaskId {
    /// Owning job.
    pub job: JobId,
    /// Index within the job, `0..n`; also the shuffle partition it owns.
    pub index: u32,
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for MapTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/M{}", self.job, self.index)
    }
}

impl fmt::Display for ReduceTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/R{}", self.job, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let j = JobId(3);
        assert_eq!(j.to_string(), "J3");
        assert_eq!(MapTaskId { job: j, index: 5 }.to_string(), "J3/M5");
        assert_eq!(ReduceTaskId { job: j, index: 1 }.to_string(), "J3/R1");
    }

    #[test]
    fn ordering_groups_by_job_then_index() {
        let a = MapTaskId { job: JobId(0), index: 9 };
        let b = MapTaskId { job: JobId(1), index: 0 };
        assert!(a < b);
    }
}
