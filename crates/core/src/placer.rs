//! The task-placement interface every scheduler implements.
//!
//! The runtime (simulator or threaded engine) owns cluster state and job
//! bookkeeping; a [`TaskPlacer`] only answers the question Hadoop's
//! task-level scheduling asks on each heartbeat: *given this node's free
//! slot and these pending tasks, which task (if any) should run here?*

use crate::context::{MapSchedContext, ReduceSchedContext};
use pnats_net::NodeId;
use rand::rngs::SmallRng;

/// Why a placer declined a slot offer.
///
/// Every [`Decision::Skip`] carries one of these so runtimes, traces and
/// counters all agree on the cause; [`PlacerStats`] tallies them per
/// variant instead of keeping parallel hand-maintained counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(usize)]
pub enum SkipReason {
    /// No candidate task was eligible for this node — the candidate list
    /// was empty, or every candidate was filtered out before scoring.
    NoCandidate,
    /// A delay-scheduling bound held the task back waiting for locality
    /// (fair scheduler's wait levels).
    DelayBound,
    /// The winning candidate's placement probability fell below `P_min`
    /// (Algorithm 1 line 8 / Algorithm 2 line 8).
    BelowPMin,
    /// The Bernoulli draw on the placement probability failed
    /// (Algorithm 1 line 9 / Algorithm 2 line 9).
    DrawFailed,
    /// A reduce launch was deliberately postponed — coupling's launch gate
    /// or LARTS's sweet-spot wait, not a per-node refusal.
    PostponedReduce,
    /// Cost evaluation produced a non-finite value (NaN/∞ path costs), so
    /// no candidate could be scored.
    NonFiniteCost,
    /// The node already runs a reduce of this job (Algorithm 2 line 1
    /// refuses to co-locate two reduces of one job).
    Collocated,
    /// Every candidate's input data lives only on crashed nodes, so nothing
    /// could be offered — the work waits for a replica holder to recover.
    /// Produced by the runtime's liveness filter, never by a placer.
    NodeDead,
}

impl SkipReason {
    /// All variants, in counter order (index = `as usize`).
    pub const ALL: [SkipReason; 8] = [
        SkipReason::NoCandidate,
        SkipReason::DelayBound,
        SkipReason::BelowPMin,
        SkipReason::DrawFailed,
        SkipReason::PostponedReduce,
        SkipReason::NonFiniteCost,
        SkipReason::Collocated,
        SkipReason::NodeDead,
    ];

    /// Number of variants (length of [`PlacerStats::skips`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case label used in JSONL traces and counter reports.
    pub fn label(self) -> &'static str {
        match self {
            SkipReason::NoCandidate => "no_candidate",
            SkipReason::DelayBound => "delay_bound",
            SkipReason::BelowPMin => "below_p_min",
            SkipReason::DrawFailed => "draw_failed",
            SkipReason::PostponedReduce => "postponed_reduce",
            SkipReason::NonFiniteCost => "non_finite_cost",
            SkipReason::Collocated => "collocated",
            SkipReason::NodeDead => "node_dead",
        }
    }
}

/// Outcome of a placement query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Launch `candidates[i]` on the offered node.
    Assign(usize),
    /// Leave the slot empty this heartbeat, for the stated reason.
    Skip(SkipReason),
}

impl Decision {
    /// The assigned candidate index, if any.
    pub fn assigned(self) -> Option<usize> {
        match self {
            Decision::Assign(i) => Some(i),
            Decision::Skip(_) => None,
        }
    }

    /// The skip reason, if the slot was declined.
    pub fn skip_reason(self) -> Option<SkipReason> {
        match self {
            Decision::Assign(_) => None,
            Decision::Skip(r) => Some(r),
        }
    }
}

/// Per-decision intermediates of the paper's Algorithms 1–2, exposed for
/// tracing: the winning candidate's cost `C_i`, the mean `C_ave` over
/// free-slot nodes, and the placement probability `P = 1 − e^{−C_ave/C_i}`.
///
/// Placers that don't compute these (most baselines) return `None` from
/// [`TaskPlacer::last_detail`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecisionDetail {
    /// `C_i`: the winning candidate's cost on the offered node.
    pub cost: f64,
    /// `C_ave`: mean best-case cost of the candidate over free-slot nodes.
    pub cost_avg: f64,
    /// `P`: the placement probability the gate evaluated.
    pub probability: f64,
}

/// Decision tallies keyed by outcome: assignments plus one counter per
/// [`SkipReason`] variant, with the probabilistic placer's cache/prune
/// extras alongside.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlacerStats {
    /// Tasks assigned (`Decision::Assign` returned).
    pub assigned: u64,
    /// Skips per [`SkipReason`] variant, indexed by `reason as usize`.
    pub skips: [u64; SkipReason::COUNT],
    /// Candidates cost-ceiling-pruned before the full `C_ave` evaluation.
    pub pruned: u64,
    /// `C_ave` cache lookups answered from the memo.
    pub cache_hits: u64,
    /// `C_ave` cache lookups that had to recompute.
    pub cache_misses: u64,
}

impl PlacerStats {
    /// Tally one decision outcome.
    pub fn record(&mut self, decision: Decision) {
        match decision {
            Decision::Assign(_) => self.assigned += 1,
            Decision::Skip(r) => self.skips[r as usize] += 1,
        }
    }

    /// Skip count for one reason.
    pub fn skipped(&self, reason: SkipReason) -> u64 {
        self.skips[reason as usize]
    }

    /// Total skips across all reasons.
    pub fn total_skips(&self) -> u64 {
        self.skips.iter().sum()
    }

    /// Total decisions recorded (assigns + skips).
    pub fn total_decisions(&self) -> u64 {
        self.assigned + self.total_skips()
    }
}

/// A task-level scheduling policy.
///
/// Implementations must be deterministic given the context and the provided
/// RNG — all randomness flows through `rng` so experiments are replayable.
pub trait TaskPlacer: Send {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Offer a free **map** slot on `node`. The context always lists `node`
    /// in `free_map_nodes` and has at least one candidate.
    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision;

    /// Offer a free **reduce** slot on `node`. The context always lists
    /// `node` in `free_reduce_nodes` and has at least one candidate.
    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision;

    /// Notification that a new heartbeat round begins (baselines with
    /// delay/postponement counters hook this; default no-op).
    fn on_heartbeat_round(&mut self, _round: u64) {}

    /// Decision tallies, if this placer keeps them (default: `None`).
    /// Lets harness code read counters without downcasting.
    fn stats(&self) -> Option<&PlacerStats> {
        None
    }

    /// Algorithm intermediates (`C_i`, `C_ave`, `P`) of the most recent
    /// `place_map`/`place_reduce` call, if this placer computes them
    /// (default: `None`). Read by the tracing layer right after a decision.
    fn last_detail(&self) -> Option<DecisionDetail> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessor() {
        assert_eq!(Decision::Assign(3).assigned(), Some(3));
        assert_eq!(Decision::Skip(SkipReason::NoCandidate).assigned(), None);
        assert_eq!(Decision::Assign(3).skip_reason(), None);
        assert_eq!(
            Decision::Skip(SkipReason::DrawFailed).skip_reason(),
            Some(SkipReason::DrawFailed)
        );
    }

    #[test]
    fn skip_reason_indices_match_all_order() {
        for (i, r) in SkipReason::ALL.iter().enumerate() {
            assert_eq!(*r as usize, i, "ALL order must match discriminants");
        }
    }

    #[test]
    fn skip_reason_labels_unique() {
        let mut labels: Vec<&str> = SkipReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SkipReason::COUNT);
    }

    #[test]
    fn stats_record_keyed_by_reason() {
        let mut s = PlacerStats::default();
        s.record(Decision::Assign(0));
        s.record(Decision::Skip(SkipReason::BelowPMin));
        s.record(Decision::Skip(SkipReason::BelowPMin));
        s.record(Decision::Skip(SkipReason::Collocated));
        assert_eq!(s.assigned, 1);
        assert_eq!(s.skipped(SkipReason::BelowPMin), 2);
        assert_eq!(s.skipped(SkipReason::Collocated), 1);
        assert_eq!(s.total_skips(), 3);
        assert_eq!(s.total_decisions(), 4);
    }
}
