//! The task-placement interface every scheduler implements.
//!
//! The runtime (simulator or threaded engine) owns cluster state and job
//! bookkeeping; a [`TaskPlacer`] only answers the question Hadoop's
//! task-level scheduling asks on each heartbeat: *given this node's free
//! slot and these pending tasks, which task (if any) should run here?*

use crate::context::{MapSchedContext, ReduceSchedContext};
use pnats_net::NodeId;
use rand::rngs::SmallRng;

/// Outcome of a placement query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Launch `candidates[i]` on the offered node.
    Assign(usize),
    /// Leave the slot empty this heartbeat (delay, probability miss, gate).
    Skip,
}

impl Decision {
    /// The assigned candidate index, if any.
    pub fn assigned(self) -> Option<usize> {
        match self {
            Decision::Assign(i) => Some(i),
            Decision::Skip => None,
        }
    }
}

/// A task-level scheduling policy.
///
/// Implementations must be deterministic given the context and the provided
/// RNG — all randomness flows through `rng` so experiments are replayable.
pub trait TaskPlacer: Send {
    /// Human-readable policy name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Offer a free **map** slot on `node`. The context always lists `node`
    /// in `free_map_nodes` and has at least one candidate.
    fn place_map(
        &mut self,
        ctx: &MapSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision;

    /// Offer a free **reduce** slot on `node`. The context always lists
    /// `node` in `free_reduce_nodes` and has at least one candidate.
    fn place_reduce(
        &mut self,
        ctx: &ReduceSchedContext<'_>,
        node: NodeId,
        rng: &mut SmallRng,
    ) -> Decision;

    /// Notification that a new heartbeat round begins (baselines with
    /// delay/postponement counters hook this; default no-op).
    fn on_heartbeat_round(&mut self, _round: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessor() {
        assert_eq!(Decision::Assign(3).assigned(), Some(3));
        assert_eq!(Decision::Skip.assigned(), None);
    }
}
