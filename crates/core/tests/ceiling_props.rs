//! Property test: for every probability model, the derived cost ceiling is
//! exactly the threshold set of the probability formula —
//!
//! ```text
//! probability(c_ave, c) >= p_min   <=>   c <= cost_ceiling(c_ave, p_min)
//! ```
//!
//! This equivalence is what lets the scheduler use the ceiling as an O(1)
//! prune in place of the full probability computation, so it must hold for
//! all four models across the whole parameter space — including `p_min`
//! pushed toward 0 and 1, and the Sigmoid branch where the threshold is
//! unreachable (`r <= 0`, every finite cost passes).

use pnats_core::ProbabilityModel;
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = ProbabilityModel> {
    (0usize..ProbabilityModel::ALL.len()).prop_map(|i| ProbabilityModel::ALL[i])
}

/// `p_min` over its legal half-open domain `[0, 1)`, weighted toward the
/// extremes: exact 0 (ceiling must be infinite), near-0 (huge ceilings),
/// the Sigmoid `r <= 0` region (`p_min <= 1/(1+e) ≈ 0.269`), and near-1
/// (tiny ceilings, `-ln(1-p)` blowing up).
fn p_min_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        1 => Just(0.0),
        4 => 0.0..1.0,
        2 => 1e-12..1e-6,
        2 => 0.01..0.26,
        2 => 0.999_999..0.999_999_999_9,
    ]
}

/// Costs spanning several orders of magnitude plus the exact-zero
/// (data-local / empty-average) edge.
fn cost_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        1 => Just(0.0),
        4 => 0.0..10.0f64,
        4 => 0.0..1e7,
    ]
}

/// Relative width of the boundary band we refuse to judge: within one part
/// in 10⁹ of the ceiling, both sides of the equivalence are legitimately
/// decided by rounding in `exp`/`ln`, so the property is only asserted
/// outside it. (The scheduler's prune respects the same boundary by
/// inflating the ceiling with `PRUNE_SLACK` before comparing.)
const BOUNDARY_BAND: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn ceiling_is_the_probability_threshold(
        model in model_strategy(),
        p_min in p_min_strategy(),
        c_ave in cost_strategy(),
        c in cost_strategy(),
    ) {
        let ceiling = model.cost_ceiling(c_ave, p_min);
        prop_assert!(ceiling >= 0.0, "{model:?}: ceiling {ceiling} not a non-negative real");

        let p = model.probability(c_ave, c);
        prop_assert!((0.0..=1.0).contains(&p), "{model:?}: p = {p}");

        if ceiling.is_infinite() {
            // Unreachable threshold: every finite cost must pass. This is
            // p_min == 0, or the Sigmoid r <= 0 branch where even a
            // zero ratio yields P = 1/(1+e) > p_min.
            prop_assert!(
                p >= p_min,
                "{model:?}: ceiling ∞ but P({c_ave}, {c}) = {p} < {p_min}"
            );
            return Ok(());
        }

        // Skip the rounding-ambiguous shell around the boundary.
        prop_assume!((c - ceiling).abs() > BOUNDARY_BAND * ceiling.max(1.0));

        if c <= ceiling {
            prop_assert!(
                p >= p_min - 1e-12,
                "{model:?}: c {c} <= ceiling {ceiling} but P = {p} < p_min {p_min} (c_ave {c_ave})"
            );
        } else {
            prop_assert!(
                p < p_min + 1e-12,
                "{model:?}: c {c} > ceiling {ceiling} but P = {p} >= p_min {p_min} (c_ave {c_ave})"
            );
        }
    }

    /// The ceiling itself, evaluated through the probability formula, lands
    /// on `p_min` (when finite and non-degenerate) — i.e. it is the exact
    /// inverse, not merely a conservative bound.
    #[test]
    fn finite_ceiling_is_tight(
        model in model_strategy(),
        p_min in 0.05..0.95f64,
        c_ave in 0.1..1e6f64,
    ) {
        let ceiling = model.cost_ceiling(c_ave, p_min);
        prop_assume!(ceiling.is_finite());
        let p = model.probability(c_ave, ceiling);
        prop_assert!(
            (p - p_min).abs() < 1e-9,
            "{model:?}: P(c_ave, ceiling) = {p}, expected {p_min}"
        );
    }
}
