//! Synthetic input data generators for the threaded engine.
//!
//! The paper generates Wordcount/Grep input "by BigDataBench based on the
//! Wikipedia datasets" and TeraSort input with Teragen. Neither corpus is
//! available here, so we substitute generators with the statistical
//! properties the workloads depend on: Zipf-distributed word frequencies
//! (Wikipedia text is famously Zipfian, which is what makes wordcount's
//! partitions skewed) and Teragen's uniform random fixed-width records.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf sampler over ranks `1..=n` with exponent `s`, using inverse-CDF
/// lookup on a precomputed cumulative table.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` items with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0 && s >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        cdf.iter_mut().for_each(|c| *c /= total);
        Self { cdf }
    }

    /// Sample a 0-based rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Deterministic pseudo-word for a vocabulary rank: short words for hot
/// ranks (like natural language).
pub fn vocab_word(rank: usize) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    let mut w = String::new();
    let mut r = rank + 1;
    while r > 0 {
        w.push(ALPHA[(r - 1) % 26] as char);
        r = (r - 1) / 26;
    }
    w
}

/// Generate roughly `target_bytes` of Zipf-distributed text: words drawn
/// from a `vocab`-sized vocabulary with exponent `s`, newline every ~12
/// words. Always ends with a newline; never empty for `target_bytes > 0`.
pub fn zipf_text(target_bytes: usize, vocab: usize, s: f64, rng: &mut SmallRng) -> String {
    let zipf = Zipf::new(vocab, s);
    let mut out = String::with_capacity(target_bytes + 16);
    let mut words_on_line = 0;
    while out.len() < target_bytes {
        if words_on_line > 0 {
            out.push(' ');
        }
        out.push_str(&vocab_word(zipf.sample(rng)));
        words_on_line += 1;
        if words_on_line == 12 {
            out.push('\n');
            words_on_line = 0;
        }
    }
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Width of one Teragen-style record in bytes (10-byte key, 88-byte
/// payload, newline — mirroring Teragen's 100-byte records).
pub const TERAGEN_RECORD_BYTES: usize = 99;

/// Generate `n` Teragen-style records: a 10-char uniform random key, a
/// deterministic payload, one record per line.
pub fn teragen_records(n: usize, rng: &mut SmallRng) -> String {
    const KEYSPACE: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    let mut out = String::with_capacity(n * TERAGEN_RECORD_BYTES);
    for i in 0..n {
        for _ in 0..10 {
            out.push(KEYSPACE[rng.gen_range(0..KEYSPACE.len())] as char);
        }
        out.push_str(&format!("{:088}", i));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn zipf_rank0_is_hottest() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10], "{} vs {}", counts[0], counts[10]);
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((700..=1300).contains(&c), "{c}");
        }
    }

    #[test]
    fn vocab_words_unique_and_short_for_hot_ranks() {
        let words: Vec<String> = (0..1000).map(vocab_word).collect();
        let mut dedup = words.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 1000);
        assert_eq!(words[0], "a");
        assert!(words[0].len() <= words[999].len());
    }

    #[test]
    fn zipf_text_hits_target_and_is_words() {
        let t = zipf_text(10_000, 500, 1.0, &mut rng());
        assert!(t.len() >= 10_000 && t.len() < 10_100);
        assert!(t.ends_with('\n'));
        let freq: HashMap<&str, usize> =
            t.split_whitespace().fold(HashMap::new(), |mut m, w| {
                *m.entry(w).or_insert(0) += 1;
                m
            });
        // The single-letter hot word dominates.
        let max = freq.values().max().unwrap();
        assert_eq!(freq.get("a"), Some(max));
    }

    #[test]
    fn teragen_records_are_fixed_width() {
        let t = teragen_records(50, &mut rng());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 50);
        for l in &lines {
            assert_eq!(l.len(), TERAGEN_RECORD_BYTES - 1);
        }
        // Keys are (very likely) not sorted as generated.
        let keys: Vec<&str> = lines.iter().map(|l| &l[..10]).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_ne!(keys, sorted);
    }
}
