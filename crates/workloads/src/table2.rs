//! Table II of the paper: the 30 evaluation jobs.
//!
//! Each entry records the job's application, input size and the map/reduce
//! task counts the authors measured on their Hadoop deployment. We use the
//! counts verbatim: block sizes are derived as `input / maps` so the
//! simulated HDFS produces exactly the paper's task population.

use std::fmt;

/// The benchmark application a job runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppKind {
    /// Word frequency counting over (synthetic) Wikipedia-like text.
    Wordcount,
    /// Distributed sort of Teragen records.
    Terasort,
    /// Substring search over text; tiny intermediate output.
    Grep,
}

impl AppKind {
    /// All applications, in Table II order.
    pub const ALL: [AppKind; 3] = [AppKind::Wordcount, AppKind::Terasort, AppKind::Grep];
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AppKind::Wordcount => "Wordcount",
            AppKind::Terasort => "Terasort",
            AppKind::Grep => "Grep",
        })
    }
}

/// One row of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Paper JobID (01–30).
    pub id: u32,
    /// Application.
    pub app: AppKind,
    /// Input size in GB.
    pub input_gb: u32,
    /// Number of map tasks.
    pub maps: u32,
    /// Number of reduce tasks.
    pub reduces: u32,
}

impl JobSpec {
    /// Input size in bytes (GB = 2³⁰ bytes, as Hadoop reports).
    pub fn input_bytes(&self) -> u64 {
        self.input_gb as u64 * (1 << 30)
    }

    /// Per-map block sizes (near-equal split hitting the exact map count).
    pub fn block_sizes(&self) -> Vec<u64> {
        pnats_dfs_split(self.input_bytes(), self.maps as usize)
    }

    /// Job name in the paper's `App_SizeGB` convention.
    pub fn name(&self) -> String {
        format!("{}_{}GB", self.app, self.input_gb)
    }
}

// Local re-implementation of the near-equal split to avoid a dependency
// from workloads onto dfs (kept consistent by the test below and by the
// integration suite).
fn pnats_dfs_split(total: u64, n: usize) -> Vec<u64> {
    assert!(n > 0);
    let base = total / n as u64;
    let rem = (total % n as u64) as usize;
    (0..n)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

/// The 30 jobs of Table II, verbatim.
pub const TABLE2: [JobSpec; 30] = [
    JobSpec { id: 1, app: AppKind::Wordcount, input_gb: 10, maps: 88, reduces: 157 },
    JobSpec { id: 2, app: AppKind::Wordcount, input_gb: 20, maps: 160, reduces: 169 },
    JobSpec { id: 3, app: AppKind::Wordcount, input_gb: 30, maps: 278, reduces: 159 },
    JobSpec { id: 4, app: AppKind::Wordcount, input_gb: 40, maps: 502, reduces: 169 },
    JobSpec { id: 5, app: AppKind::Wordcount, input_gb: 50, maps: 490, reduces: 127 },
    JobSpec { id: 6, app: AppKind::Wordcount, input_gb: 60, maps: 645, reduces: 187 },
    JobSpec { id: 7, app: AppKind::Wordcount, input_gb: 70, maps: 598, reduces: 165 },
    JobSpec { id: 8, app: AppKind::Wordcount, input_gb: 80, maps: 818, reduces: 291 },
    JobSpec { id: 9, app: AppKind::Wordcount, input_gb: 90, maps: 837, reduces: 157 },
    JobSpec { id: 10, app: AppKind::Wordcount, input_gb: 100, maps: 930, reduces: 197 },
    JobSpec { id: 11, app: AppKind::Terasort, input_gb: 10, maps: 143, reduces: 190 },
    JobSpec { id: 12, app: AppKind::Terasort, input_gb: 20, maps: 199, reduces: 186 },
    JobSpec { id: 13, app: AppKind::Terasort, input_gb: 30, maps: 364, reduces: 131 },
    JobSpec { id: 14, app: AppKind::Terasort, input_gb: 40, maps: 320, reduces: 149 },
    JobSpec { id: 15, app: AppKind::Terasort, input_gb: 50, maps: 490, reduces: 189 },
    JobSpec { id: 16, app: AppKind::Terasort, input_gb: 60, maps: 480, reduces: 193 },
    JobSpec { id: 17, app: AppKind::Terasort, input_gb: 70, maps: 560, reduces: 178 },
    JobSpec { id: 18, app: AppKind::Terasort, input_gb: 80, maps: 648, reduces: 184 },
    JobSpec { id: 19, app: AppKind::Terasort, input_gb: 90, maps: 753, reduces: 171 },
    JobSpec { id: 20, app: AppKind::Terasort, input_gb: 100, maps: 824, reduces: 193 },
    JobSpec { id: 21, app: AppKind::Grep, input_gb: 10, maps: 87, reduces: 148 },
    JobSpec { id: 22, app: AppKind::Grep, input_gb: 20, maps: 163, reduces: 174 },
    JobSpec { id: 23, app: AppKind::Grep, input_gb: 30, maps: 188, reduces: 184 },
    JobSpec { id: 24, app: AppKind::Grep, input_gb: 40, maps: 203, reduces: 158 },
    JobSpec { id: 25, app: AppKind::Grep, input_gb: 50, maps: 285, reduces: 164 },
    JobSpec { id: 26, app: AppKind::Grep, input_gb: 60, maps: 389, reduces: 137 },
    JobSpec { id: 27, app: AppKind::Grep, input_gb: 70, maps: 578, reduces: 179 },
    JobSpec { id: 28, app: AppKind::Grep, input_gb: 80, maps: 634, reduces: 178 },
    JobSpec { id: 29, app: AppKind::Grep, input_gb: 90, maps: 815, reduces: 164 },
    JobSpec { id: 30, app: AppKind::Grep, input_gb: 100, maps: 893, reduces: 184 },
];

/// The jobs of one application's batch, in input-size order.
pub fn batch_of(app: AppKind) -> Vec<JobSpec> {
    TABLE2.iter().filter(|j| j.app == app).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_jobs_ten_per_app() {
        assert_eq!(TABLE2.len(), 30);
        for app in AppKind::ALL {
            assert_eq!(batch_of(app).len(), 10);
        }
    }

    #[test]
    fn ids_match_paper_order() {
        for (i, j) in TABLE2.iter().enumerate() {
            assert_eq!(j.id as usize, i + 1);
        }
    }

    #[test]
    fn spot_check_rows() {
        // Wordcount_10GB: 88 maps, 157 reduces.
        assert_eq!(TABLE2[0].maps, 88);
        assert_eq!(TABLE2[0].reduces, 157);
        // Terasort_100GB: 824 maps, 193 reduces.
        assert_eq!(TABLE2[19].maps, 824);
        assert_eq!(TABLE2[19].reduces, 193);
        // Grep_80GB: 634 maps, 178 reduces.
        assert_eq!(TABLE2[27].maps, 634);
        assert_eq!(TABLE2[27].reduces, 178);
    }

    #[test]
    fn block_sizes_sum_to_input_and_match_map_count() {
        for j in TABLE2 {
            let blocks = j.block_sizes();
            assert_eq!(blocks.len(), j.maps as usize, "{}", j.name());
            assert_eq!(blocks.iter().sum::<u64>(), j.input_bytes());
        }
    }

    #[test]
    fn block_sizes_are_plausible() {
        // Hadoop-style blocks: tens to a couple hundred MB.
        for j in TABLE2 {
            let avg = j.input_bytes() / j.maps as u64;
            assert!(
                (32 << 20..=256 << 20).contains(&avg),
                "{}: avg block {} MB",
                j.name(),
                avg >> 20
            );
        }
    }

    #[test]
    fn names() {
        assert_eq!(TABLE2[0].name(), "Wordcount_10GB");
        assert_eq!(TABLE2[29].name(), "Grep_100GB");
    }
}
