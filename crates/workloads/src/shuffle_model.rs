//! Per-application shuffle models.
//!
//! The simulator needs, for every map task, the intermediate bytes it will
//! emit for every reduce partition (`I_jf`). Figure 3 of the paper
//! characterizes the aggregate: "about 60 percent of jobs have more than
//! 50 GB shuffle data ... about 20 percent of jobs [have] less than 10 GB"
//! — the former are the shuffle-intensive Wordcount/TeraSort jobs, the
//! latter the map-intensive Grep jobs. The model:
//!
//! * **selectivity** — shuffle bytes per input byte, per application, with
//!   per-map lognormal-ish jitter (real wordcount output varies block to
//!   block; sort's does not);
//! * **partition skew** — how one map's output splits across the job's
//!   reduce partitions: uniform, or Zipf-weighted with a per-job random
//!   permutation (hot keys make hot partitions, the same partitions for
//!   every map of the job).

use crate::table2::AppKind;
use rand::rngs::SmallRng;
use rand::Rng;

/// How a map's output distributes over reduce partitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartitionSkew {
    /// Every partition receives an equal share.
    Uniform,
    /// Partition weights follow a Zipf law with the given exponent
    /// (0 = uniform; 1 ≈ classic word-frequency skew), permuted per job.
    Zipf(f64),
}

/// The shuffle model of one application.
#[derive(Clone, Copy, Debug)]
pub struct ShuffleModel {
    /// Mean shuffle bytes per input byte.
    pub selectivity: f64,
    /// Multiplicative jitter half-range on selectivity per map task
    /// (0.2 ⇒ each map's selectivity uniform in ±20 % of the mean).
    pub jitter: f64,
    /// Partition skew.
    pub skew: PartitionSkew,
    /// Final-output bytes per *shuffle* byte (reduce-side write volume).
    pub output_ratio: f64,
}

impl ShuffleModel {
    /// The calibrated model of an application (see module docs).
    pub fn for_app(app: AppKind) -> Self {
        match app {
            // Wordcount: (word, 1) pairs inflate text slightly; combiner
            // effects vary block to block. Hot words make hot partitions.
            AppKind::Wordcount => ShuffleModel {
                selectivity: 1.3,
                jitter: 0.25,
                skew: PartitionSkew::Zipf(0.6),
                output_ratio: 0.05,
            },
            // TeraSort moves every byte exactly once; range partitioning is
            // engineered to be uniform.
            AppKind::Terasort => ShuffleModel {
                selectivity: 1.0,
                jitter: 0.02,
                skew: PartitionSkew::Uniform,
                output_ratio: 1.0,
            },
            // Grep emits only matches: tiny, highly variable.
            AppKind::Grep => ShuffleModel {
                selectivity: 0.03,
                jitter: 0.8,
                skew: PartitionSkew::Zipf(0.8),
                output_ratio: 1.0,
            },
        }
    }

    /// Draw one map task's effective selectivity.
    pub fn sample_selectivity(&self, rng: &mut SmallRng) -> f64 {
        if self.jitter == 0.0 {
            return self.selectivity;
        }
        let f = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        (self.selectivity * f).max(0.0)
    }

    /// Partition weights for a job with `n_reduces` partitions; sums to 1.
    /// The permutation (which partitions are hot) is drawn from `rng`, so
    /// it is fixed per job but varies across jobs.
    pub fn partition_weights(&self, n_reduces: usize, rng: &mut SmallRng) -> Vec<f64> {
        assert!(n_reduces > 0);
        let mut w: Vec<f64> = match self.skew {
            PartitionSkew::Uniform => vec![1.0; n_reduces],
            PartitionSkew::Zipf(s) => (1..=n_reduces)
                .map(|r| 1.0 / (r as f64).powf(s))
                .collect(),
        };
        // Random permutation so "partition 0" is not always hottest.
        for i in (1..w.len()).rev() {
            let j = rng.gen_range(0..=i);
            w.swap(i, j);
        }
        let total: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= total);
        w
    }

    /// Expected total shuffle bytes for `input_bytes` of input.
    pub fn expected_shuffle_bytes(&self, input_bytes: u64) -> f64 {
        input_bytes as f64 * self.selectivity
    }
}

/// Empirical partition weights from a concrete key sample, using the *same*
/// [`pnats_core::Partitioner`] the execution runtimes (threaded engine, TCP
/// cluster) hash with. Where [`ShuffleModel::partition_weights`] draws a
/// synthetic skew, this measures the real one — calibrating the simulator's
/// `I_jf` split against actual intermediate keys. Weights are proportional
/// to the sampled key+value bytes landing in each partition and sum to 1;
/// an empty sample degenerates to uniform.
pub fn empirical_partition_weights<'a>(
    keys: impl IntoIterator<Item = &'a str>,
    n_reduces: usize,
    partitioner: pnats_core::Partitioner,
) -> Vec<f64> {
    assert!(n_reduces > 0);
    let mut bytes = vec![0u64; n_reduces];
    for key in keys {
        bytes[partitioner.of(key, n_reduces)] += key.len() as u64 + 1;
    }
    let total: u64 = bytes.iter().sum();
    if total == 0 {
        return vec![1.0 / n_reduces as f64; n_reduces];
    }
    bytes.iter().map(|b| *b as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::TABLE2;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    #[test]
    fn weights_sum_to_one() {
        let mut r = rng();
        for app in AppKind::ALL {
            let m = ShuffleModel::for_app(app);
            let w = m.partition_weights(157, &mut r);
            assert_eq!(w.len(), 157);
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{app}: {s}");
            assert!(w.iter().all(|x| *x > 0.0));
        }
    }

    #[test]
    fn zipf_weights_are_skewed_uniform_are_not() {
        let mut r = rng();
        let zipf = ShuffleModel::for_app(AppKind::Wordcount).partition_weights(100, &mut r);
        let max = zipf.iter().cloned().fold(0.0, f64::max);
        let min = zipf.iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 5.0, "zipf skew too weak: {max}/{min}");

        let uni = ShuffleModel::for_app(AppKind::Terasort).partition_weights(100, &mut r);
        let max = uni.iter().cloned().fold(0.0, f64::max);
        let min = uni.iter().cloned().fold(1.0, f64::min);
        assert!((max / min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_jitter_bounded() {
        let mut r = rng();
        let m = ShuffleModel::for_app(AppKind::Wordcount);
        for _ in 0..1000 {
            let s = m.sample_selectivity(&mut r);
            assert!(s >= m.selectivity * (1.0 - m.jitter) - 1e-9);
            assert!(s <= m.selectivity * (1.0 + m.jitter) + 1e-9);
        }
    }

    /// Figure 3's shape: the majority of jobs are shuffle-heavy (> 50 GB)
    /// and roughly a fifth are map-intensive (< 10 GB shuffle).
    #[test]
    fn figure3_shuffle_size_shape() {
        let shuffles: Vec<f64> = TABLE2
            .iter()
            .map(|j| {
                ShuffleModel::for_app(j.app).expected_shuffle_bytes(j.input_bytes())
                    / (1u64 << 30) as f64
            })
            .collect();
        let over_50 = shuffles.iter().filter(|s| **s > 50.0).count();
        let over_100 = shuffles.iter().filter(|s| **s > 100.0).count();
        let under_10 = shuffles.iter().filter(|s| **s < 10.0).count();
        // Paper: ~60% > 50 GB, ~20% > 100 GB, ~20% < 10 GB.
        assert!((10..=20).contains(&over_50), "jobs > 50GB shuffle: {over_50}");
        assert!((3..=9).contains(&over_100), "jobs > 100GB shuffle: {over_100}");
        assert!((5..=10).contains(&under_10), "jobs < 10GB shuffle: {under_10}");
    }

    #[test]
    fn empirical_weights_match_runtime_hash() {
        use pnats_core::{partition_of, Partitioner};
        let keys = ["the", "quick", "brown", "fox", "the", "the"];
        let n = 4;
        let w = empirical_partition_weights(keys, n, Partitioner::Hash);
        assert_eq!(w.len(), n);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The weight mass lands exactly where the runtimes hash the keys.
        let mut expect = vec![0u64; n];
        for k in keys {
            expect[partition_of(k, n)] += k.len() as u64 + 1;
        }
        let total: u64 = expect.iter().sum();
        for (i, e) in expect.iter().enumerate() {
            assert!((w[i] - *e as f64 / total as f64).abs() < 1e-12, "partition {i}");
        }
        // Empty sample degenerates to uniform.
        let uni = empirical_partition_weights([], 3, Partitioner::Hash);
        assert_eq!(uni, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn grep_is_map_intensive() {
        let g = ShuffleModel::for_app(AppKind::Grep);
        let gb100 = g.expected_shuffle_bytes(100 << 30) / (1u64 << 30) as f64;
        assert!(gb100 < 10.0, "grep 100GB shuffle should be tiny, got {gb100}");
    }
}
