//! Batch construction.
//!
//! The paper "created 3 batches of jobs ... 10 Wordcount jobs, 10 TeraSort
//! jobs, and 10 Grep jobs ... and run these 3 batches separately". A
//! [`Batch`] is the unit the simulator executes: job specs plus arrival
//! times (all zero for the paper's setup — each batch is submitted at
//! once).

use crate::table2::{batch_of, AppKind, JobSpec, TABLE2};
use rand::rngs::SmallRng;
use rand::Rng;

/// A set of jobs with submission times.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Batch label for reports (e.g. `"wordcount"`).
    pub name: String,
    /// Jobs with their arrival times in seconds.
    pub jobs: Vec<(JobSpec, f64)>,
}

impl Batch {
    /// Total map tasks across the batch.
    pub fn total_maps(&self) -> u64 {
        self.jobs.iter().map(|(j, _)| j.maps as u64).sum()
    }

    /// Total reduce tasks across the batch.
    pub fn total_reduces(&self) -> u64 {
        self.jobs.iter().map(|(j, _)| j.reduces as u64).sum()
    }

    /// Total input bytes across the batch.
    pub fn total_input_bytes(&self) -> u64 {
        self.jobs.iter().map(|(j, _)| j.input_bytes()).sum()
    }
}

/// The paper's batch for one application: its ten Table II jobs, all
/// submitted at t = 0.
pub fn table2_batch(app: AppKind) -> Batch {
    Batch {
        name: app.to_string().to_lowercase(),
        jobs: batch_of(app).into_iter().map(|j| (j, 0.0)).collect(),
    }
}

/// A scaled-down batch for fast tests: `take` jobs of `app`, inputs and
/// task counts divided by `divisor` (minimum one task of each kind).
pub fn scaled_batch(app: AppKind, take: usize, divisor: u32) -> Batch {
    assert!(divisor > 0);
    let jobs = batch_of(app)
        .into_iter()
        .take(take)
        .map(|j| {
            let scaled = JobSpec {
                id: j.id,
                app: j.app,
                input_gb: (j.input_gb / divisor).max(1),
                maps: (j.maps / divisor).max(1),
                reduces: (j.reduces / divisor).max(1),
            };
            (scaled, 0.0)
        })
        .collect();
    Batch { name: format!("{}-scaled", app.to_string().to_lowercase()), jobs }
}

/// A continuous mixed workload: `n_jobs` drawn round-robin from the full
/// Table II catalogue, arriving as a Poisson process with mean inter-arrival
/// `mean_gap_s`. Models the shared-cluster steady state the paper's
/// conclusion targets (instead of the all-at-once batches of §III).
pub fn poisson_mixed_batch(n_jobs: usize, mean_gap_s: f64, rng: &mut SmallRng) -> Batch {
    assert!(mean_gap_s > 0.0);
    let mut jobs = Vec::with_capacity(n_jobs);
    let mut t = 0.0;
    for i in 0..n_jobs {
        let spec = TABLE2[i % TABLE2.len()];
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -mean_gap_s * u.ln();
        jobs.push((spec, t));
    }
    Batch { name: format!("poisson-{n_jobs}"), jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_batches_have_ten_jobs_at_t0() {
        for app in AppKind::ALL {
            let b = table2_batch(app);
            assert_eq!(b.jobs.len(), 10);
            assert!(b.jobs.iter().all(|(_, t)| *t == 0.0));
        }
    }

    #[test]
    fn batch_totals() {
        let b = table2_batch(AppKind::Wordcount);
        assert_eq!(
            b.total_maps(),
            88 + 160 + 278 + 502 + 490 + 645 + 598 + 818 + 837 + 930
        );
        assert_eq!(b.total_input_bytes(), 550u64 << 30);
        assert!(b.total_reduces() > 1000);
    }

    #[test]
    fn poisson_batch_arrivals_increase() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        let b = poisson_mixed_batch(12, 30.0, &mut rng);
        assert_eq!(b.jobs.len(), 12);
        let times: Vec<f64> = b.jobs.iter().map(|(_, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        assert!(times[0] > 0.0);
        // Mean gap in the right ballpark (loose: 12 samples).
        let mean = times.last().unwrap() / 12.0;
        assert!((5.0..200.0).contains(&mean), "{mean}");
    }

    #[test]
    fn scaled_batch_shrinks() {
        let b = scaled_batch(AppKind::Terasort, 3, 10);
        assert_eq!(b.jobs.len(), 3);
        for (j, _) in &b.jobs {
            assert!(j.maps <= 50);
            assert!(j.reduces <= 20);
            assert!(j.maps >= 1 && j.reduces >= 1);
        }
    }
}
