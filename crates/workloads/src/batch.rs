//! Batch construction.
//!
//! The paper "created 3 batches of jobs ... 10 Wordcount jobs, 10 TeraSort
//! jobs, and 10 Grep jobs ... and run these 3 batches separately". A
//! [`Batch`] is the unit the simulator executes: job specs plus arrival
//! times (all zero for the paper's setup — each batch is submitted at
//! once).

use crate::table2::{batch_of, AppKind, JobSpec, TABLE2};
use rand::rngs::SmallRng;
use rand::Rng;

/// A set of jobs with submission times.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Batch label for reports (e.g. `"wordcount"`).
    pub name: String,
    /// Jobs with their arrival times in seconds.
    pub jobs: Vec<(JobSpec, f64)>,
}

impl Batch {
    /// Total map tasks across the batch.
    pub fn total_maps(&self) -> u64 {
        self.jobs.iter().map(|(j, _)| j.maps as u64).sum()
    }

    /// Total reduce tasks across the batch.
    pub fn total_reduces(&self) -> u64 {
        self.jobs.iter().map(|(j, _)| j.reduces as u64).sum()
    }

    /// Total input bytes across the batch.
    pub fn total_input_bytes(&self) -> u64 {
        self.jobs.iter().map(|(j, _)| j.input_bytes()).sum()
    }
}

/// The paper's batch for one application: its ten Table II jobs, all
/// submitted at t = 0.
pub fn table2_batch(app: AppKind) -> Batch {
    Batch {
        name: app.to_string().to_lowercase(),
        jobs: batch_of(app).into_iter().map(|j| (j, 0.0)).collect(),
    }
}

/// A scaled-down batch for fast tests: `take` jobs of `app`, inputs and
/// task counts divided by `divisor` (minimum one task of each kind).
pub fn scaled_batch(app: AppKind, take: usize, divisor: u32) -> Batch {
    assert!(divisor > 0);
    let jobs = batch_of(app)
        .into_iter()
        .take(take)
        .map(|j| {
            let scaled = JobSpec {
                id: j.id,
                app: j.app,
                input_gb: (j.input_gb / divisor).max(1),
                maps: (j.maps / divisor).max(1),
                reduces: (j.reduces / divisor).max(1),
            };
            (scaled, 0.0)
        })
        .collect();
    Batch { name: format!("{}-scaled", app.to_string().to_lowercase()), jobs }
}

/// A continuous mixed workload: `n_jobs` drawn round-robin from the full
/// Table II catalogue, arriving as a Poisson process with mean inter-arrival
/// `mean_gap_s`. Models the shared-cluster steady state the paper's
/// conclusion targets (instead of the all-at-once batches of §III).
pub fn poisson_mixed_batch(n_jobs: usize, mean_gap_s: f64, rng: &mut SmallRng) -> Batch {
    assert!(mean_gap_s > 0.0);
    let mut jobs = Vec::with_capacity(n_jobs);
    let mut t = 0.0;
    for i in 0..n_jobs {
        let spec = TABLE2[i % TABLE2.len()];
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -mean_gap_s * u.ln();
        jobs.push((spec, t));
    }
    Batch { name: format!("poisson-{n_jobs}"), jobs }
}

/// One tenant's open-loop arrival stream for [`multi_tenant_poisson`].
#[derive(Clone, Copy, Debug)]
pub struct TenantStream {
    /// Jobs this tenant submits over the run.
    pub n_jobs: usize,
    /// Mean Poisson inter-arrival gap, seconds.
    pub mean_gap_s: f64,
    /// Job-size divisor applied to the Table II specs (1 = full size);
    /// smoke runs use a larger divisor for the same arrival pattern on
    /// smaller jobs.
    pub divisor: u32,
}

/// Independent per-tenant Poisson job streams merged into one batch —
/// the multi-tenant service-mode workload. Stream `i` draws its jobs
/// round-robin from the Table II catalogue starting at offset `i` (so
/// tenants get different app mixes) with its own arrival clock; the
/// merged batch is sorted by arrival time, ties broken by tenant id.
///
/// Returns the batch plus the tenant id of each job, aligned with
/// `batch.jobs` — the tags a `TenancyConfig` carries. Deterministic for
/// a given `rng` state: streams draw their arrival sequences one stream
/// at a time, in tenant order.
pub fn multi_tenant_poisson(streams: &[TenantStream], rng: &mut SmallRng) -> (Batch, Vec<u32>) {
    assert!(!streams.is_empty());
    let mut tagged: Vec<(f64, u32, JobSpec)> = Vec::new();
    for (tenant, s) in streams.iter().enumerate() {
        assert!(s.mean_gap_s > 0.0);
        assert!(s.divisor > 0);
        let mut t = 0.0;
        for i in 0..s.n_jobs {
            let spec = TABLE2[(tenant + i) % TABLE2.len()];
            let scaled = JobSpec {
                id: spec.id,
                app: spec.app,
                input_gb: (spec.input_gb / s.divisor).max(1),
                maps: (spec.maps / s.divisor).max(1),
                reduces: (spec.reduces / s.divisor).max(1),
            };
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -s.mean_gap_s * u.ln();
            tagged.push((t, tenant as u32, scaled));
        }
    }
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let tenants = tagged.iter().map(|(_, tn, _)| *tn).collect();
    let jobs = tagged.into_iter().map(|(t, _, spec)| (spec, t)).collect();
    (Batch { name: format!("tenants-{}", streams.len()), jobs }, tenants)
}

/// A trace-driven open-loop workload: explicit `(tenant, catalogue index,
/// arrival time)` events, e.g. replayed from a production submission log.
/// The catalogue index selects a Table II spec (modulo the catalogue
/// size). Events are sorted by time (ties broken by tenant, then input
/// order); arrival times must be non-negative.
pub fn trace_driven_batch(name: &str, events: &[(u32, usize, f64)]) -> (Batch, Vec<u32>) {
    assert!(events.iter().all(|(_, _, t)| *t >= 0.0), "arrival times must be >= 0");
    let mut ev: Vec<(usize, &(u32, usize, f64))> = events.iter().enumerate().collect();
    ev.sort_by(|(ia, (ta_t, _, ta)), (ib, (tb_t, _, tb))| {
        ta.total_cmp(tb).then(ta_t.cmp(tb_t)).then(ia.cmp(ib))
    });
    let tenants = ev.iter().map(|(_, (tn, _, _))| *tn).collect();
    let jobs = ev
        .into_iter()
        .map(|(_, (_, idx, t))| (TABLE2[idx % TABLE2.len()], *t))
        .collect();
    (Batch { name: name.to_string(), jobs }, tenants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_batches_have_ten_jobs_at_t0() {
        for app in AppKind::ALL {
            let b = table2_batch(app);
            assert_eq!(b.jobs.len(), 10);
            assert!(b.jobs.iter().all(|(_, t)| *t == 0.0));
        }
    }

    #[test]
    fn batch_totals() {
        let b = table2_batch(AppKind::Wordcount);
        assert_eq!(
            b.total_maps(),
            88 + 160 + 278 + 502 + 490 + 645 + 598 + 818 + 837 + 930
        );
        assert_eq!(b.total_input_bytes(), 550u64 << 30);
        assert!(b.total_reduces() > 1000);
    }

    #[test]
    fn poisson_batch_arrivals_increase() {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        let b = poisson_mixed_batch(12, 30.0, &mut rng);
        assert_eq!(b.jobs.len(), 12);
        let times: Vec<f64> = b.jobs.iter().map(|(_, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        assert!(times[0] > 0.0);
        // Mean gap in the right ballpark (loose: 12 samples).
        let mean = times.last().unwrap() / 12.0;
        assert!((5.0..200.0).contains(&mean), "{mean}");
    }

    #[test]
    fn multi_tenant_poisson_merges_sorted_and_tagged() {
        use rand::SeedableRng;
        let streams = [
            TenantStream { n_jobs: 5, mean_gap_s: 30.0, divisor: 1 },
            TenantStream { n_jobs: 3, mean_gap_s: 60.0, divisor: 10 },
        ];
        let mut rng = SmallRng::seed_from_u64(9);
        let (b, tags) = multi_tenant_poisson(&streams, &mut rng);
        assert_eq!(b.jobs.len(), 8);
        assert_eq!(tags.len(), 8);
        assert_eq!(tags.iter().filter(|&&t| t == 0).count(), 5);
        assert_eq!(tags.iter().filter(|&&t| t == 1).count(), 3);
        let times: Vec<f64> = b.jobs.iter().map(|(_, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0]), "sorted by arrival");
        // Tenant 1's jobs are scaled down 10×.
        for ((j, _), tn) in b.jobs.iter().zip(&tags) {
            if *tn == 1 {
                assert!(j.maps <= 93, "scaled: {}", j.maps);
            }
        }
        // Deterministic replay.
        let mut rng2 = SmallRng::seed_from_u64(9);
        let (b2, tags2) = multi_tenant_poisson(&streams, &mut rng2);
        assert_eq!(tags, tags2);
        let t1: Vec<u64> = b.jobs.iter().map(|(_, t)| t.to_bits()).collect();
        let t2: Vec<u64> = b2.jobs.iter().map(|(_, t)| t.to_bits()).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn trace_driven_batch_replays_in_time_order() {
        let events = [(1u32, 0usize, 50.0), (0u32, 3usize, 10.0), (0u32, 5usize, 50.0)];
        let (b, tags) = trace_driven_batch("replay", &events);
        assert_eq!(b.name, "replay");
        let times: Vec<f64> = b.jobs.iter().map(|(_, t)| *t).collect();
        assert_eq!(times, vec![10.0, 50.0, 50.0]);
        // Tie at t=50 broken by tenant id.
        assert_eq!(tags, vec![0, 0, 1]);
        assert_eq!(b.jobs[0].0.id, TABLE2[3].id);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn trace_driven_rejects_negative_times() {
        trace_driven_batch("bad", &[(0, 0, -1.0)]);
    }

    #[test]
    fn scaled_batch_shrinks() {
        let b = scaled_batch(AppKind::Terasort, 3, 10);
        assert_eq!(b.jobs.len(), 3);
        for (j, _) in &b.jobs {
            assert!(j.maps <= 50);
            assert!(j.reduces <= 20);
            assert!(j.maps >= 1 && j.reduces >= 1);
        }
    }
}
