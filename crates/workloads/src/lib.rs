#![warn(missing_docs)]
//! # pnats-workloads — the paper's evaluation workloads
//!
//! §III of the paper runs three batches of ten jobs each — Wordcount,
//! TeraSort and Grep, input sizes 10–100 GB — with the exact per-job map
//! and reduce task counts published in Table II. This crate provides:
//!
//! * [`table2`] — that catalogue, verbatim, plus derived block sizes;
//! * [`shuffle_model`] — per-application shuffle selectivity and partition
//!   skew (calibrated so the shuffle-size CDF matches Figure 3's shape:
//!   most WC/TS jobs are shuffle-heavy, Grep jobs are map-intensive);
//! * [`datagen`] — real synthetic input data (Zipf text standing in for
//!   BigDataBench's Wikipedia corpus, Teragen-style records) for the
//!   threaded engine's examples and tests;
//! * [`batch`] — batch builders, including scaled-down variants for tests.

pub mod batch;
pub mod datagen;
pub mod shuffle_model;
pub mod table2;

pub use batch::{
    multi_tenant_poisson, poisson_mixed_batch, scaled_batch, table2_batch, trace_driven_batch,
    Batch, TenantStream,
};
pub use shuffle_model::{empirical_partition_weights, PartitionSkew, ShuffleModel};
pub use table2::{AppKind, JobSpec, TABLE2};
