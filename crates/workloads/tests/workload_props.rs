//! Property tests of workload generation: weights normalize, splits
//! conserve bytes, generators respect their targets.

use pnats_workloads::datagen::{teragen_records, zipf_text, Zipf};
use pnats_workloads::{AppKind, ShuffleModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn partition_weights_always_normalized(
        n_reduces in 1usize..400,
        seed in 0u64..5000,
        app_idx in 0usize..3,
    ) {
        let m = ShuffleModel::for_app(AppKind::ALL[app_idx]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = m.partition_weights(n_reduces, &mut rng);
        prop_assert_eq!(w.len(), n_reduces);
        let total: f64 = w.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|x| *x > 0.0 && *x <= 1.0));
    }

    #[test]
    fn selectivity_samples_stay_in_band(seed in 0u64..5000, app_idx in 0usize..3) {
        let m = ShuffleModel::for_app(AppKind::ALL[app_idx]);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let s = m.sample_selectivity(&mut rng);
            prop_assert!(s >= 0.0);
            prop_assert!(s <= m.selectivity * (1.0 + m.jitter) + 1e-9);
        }
    }

    #[test]
    fn zipf_sampler_in_range(n in 1usize..2000, s in 0.0f64..3.0, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn zipf_text_size_and_charset(bytes in 64usize..20_000, seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = zipf_text(bytes, 100, 1.0, &mut rng);
        prop_assert!(t.len() >= bytes);
        prop_assert!(t.len() < bytes + 64, "overshoot bounded by one word+newline");
        prop_assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\n'));
    }

    #[test]
    fn teragen_record_count_and_shape(n in 1usize..500, seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = teragen_records(n, &mut rng);
        let lines: Vec<&str> = t.lines().collect();
        prop_assert_eq!(lines.len(), n);
        for l in lines {
            prop_assert_eq!(l.len(), 98);
            prop_assert!(l[..10].bytes().all(|b| b.is_ascii_uppercase() || b.is_ascii_digit()));
        }
    }
}
