//! The transfer manager: byte-accurate tracking of fluid flows.
//!
//! [`pnats_net::FlowNetwork`] answers "what rate does each flow get *right
//! now*"; this layer integrates those rates over time. Every mutation
//! (start/finish of any flow) first *advances* all in-flight transfers by
//! the elapsed interval under the old rates, then recomputes rates and
//! predicts the next completion. The runner schedules a wake-up event for
//! that prediction, tagged with a version number — any later mutation bumps
//! the version, turning stale wake-ups into no-ops.

use pnats_net::topology::Vertex;
use pnats_net::{FlowId, FlowNetwork, LinkId, NodeId, RoutingTable, Topology};

/// What a transfer was carrying (returned to the runner on completion).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferTag {
    /// A remote map-input fetch.
    MapFetch {
        /// Job index.
        job: usize,
        /// Map index within the job.
        map: usize,
    },
    /// A shuffle segment feeding a reduce task.
    Shuffle {
        /// Job index.
        job: usize,
        /// Reduce index within the job.
        reduce: usize,
    },
    /// Configured background traffic (never completes on its own).
    Background {
        /// Index into the config's background list.
        idx: usize,
    },
}

#[derive(Clone, Debug)]
struct Active {
    flow: FlowId,
    tag: TransferTag,
    src: NodeId,
    dst: NodeId,
    remaining: f64,
    total: f64,
    started: f64,
}

/// A completed transfer, as reported to the runner.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// What finished.
    pub tag: TransferTag,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bytes moved.
    pub bytes: f64,
    /// Average achieved rate (bytes/sec) — fed to the rate monitor.
    pub avg_rate: f64,
}

/// Byte-tracked fluid transfers over a routed topology.
pub struct Transfers {
    fx: FlowNetwork,
    routes: RoutingTable,
    active: Vec<Active>,
    last_advance: f64,
    version: u64,
    /// Per-node access links (for fault-injected NIC degradation).
    node_links: Vec<Vec<LinkId>>,
    /// Nominal capacity of every link, to restore after degradation.
    base_caps: Vec<f64>,
}

/// Transfers at or below this many remaining bytes count as complete
/// (absorbs float drift; real transfers are MBs to GBs).
const DONE_EPSILON: f64 = 1.0;

impl Transfers {
    /// A manager over `topo`'s links.
    pub fn new(topo: &Topology) -> Self {
        let node_links = topo
            .nodes()
            .map(|n| topo.incident(Vertex::Node(n)).iter().map(|(l, _)| *l).collect())
            .collect();
        Self {
            fx: FlowNetwork::new(topo),
            routes: RoutingTable::new(topo),
            active: Vec::new(),
            last_advance: 0.0,
            version: 0,
            node_links,
            base_caps: topo.links().iter().map(|l| l.capacity_bps).collect(),
        }
    }

    /// Current version; wake-ups carrying an older version are stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of in-flight transfers (including background).
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Integrate all in-flight transfers up to `now` under the rates that
    /// held since the last mutation.
    fn advance(&mut self, now: f64) {
        let dt = now - self.last_advance;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 && !self.active.is_empty() {
            // Collect rates first (recomputes lazily under old flow set).
            let rates: Vec<f64> = {
                let fx = &mut self.fx;
                self.active.iter().map(|a| fx.rate(a.flow)).collect()
            };
            for (a, r) in self.active.iter_mut().zip(rates) {
                if r.is_finite() {
                    a.remaining -= r * dt;
                }
                // Infinite-rate (local) transfers are completed at start and
                // never reach here.
            }
        }
        self.last_advance = now;
    }

    /// Start a transfer of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Local transfers (`src == dst`) complete immediately and are returned
    /// as `Some(completion)`; remote ones return `None` and will surface
    /// through [`Transfers::reap`].
    pub fn start(
        &mut self,
        now: f64,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: TransferTag,
    ) -> Option<Completion> {
        assert!(bytes >= 0.0);
        if src == dst || bytes <= DONE_EPSILON {
            return Some(Completion { tag, src, dst, bytes, avg_rate: f64::INFINITY });
        }
        self.advance(now);
        let flow = self.fx.add_flow(src, dst, self.routes.route(src, dst));
        self.active.push(Active {
            flow,
            tag,
            src,
            dst,
            remaining: bytes,
            total: bytes,
            started: now,
        });
        self.version += 1;
        None
    }

    /// Remove the (unique) active transfer with `tag`, without completing
    /// it. Used to stop background flows. No-op if absent.
    pub fn cancel(&mut self, now: f64, tag: TransferTag) {
        self.advance(now);
        if let Some(pos) = self.active.iter().position(|a| a.tag == tag) {
            let a = self.active.swap_remove(pos);
            self.fx.remove_flow(a.flow);
            self.version += 1;
        }
    }

    /// Cancel every non-background transfer that touches `node` (as source
    /// or destination) — the node just crashed, so in-flight fetches and
    /// shuffle segments die with it. Returns the `(tag, src, dst)` of each
    /// cancelled transfer so the runner can fix task state. Background flows
    /// are left alone: they model co-tenant traffic, not this node's work.
    pub fn cancel_involving(&mut self, now: f64, node: NodeId) -> Vec<(TransferTag, NodeId, NodeId)> {
        self.advance(now);
        let mut cancelled = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            let a = &self.active[i];
            let involved = (a.src == node || a.dst == node)
                && !matches!(a.tag, TransferTag::Background { .. });
            if involved {
                let a = self.active.swap_remove(i);
                self.fx.remove_flow(a.flow);
                cancelled.push((a.tag, a.src, a.dst));
            } else {
                i += 1;
            }
        }
        if !cancelled.is_empty() {
            self.version += 1;
        }
        cancelled
    }

    /// Cancel every transfer belonging to job `job` (the job failed; its
    /// fetches and shuffles stop consuming bandwidth). Returns the cancelled
    /// tags.
    pub fn cancel_job(&mut self, now: f64, job: usize) -> Vec<TransferTag> {
        self.advance(now);
        let mut cancelled = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            let owned = match self.active[i].tag {
                TransferTag::MapFetch { job: j, .. } | TransferTag::Shuffle { job: j, .. } => {
                    j == job
                }
                TransferTag::Background { .. } => false,
            };
            if owned {
                let a = self.active.swap_remove(i);
                self.fx.remove_flow(a.flow);
                cancelled.push(a.tag);
            } else {
                i += 1;
            }
        }
        if !cancelled.is_empty() {
            self.version += 1;
        }
        cancelled
    }

    /// Scale `node`'s access link(s) to `scale` × nominal capacity
    /// (link-degradation fault windows; `1.0` restores). Active flows
    /// re-share bandwidth from `now` on.
    pub fn scale_node_links(&mut self, now: f64, node: NodeId, scale: f64) {
        assert!(scale > 0.0, "link scale must stay positive");
        self.advance(now);
        for &l in &self.node_links[node.idx()] {
            self.fx.set_capacity(l, self.base_caps[l.idx()] * scale);
        }
        self.version += 1;
    }

    /// Advance to `now` and remove every transfer that has finished,
    /// returning their completions (possibly empty — wake-ups may race).
    pub fn reap(&mut self, now: f64) -> Vec<Completion> {
        self.advance(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].remaining <= DONE_EPSILON {
                let a = self.active.swap_remove(i);
                self.fx.remove_flow(a.flow);
                let dt = (now - a.started).max(1e-9);
                done.push(Completion {
                    tag: a.tag,
                    src: a.src,
                    dst: a.dst,
                    bytes: a.total,
                    avg_rate: a.total / dt,
                });
            } else {
                i += 1;
            }
        }
        if !done.is_empty() {
            self.version += 1;
        }
        done
    }

    /// Predicted absolute time of the next completion under current rates,
    /// with the version to stamp on the wake-up event. `None` when nothing
    /// is in flight (or only unbounded background flows are).
    pub fn next_wake(&mut self) -> Option<(f64, u64)> {
        if self.active.is_empty() {
            return None;
        }
        let now = self.last_advance;
        let mut best: Option<f64> = None;
        let rates: Vec<f64> = {
            let fx = &mut self.fx;
            self.active.iter().map(|a| fx.rate(a.flow)).collect()
        };
        for (a, r) in self.active.iter().zip(rates) {
            if !a.remaining.is_finite() {
                continue; // background flows never complete
            }
            let dt = if r > 0.0 { (a.remaining / r).max(0.0) } else { f64::INFINITY };
            if dt.is_finite() {
                best = Some(best.map_or(dt, |b: f64| b.min(dt)));
            }
        }
        best.map(|dt| (now + dt.max(1e-9), self.version))
    }

    /// Current rate of the transfer with `tag` (diagnostics/tests).
    pub fn rate_of(&mut self, tag: TransferTag) -> Option<f64> {
        let flow = self.active.iter().find(|a| a.tag == tag)?.flow;
        Some(self.fx.rate(flow))
    }
}

#[derive(Clone, Debug)]
struct NomActive {
    tag: TransferTag,
    src: NodeId,
    dst: NodeId,
    bytes: f64,
    rate: f64,
    started: f64,
    stamp: u64,
}

#[derive(Clone, Copy, Debug)]
struct NomEntry {
    finish: f64,
    stamp: u64,
    slot: usize,
}

impl PartialEq for NomEntry {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.stamp == other.stamp
    }
}
impl Eq for NomEntry {}
impl Ord for NomEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: min-heap on (finish, stamp).
        other
            .finish
            .total_cmp(&self.finish)
            .then_with(|| other.stamp.cmp(&self.stamp))
    }
}
impl PartialOrd for NomEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Nominal-rate transfer engine: every transfer moves at the NIC's nominal
/// rate (scaled by any active degradation on its endpoints, frozen at
/// start), with **no contention** between flows.
///
/// Starting or finishing a transfer is O(log active) heap work instead of
/// the fluid model's global max-min recomputation — the difference between
/// simulating 1M tasks in seconds and in hours. The price is fidelity:
/// concurrent transfers no longer slow each other down, so this engine is
/// for scale/throughput benchmarking ([`crate::SimConfig::fluid_network`]
/// `= false`), never for the paper's experiments.
///
/// The wake protocol (versions, stale wake-ups, [`NominalTransfers::reap`])
/// is identical to [`Transfers`], so the runner drives both through one
/// code path.
pub struct NominalTransfers {
    nic_bps: f64,
    /// Per-node NIC scale (link-degradation windows), applied to transfers
    /// *started* while in effect.
    node_scale: Vec<f64>,
    slots: Vec<Option<NomActive>>,
    free: Vec<usize>,
    heap: std::collections::BinaryHeap<NomEntry>,
    n_active: usize,
    stamp: u64,
    version: u64,
}

impl NominalTransfers {
    /// An engine over `n_nodes` nodes with `nic_bps` nominal NICs.
    pub fn new(n_nodes: usize, nic_bps: f64) -> Self {
        assert!(nic_bps > 0.0);
        Self {
            nic_bps,
            node_scale: vec![1.0; n_nodes],
            slots: Vec::new(),
            free: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
            n_active: 0,
            stamp: 0,
            version: 0,
        }
    }

    /// Current version; wake-ups carrying an older version are stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of in-flight transfers (including background).
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// Start a transfer; local/tiny transfers complete inline exactly like
    /// the fluid engine.
    pub fn start(
        &mut self,
        now: f64,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: TransferTag,
    ) -> Option<Completion> {
        assert!(bytes >= 0.0);
        if src == dst || bytes <= DONE_EPSILON {
            return Some(Completion { tag, src, dst, bytes, avg_rate: f64::INFINITY });
        }
        let scale = self.node_scale[src.idx()].min(self.node_scale[dst.idx()]);
        let rate = self.nic_bps * scale;
        let finish = if bytes.is_finite() { now + bytes / rate } else { f64::INFINITY };
        self.stamp += 1;
        let a = NomActive { tag, src, dst, bytes, rate, started: now, stamp: self.stamp };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(a);
                s
            }
            None => {
                self.slots.push(Some(a));
                self.slots.len() - 1
            }
        };
        if finish.is_finite() {
            self.heap.push(NomEntry { finish, stamp: self.stamp, slot });
        }
        self.n_active += 1;
        self.version += 1;
        None
    }

    fn release(&mut self, slot: usize) -> NomActive {
        let a = self.slots[slot].take().expect("slot already free");
        self.free.push(slot);
        self.n_active -= 1;
        a
    }

    /// Remove the (unique) active transfer with `tag` without completing it.
    pub fn cancel(&mut self, _now: f64, tag: TransferTag) {
        let found = self
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|a| a.tag == tag));
        if let Some(slot) = found {
            self.release(slot);
            self.version += 1;
        }
    }

    /// Cancel every non-background transfer touching `node`; returns their
    /// `(tag, src, dst)`.
    pub fn cancel_involving(
        &mut self,
        _now: f64,
        node: NodeId,
    ) -> Vec<(TransferTag, NodeId, NodeId)> {
        let mut cancelled = Vec::new();
        for slot in 0..self.slots.len() {
            let hit = self.slots[slot].as_ref().is_some_and(|a| {
                (a.src == node || a.dst == node)
                    && !matches!(a.tag, TransferTag::Background { .. })
            });
            if hit {
                let a = self.release(slot);
                cancelled.push((a.tag, a.src, a.dst));
            }
        }
        if !cancelled.is_empty() {
            self.version += 1;
        }
        cancelled
    }

    /// Cancel every transfer belonging to `job`; returns the cancelled tags.
    pub fn cancel_job(&mut self, _now: f64, job: usize) -> Vec<TransferTag> {
        let mut cancelled = Vec::new();
        for slot in 0..self.slots.len() {
            let hit = self.slots[slot].as_ref().is_some_and(|a| match a.tag {
                TransferTag::MapFetch { job: j, .. } | TransferTag::Shuffle { job: j, .. } => {
                    j == job
                }
                TransferTag::Background { .. } => false,
            });
            if hit {
                cancelled.push(self.release(slot).tag);
            }
        }
        if !cancelled.is_empty() {
            self.version += 1;
        }
        cancelled
    }

    /// Record a NIC-degradation scale for `node`. Applies to transfers
    /// started from now on; in-flight transfers keep their frozen rate (an
    /// accepted approximation of this benchmark-only engine).
    pub fn scale_node_links(&mut self, _now: f64, node: NodeId, scale: f64) {
        assert!(scale > 0.0, "link scale must stay positive");
        self.node_scale[node.idx()] = scale;
        self.version += 1;
    }

    /// Remove every transfer whose predicted finish has passed, returning
    /// their completions.
    pub fn reap(&mut self, now: f64) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(top) = self.heap.peek() {
            let live = self.slots[top.slot]
                .as_ref()
                .is_some_and(|a| a.stamp == top.stamp);
            if !live {
                self.heap.pop();
                continue;
            }
            if top.finish > now {
                break;
            }
            let slot = top.slot;
            self.heap.pop();
            let a = self.release(slot);
            let dt = (now - a.started).max(1e-9);
            done.push(Completion {
                tag: a.tag,
                src: a.src,
                dst: a.dst,
                bytes: a.bytes,
                avg_rate: a.bytes / dt,
            });
        }
        if !done.is_empty() {
            self.version += 1;
        }
        done
    }

    /// Predicted absolute time of the next completion plus the version to
    /// stamp on the wake-up. `None` when nothing bounded is in flight.
    pub fn next_wake(&mut self) -> Option<(f64, u64)> {
        while let Some(top) = self.heap.peek() {
            let live = self.slots[top.slot]
                .as_ref()
                .is_some_and(|a| a.stamp == top.stamp);
            if live {
                return Some((top.finish, self.version));
            }
            self.heap.pop();
        }
        None
    }

    /// Current rate of the transfer with `tag` (diagnostics/tests).
    pub fn rate_of(&mut self, tag: TransferTag) -> Option<f64> {
        self.slots
            .iter()
            .flatten()
            .find(|a| a.tag == tag)
            .map(|a| a.rate)
    }
}

/// The transfer engine the runner drives: fluid (contention-accurate) or
/// nominal (contention-free, for scale benchmarking). One enum instead of a
/// trait object so the hot calls stay statically dispatched.
pub enum TransferEngine {
    /// Max-min fair fluid flows ([`Transfers`]).
    Fluid(Transfers),
    /// Fixed nominal rates ([`NominalTransfers`]).
    Nominal(NominalTransfers),
}

impl TransferEngine {
    /// Current version; wake-ups carrying an older version are stale.
    pub fn version(&self) -> u64 {
        match self {
            Self::Fluid(t) => t.version(),
            Self::Nominal(t) => t.version(),
        }
    }

    /// Number of in-flight transfers (including background).
    pub fn n_active(&self) -> usize {
        match self {
            Self::Fluid(t) => t.n_active(),
            Self::Nominal(t) => t.n_active(),
        }
    }

    /// Start a transfer. See [`Transfers::start`].
    pub fn start(
        &mut self,
        now: f64,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: TransferTag,
    ) -> Option<Completion> {
        match self {
            Self::Fluid(t) => t.start(now, src, dst, bytes, tag),
            Self::Nominal(t) => t.start(now, src, dst, bytes, tag),
        }
    }

    /// Cancel by tag. See [`Transfers::cancel`].
    pub fn cancel(&mut self, now: f64, tag: TransferTag) {
        match self {
            Self::Fluid(t) => t.cancel(now, tag),
            Self::Nominal(t) => t.cancel(now, tag),
        }
    }

    /// Cancel everything touching a crashed node. See
    /// [`Transfers::cancel_involving`].
    pub fn cancel_involving(
        &mut self,
        now: f64,
        node: NodeId,
    ) -> Vec<(TransferTag, NodeId, NodeId)> {
        match self {
            Self::Fluid(t) => t.cancel_involving(now, node),
            Self::Nominal(t) => t.cancel_involving(now, node),
        }
    }

    /// Cancel a failed job's transfers. See [`Transfers::cancel_job`].
    pub fn cancel_job(&mut self, now: f64, job: usize) -> Vec<TransferTag> {
        match self {
            Self::Fluid(t) => t.cancel_job(now, job),
            Self::Nominal(t) => t.cancel_job(now, job),
        }
    }

    /// Scale a node's access links. See [`Transfers::scale_node_links`].
    pub fn scale_node_links(&mut self, now: f64, node: NodeId, scale: f64) {
        match self {
            Self::Fluid(t) => t.scale_node_links(now, node, scale),
            Self::Nominal(t) => t.scale_node_links(now, node, scale),
        }
    }

    /// Collect finished transfers. See [`Transfers::reap`].
    pub fn reap(&mut self, now: f64) -> Vec<Completion> {
        match self {
            Self::Fluid(t) => t.reap(now),
            Self::Nominal(t) => t.reap(now),
        }
    }

    /// Next predicted completion. See [`Transfers::next_wake`].
    pub fn next_wake(&mut self) -> Option<(f64, u64)> {
        match self {
            Self::Fluid(t) => t.next_wake(),
            Self::Nominal(t) => t.next_wake(),
        }
    }

    /// Current rate of a transfer. See [`Transfers::rate_of`].
    pub fn rate_of(&mut self, tag: TransferTag) -> Option<f64> {
        match self {
            Self::Fluid(t) => t.rate_of(tag),
            Self::Nominal(t) => t.rate_of(tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9 / 8.0; // 1 Gbps in bytes/sec

    fn topo3() -> Topology {
        Topology::single_rack(3, GB)
    }

    const TAG_A: TransferTag = TransferTag::MapFetch { job: 0, map: 0 };
    const TAG_B: TransferTag = TransferTag::MapFetch { job: 0, map: 1 };

    #[test]
    fn local_transfer_completes_inline() {
        let mut tr = Transfers::new(&topo3());
        let c = tr.start(0.0, NodeId(1), NodeId(1), 1e9, TAG_A);
        assert!(c.is_some());
        assert_eq!(tr.n_active(), 0);
    }

    #[test]
    fn single_transfer_finishes_at_bytes_over_rate() {
        let mut tr = Transfers::new(&topo3());
        assert!(tr.start(0.0, NodeId(0), NodeId(1), GB, TAG_A).is_none());
        let (t, v) = tr.next_wake().unwrap();
        assert!((t - 1.0).abs() < 1e-6, "1 GB over 1 Gbps NIC path = 1 s, got {t}");
        let done = tr.reap(t);
        assert_eq!(done.len(), 1);
        assert!((done[0].avg_rate - GB).abs() < 1.0);
        assert_eq!(v, tr.version() - 1, "reap bumps version");
    }

    #[test]
    fn contention_slows_completion() {
        let mut tr = Transfers::new(&topo3());
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        tr.start(0.0, NodeId(2), NodeId(0), GB, TAG_B);
        // Sharing node 0's NIC: each gets GB/2, finishing at t = 2.
        let (t, _) = tr.next_wake().unwrap();
        assert!((t - 2.0).abs() < 1e-6, "{t}");
        let done = tr.reap(t);
        assert_eq!(done.len(), 2, "both finish simultaneously");
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut tr = Transfers::new(&topo3());
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A); // 1 GB
        tr.start(0.0, NodeId(2), NodeId(0), GB / 4.0, TAG_B); // 0.25 GB
        // Shared at GB/2 each: B finishes at 0.5 with A at 0.75 GB left;
        // A then runs at full GB: done at 0.5 + 0.75 = 1.25.
        let (t1, _) = tr.next_wake().unwrap();
        assert!((t1 - 0.5).abs() < 1e-6, "{t1}");
        let d1 = tr.reap(t1);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].tag, TAG_B);
        let (t2, _) = tr.next_wake().unwrap();
        assert!((t2 - 1.25).abs() < 1e-6, "{t2}");
        assert_eq!(tr.reap(t2).len(), 1);
        assert_eq!(tr.n_active(), 0);
    }

    #[test]
    fn stale_wake_reaps_nothing() {
        let mut tr = Transfers::new(&topo3());
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        let (_, v1) = tr.next_wake().unwrap();
        // A new flow arrives before the wake fires: version moves on.
        tr.start(0.1, NodeId(2), NodeId(0), GB, TAG_B);
        assert!(tr.version() > v1);
        // Reaping at the (now wrong) old completion time finds nothing done.
        assert!(tr.reap(1.0).is_empty());
        assert_eq!(tr.n_active(), 2);
    }

    #[test]
    fn background_flows_never_wake() {
        let mut tr = Transfers::new(&topo3());
        let bg = TransferTag::Background { idx: 0 };
        tr.start(0.0, NodeId(1), NodeId(2), f64::INFINITY, bg);
        assert_eq!(tr.n_active(), 1);
        assert!(tr.next_wake().is_none());
        // But they do consume bandwidth.
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        let r = tr.rate_of(TAG_A).unwrap();
        assert!((r - GB / 2.0).abs() < 1e-6, "shares node1 NIC with background: {r}");
        tr.cancel(0.5, bg);
        let r = tr.rate_of(TAG_A).unwrap();
        assert!((r - GB).abs() < 1e-6, "full rate after cancel: {r}");
    }

    #[test]
    fn cancel_involving_removes_only_the_dead_nodes_transfers() {
        let mut tr = Transfers::new(&topo3());
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        tr.start(0.0, NodeId(2), NodeId(1), GB, TAG_B);
        let bg = TransferTag::Background { idx: 0 };
        tr.start(0.0, NodeId(1), NodeId(2), f64::INFINITY, bg);
        let gone = tr.cancel_involving(0.1, NodeId(1));
        // Both task transfers touch node 1; the background flow survives.
        assert_eq!(gone.len(), 2);
        assert!(gone.iter().all(|(t, _, _)| *t == TAG_A || *t == TAG_B));
        assert_eq!(tr.n_active(), 1);
        assert!(tr.rate_of(bg).is_some());
    }

    #[test]
    fn cancel_job_drops_that_jobs_transfers() {
        let mut tr = Transfers::new(&topo3());
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A); // job 0
        let other = TransferTag::Shuffle { job: 1, reduce: 0 };
        tr.start(0.0, NodeId(2), NodeId(0), GB, other);
        let gone = tr.cancel_job(0.1, 0);
        assert_eq!(gone, vec![TAG_A]);
        assert_eq!(tr.n_active(), 1);
    }

    #[test]
    fn nic_degradation_slows_and_restore_recovers() {
        let mut tr = Transfers::new(&topo3());
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        tr.scale_node_links(0.0, NodeId(0), 0.25);
        let r = tr.rate_of(TAG_A).unwrap();
        assert!((r - GB / 4.0).abs() < 1e-6, "degraded dst NIC caps the flow: {r}");
        tr.scale_node_links(0.5, NodeId(0), 1.0);
        let r = tr.rate_of(TAG_A).unwrap();
        assert!((r - GB).abs() < 1e-6, "restored: {r}");
    }

    #[test]
    fn zero_byte_transfer_completes_inline() {
        let mut tr = Transfers::new(&topo3());
        let c = tr.start(0.0, NodeId(0), NodeId(1), 0.0, TAG_A);
        assert!(c.is_some());
    }

    // ---- nominal engine ----

    #[test]
    fn nominal_finishes_at_bytes_over_nic_rate() {
        let mut tr = NominalTransfers::new(3, GB);
        assert!(tr.start(0.0, NodeId(0), NodeId(1), GB, TAG_A).is_none());
        let (t, v) = tr.next_wake().unwrap();
        assert!((t - 1.0).abs() < 1e-9, "{t}");
        let done = tr.reap(t);
        assert_eq!(done.len(), 1);
        assert!((done[0].bytes - GB).abs() < 1.0);
        assert_eq!(v, tr.version() - 1, "reap bumps version");
        assert_eq!(tr.n_active(), 0);
    }

    #[test]
    fn nominal_has_no_contention() {
        // Two fetches into the same node both finish at t = 1 — that's the
        // point of the benchmark engine.
        let mut tr = NominalTransfers::new(3, GB);
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        tr.start(0.0, NodeId(2), NodeId(0), GB, TAG_B);
        let (t, _) = tr.next_wake().unwrap();
        assert!((t - 1.0).abs() < 1e-9, "{t}");
        assert_eq!(tr.reap(t).len(), 2);
    }

    #[test]
    fn nominal_local_and_tiny_complete_inline() {
        let mut tr = NominalTransfers::new(3, GB);
        assert!(tr.start(0.0, NodeId(1), NodeId(1), 1e9, TAG_A).is_some());
        assert!(tr.start(0.0, NodeId(0), NodeId(1), 0.5, TAG_B).is_some());
        assert_eq!(tr.n_active(), 0);
    }

    #[test]
    fn nominal_background_never_wakes_and_cancel_works() {
        let mut tr = NominalTransfers::new(3, GB);
        let bg = TransferTag::Background { idx: 0 };
        tr.start(0.0, NodeId(1), NodeId(2), f64::INFINITY, bg);
        assert_eq!(tr.n_active(), 1);
        assert!(tr.next_wake().is_none());
        tr.cancel(0.5, bg);
        assert_eq!(tr.n_active(), 0);
    }

    #[test]
    fn nominal_cancel_involving_spares_background_and_invalidates_heap() {
        let mut tr = NominalTransfers::new(3, GB);
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        tr.start(0.0, NodeId(2), NodeId(1), GB, TAG_B);
        let bg = TransferTag::Background { idx: 0 };
        tr.start(0.0, NodeId(1), NodeId(2), f64::INFINITY, bg);
        let gone = tr.cancel_involving(0.1, NodeId(1));
        assert_eq!(gone.len(), 2);
        assert_eq!(tr.n_active(), 1);
        // Stale heap entries for the cancelled transfers must not resurface.
        assert!(tr.next_wake().is_none());
        assert!(tr.reap(5.0).is_empty());
    }

    #[test]
    fn nominal_degradation_scales_new_transfers() {
        let mut tr = NominalTransfers::new(3, GB);
        tr.scale_node_links(0.0, NodeId(0), 0.25);
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        assert!((tr.rate_of(TAG_A).unwrap() - GB / 4.0).abs() < 1e-6);
        let (t, _) = tr.next_wake().unwrap();
        assert!((t - 4.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn nominal_slot_reuse_keeps_stamps_distinct() {
        let mut tr = NominalTransfers::new(3, GB);
        tr.start(0.0, NodeId(1), NodeId(0), GB, TAG_A);
        tr.cancel(0.1, TAG_A);
        // Reuses the freed slot; the old heap entry must not reap it.
        tr.start(0.2, NodeId(2), NodeId(0), GB, TAG_B);
        let done = tr.reap(1.0); // old finish time of TAG_A
        assert!(done.is_empty(), "{done:?}");
        let done = tr.reap(1.2);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, TAG_B);
    }
}
