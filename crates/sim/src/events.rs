//! The discrete-event queue.
//!
//! A binary min-heap keyed on `(time, sequence)` — the sequence number makes
//! ordering total and deterministic for simultaneous events.
//!
//! # Tie ordering
//!
//! Events scheduled for the **same timestamp** pop in **insertion (FIFO)
//! order**, whatever their [`EventKind`]: the queue stamps every push with a
//! monotonically increasing sequence number and compares `(t, seq)`,
//! nothing else. Two consequences the simulator relies on:
//!
//! * the pop order of any event set is a pure function of the push order —
//!   never of heap internals, payload contents or kind discriminants, so a
//!   run's event interleaving is reproducible bit-for-bit;
//! * a cause always pops before its same-timestamp effect (the cause was
//!   necessarily pushed first), e.g. a `MapDone` that schedules an
//!   immediate `Heartbeat` at the same instant.
//!
//! The regression tests below pin both properties by shuffling insertion
//! orders and asserting pop order follows `(time, insertion)` exactly.

use pnats_net::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Event payloads.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// A job becomes known to the JobTracker.
    JobArrival {
        /// Index into the simulation's job table.
        job: usize,
    },
    /// A node reports in with its slot state.
    Heartbeat {
        /// Reporting node.
        node: NodeId,
    },
    /// The earliest in-flight transfer may have finished. Valid only if
    /// `version` still matches the transfer manager's version.
    TransferWake {
        /// Transfer-manager version this prediction was made against.
        version: u64,
    },
    /// A map task finishes its compute phase. Stale (and ignored) if the
    /// attempt was killed meanwhile — `run` no longer matches the task's
    /// current attempt id.
    MapDone {
        /// Job index.
        job: usize,
        /// Map index within the job.
        map: usize,
        /// Attempt id this completion belongs to.
        run: u32,
    },
    /// A map attempt dies with a transient (retryable) failure mid-compute.
    /// Stale if `run` no longer matches.
    MapFailed {
        /// Job index.
        job: usize,
        /// Map index within the job.
        map: usize,
        /// Attempt id this failure belongs to.
        run: u32,
    },
    /// A speculative map backup finishes (may be stale if cancelled).
    BackupDone {
        /// Index into the simulation's backup table.
        idx: usize,
    },
    /// A reduce task finishes its merge+reduce phase. Stale if `run` no
    /// longer matches (the reduce was killed or sent back to shuffling).
    ReduceDone {
        /// Job index.
        job: usize,
        /// Reduce index within the job.
        reduce: usize,
        /// Attempt id this completion belongs to.
        run: u32,
    },
    /// A node dies per the fault plan: slots vanish, running tasks are
    /// rescheduled, completed map outputs stored there are invalidated.
    NodeCrash {
        /// Index into `FaultPlan::crashes`.
        fault: usize,
    },
    /// A crashed node rejoins with empty disks and full free slots.
    NodeRecover {
        /// Index into `FaultPlan::crashes`.
        fault: usize,
    },
    /// A link-degradation window opens (node NIC scaled down).
    LinkDegradeStart {
        /// Index into `FaultPlan::link_degradations`.
        idx: usize,
    },
    /// A link-degradation window closes (node NIC restored).
    LinkDegradeEnd {
        /// Index into `FaultPlan::link_degradations`.
        idx: usize,
    },
    /// Start a configured background flow.
    BackgroundStart {
        /// Index into `SimConfig::background`.
        idx: usize,
    },
    /// Stop a configured background flow.
    BackgroundStop {
        /// Index into `SimConfig::background`.
        idx: usize,
    },
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    t: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-heap event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `t`.
    pub fn push(&mut self, t: f64, kind: EventKind) {
        assert!(t.is_finite() && t >= 0.0, "event time must be finite: {t}");
        self.heap.push(Entry { t, seq: self.seq, kind });
        self.seq += 1;
    }

    /// Pop the earliest event as `(time, kind)`.
    pub fn pop(&mut self) -> Option<(f64, EventKind)> {
        self.heap.pop().map(|e| (e.t, e.kind))
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::Heartbeat { node: NodeId(0) });
        q.push(1.0, EventKind::Heartbeat { node: NodeId(1) });
        q.push(3.0, EventKind::Heartbeat { node: NodeId(2) });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::MapDone { job: 0, map: 0, run: 0 });
        q.push(1.0, EventKind::MapDone { job: 0, map: 1, run: 0 });
        q.push(1.0, EventKind::MapDone { job: 0, map: 2, run: 0 });
        let maps: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::MapDone { map, .. } => map,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(maps, vec![0, 1, 2]);
    }

    /// A mixed-kind event set with distinct timestamps must pop in pure
    /// time order no matter how insertion is shuffled — the heap must not
    /// leak its internal layout into the pop order.
    #[test]
    fn shuffled_insertion_pops_identical_time_order() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let events: Vec<(f64, EventKind)> = vec![
            (5.0, EventKind::JobArrival { job: 0 }),
            (1.0, EventKind::Heartbeat { node: NodeId(3) }),
            (4.0, EventKind::MapDone { job: 0, map: 2, run: 1 }),
            (2.0, EventKind::TransferWake { version: 7 }),
            (8.0, EventKind::ReduceDone { job: 1, reduce: 0, run: 0 }),
            (3.0, EventKind::NodeCrash { fault: 0 }),
            (7.0, EventKind::BackgroundStart { idx: 2 }),
            (6.0, EventKind::MapFailed { job: 2, map: 9, run: 3 }),
        ];
        let mut sorted = events.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xE7E27);
        for round in 0..32 {
            let mut order = events.clone();
            order.shuffle(&mut rng);
            let mut q = EventQueue::new();
            for &(t, kind) in &order {
                q.push(t, kind);
            }
            let popped: Vec<(f64, EventKind)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(popped, sorted, "round {round}: pop order depends on insertion order");
        }
    }

    /// Same-timestamp events of *different kinds* must pop in insertion
    /// order — for every permutation, not just the natural one. The kind
    /// discriminant must have no influence.
    #[test]
    fn tie_order_is_insertion_fifo_for_any_kind_permutation() {
        let kinds = [
            EventKind::Heartbeat { node: NodeId(1) },
            EventKind::MapDone { job: 0, map: 0, run: 0 },
            EventKind::NodeCrash { fault: 0 },
        ];
        // All 6 permutations of three simultaneous events.
        for perm in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let mut q = EventQueue::new();
            for &i in &perm {
                q.push(4.25, kinds[i]);
            }
            let popped: Vec<EventKind> =
                std::iter::from_fn(|| q.pop()).map(|(_, k)| k).collect();
            let expect: Vec<EventKind> = perm.iter().map(|&i| kinds[i]).collect();
            assert_eq!(popped, expect, "perm {perm:?}: ties must pop FIFO");
        }
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, EventKind::JobArrival { job: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::JobArrival { job: 0 });
    }
}
