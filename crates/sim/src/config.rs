//! Simulator configuration.

use pnats_core::faults::FaultPlan;
use pnats_net::Topology;
use pnats_workloads::{Batch, ShuffleModel};

/// Cluster topology to simulate.
#[derive(Clone, Debug)]
pub enum TopologyKind {
    /// `n` nodes under one ToR switch (every remote path is 2 hops) —
    /// degenerate but useful for unit tests.
    SingleRack,
    /// The paper's testbed shape: one logical rack, three ToR switches
    /// with heterogeneous uplinks (see
    /// [`Topology::palmetto_slice`]).
    PalmettoSlice,
    /// `racks × per_rack` nodes in a two-level tree; `n_nodes` must equal
    /// `racks * per_rack`.
    MultiRack {
        /// Number of racks.
        racks: usize,
        /// Nodes per rack.
        per_rack: usize,
        /// ToR → core uplink capacity in bytes/sec.
        uplink_bps: f64,
    },
}

/// Where block replicas live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataLayout {
    /// Stock HDFS: the first replica on the (ingest-set) writer, further
    /// replicas spread rack-aware over the whole cluster. Locality is
    /// plentiful — every node ends up holding some blocks.
    HdfsRackAware,
    /// Cloud/NAS regime (paper §I: replicas "stored in NAS or SAN devices
    /// located in a subset of the nodes"): *all* replicas confined to the
    /// job's ingest set. Most nodes never hold local data, so schedulers
    /// must reason about remote placement cost — the paper's target case.
    IngestConfined,
}

/// A constant-rate background transfer occupying the network during
/// `[start, end)` — the "shared cluster with varied and dynamic bandwidth
/// utilization of links" regime of the paper's conclusion.
#[derive(Clone, Copy, Debug)]
pub struct BackgroundFlow {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Full simulator configuration. Defaults reproduce the paper's testbed:
/// 60 nodes, 4 map + 2 reduce slots each, replication 2, 1 Gbps NICs on a
/// Palmetto-like switch fabric.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Data nodes in the cluster.
    pub n_nodes: usize,
    /// Map slots per node.
    pub map_slots: u32,
    /// Reduce slots per node.
    pub reduce_slots: u32,
    /// Topology shape.
    pub topology: TopologyKind,
    /// Node NIC capacity, bytes/sec.
    pub nic_bps: f64,
    /// HDFS replication factor.
    pub replication: usize,
    /// Heartbeat interval, seconds.
    pub heartbeat_s: f64,
    /// Map compute throughput, input bytes/sec (per slot, nominal node).
    pub map_rate_bps: f64,
    /// Reduce merge+reduce throughput, shuffle bytes/sec.
    pub reduce_rate_bps: f64,
    /// Half-range of the per-node speed factor (0.15 ⇒ nodes uniformly in
    /// ±15 % of nominal).
    pub node_speed_spread: f64,
    /// Half-range of per-task duration jitter.
    pub task_jitter: f64,
    /// Concurrent shuffle fetches per reduce task (Hadoop's
    /// `mapred.reduce.parallel.copies`).
    pub parallel_copies: usize,
    /// Fraction of a job's maps that must *finish* before its reduces may
    /// launch (Hadoop's slowstart).
    pub slowstart: f64,
    /// Pending map tasks offered to the placer per decision (head of the
    /// unassigned queue, Hadoop-style scan window).
    pub map_candidate_window: usize,
    /// Pending reduce tasks offered per decision.
    pub reduce_candidate_window: usize,
    /// Half-range of per-map partition-weight noise (makes `I_jf` vary per
    /// map, as real key distributions do).
    pub partition_noise: f64,
    /// How block replicas are distributed (see [`DataLayout`]).
    pub data_layout: DataLayout,
    /// Fraction of the cluster acting as each job's *ingest set*: the nodes
    /// that wrote the job's input (and therefore hold its first replicas,
    /// HDFS writer-locality). 1.0 = uniform writers. Real deployments load
    /// data through a subset of nodes, which skews replica placement — the
    /// regime the paper's §I motivates (replicas concentrated on "a subset
    /// of the nodes"), and the one where placement quality matters.
    pub ingest_fraction: f64,
    /// Schedule with congestion-scaled costs (§II-B3) instead of raw hops.
    pub network_condition: bool,
    /// EWMA factor of the path-rate monitor.
    pub monitor_alpha: f64,
    /// Per-node speed overrides (node index, factor); factors < 1 are
    /// stragglers. Applied after the random spread.
    pub slow_nodes: Vec<(usize, f64)>,
    /// Hadoop-style speculative execution: when a job's map queue is empty
    /// and a slot is free, launch a backup copy of its slowest running map
    /// if that map's progress lags the job's mean by this *fraction*
    /// (0 disables). First copy to finish wins; the loser is killed.
    pub speculation_lag: f64,
    /// Background transfers.
    pub background: Vec<BackgroundFlow>,
    /// Deterministic fault schedule (node crashes/recoveries, transient map
    /// failures, heartbeat-loss windows, link degradation).
    /// [`FaultPlan::none`] — the default — injects nothing and leaves the
    /// run byte-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Model transfers on the fluid max-min fair-share flow network
    /// (`true`, the default and the fidelity the paper's experiments use)
    /// or at fixed nominal NIC rates (`false`). The nominal engine skips
    /// global rate recomputation entirely — transfers no longer contend —
    /// which is what makes 10k-node / 1M-task sweeps tractable; it is a
    /// throughput benchmark mode, not an experiment mode.
    pub fluid_network: bool,
    /// Class-partition cost index (incremental `C_ave` maintenance).
    /// `None` = automatic: enabled for clusters larger than 64 nodes,
    /// disabled otherwise so small-cluster goldens keep their historical
    /// bit-exact floating-point summation order. `Some(_)` forces it.
    pub cost_index: Option<bool>,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Hard wall on simulated time; runs exceeding it report unfinished
    /// jobs (the paper's `P_min` sweep "picked the highest P_min value at
    /// the time when the all jobs finished successfully" — this is how a
    /// too-high `P_min` manifests).
    pub max_sim_time: f64,
    /// Multi-tenant service mode (`pnats-tenancy`): tenant tags plus the
    /// weighted-fair-share / admission / preemption policy switches.
    /// `None` — the default — runs the classic single-pool batch mode; a
    /// passthrough config (one tenant, all policies off) is required to
    /// stay byte-identical to `None`.
    pub tenancy: Option<pnats_tenancy::TenancyConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

impl SimConfig {
    /// The paper's evaluation cluster: 60 nodes, 4 map + 2 reduce slots,
    /// replication 2, single logical rack across three switches.
    pub fn paper_testbed() -> Self {
        Self {
            n_nodes: 60,
            map_slots: 4,
            reduce_slots: 2,
            topology: TopologyKind::PalmettoSlice,
            nic_bps: 125e6, // 1 Gbps
            replication: 2,
            heartbeat_s: 1.0,
            map_rate_bps: 8e6,
            reduce_rate_bps: 20e6,
            node_speed_spread: 0.15,
            task_jitter: 0.10,
            parallel_copies: 4,
            slowstart: 0.05,
            map_candidate_window: 64,
            reduce_candidate_window: 16,
            partition_noise: 0.5,
            data_layout: DataLayout::HdfsRackAware,
            ingest_fraction: 0.35,
            network_condition: true,
            monitor_alpha: 0.3,
            slow_nodes: Vec::new(),
            speculation_lag: 0.0,
            background: Vec::new(),
            faults: FaultPlan::none(),
            fluid_network: true,
            cost_index: None,
            seed: 42,
            max_sim_time: 200_000.0,
            tenancy: None,
        }
    }

    /// A small, fast configuration for unit/integration tests.
    pub fn tiny(n_nodes: usize, seed: u64) -> Self {
        Self {
            n_nodes,
            map_slots: 2,
            reduce_slots: 1,
            topology: TopologyKind::SingleRack,
            seed,
            ..Self::paper_testbed()
        }
    }

    /// Build the configured topology.
    pub fn build_topology(&self) -> Topology {
        match self.topology {
            TopologyKind::SingleRack => Topology::single_rack(self.n_nodes, self.nic_bps),
            TopologyKind::PalmettoSlice => {
                Topology::palmetto_slice(self.n_nodes, self.nic_bps)
            }
            TopologyKind::MultiRack { racks, per_rack, uplink_bps } => {
                assert_eq!(
                    racks * per_rack,
                    self.n_nodes,
                    "MultiRack shape must match n_nodes"
                );
                Topology::multi_rack(racks, per_rack, self.nic_bps, uplink_bps)
            }
        }
    }

    /// Total map slots in the cluster.
    pub fn total_map_slots(&self) -> u64 {
        self.n_nodes as u64 * self.map_slots as u64
    }

    /// Total reduce slots in the cluster.
    pub fn total_reduce_slots(&self) -> u64 {
        self.n_nodes as u64 * self.reduce_slots as u64
    }
}

/// Generate a deterministic shared-cluster background-traffic profile:
/// `lanes` independent lanes, each an endless back-to-back sequence of
/// bulk transfers between random node pairs lasting 30–120 s, covering
/// `[0, horizon)`. At any instant exactly `lanes` background flows are
/// active, saturating their paths — the "shared cluster with varied and
/// dynamic bandwidth utilization of links" the paper's conclusion names as
/// the regime its fine-grained, condition-aware cost model targets.
pub fn background_traffic(lanes: usize, horizon: f64, n_nodes: usize, seed: u64) -> Vec<BackgroundFlow> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    assert!(n_nodes >= 2);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbac4_6000);
    let mut flows = Vec::new();
    for _ in 0..lanes {
        let mut t = 0.0;
        while t < horizon {
            let dur = rng.gen_range(30.0..120.0);
            let src = rng.gen_range(0..n_nodes);
            let mut dst = rng.gen_range(0..n_nodes);
            if dst == src {
                dst = (dst + 1) % n_nodes;
            }
            flows.push(BackgroundFlow { src, dst, start: t, end: (t + dur).min(horizon) });
            t += dur;
        }
    }
    flows
}

/// One job as fed to the simulator: block layout, reduce count, shuffle
/// behaviour and arrival time.
#[derive(Clone, Debug)]
pub struct JobInput {
    /// Display name.
    pub name: String,
    /// Submission time, seconds.
    pub submit: f64,
    /// Per-map input block sizes (one map task per block).
    pub block_sizes: Vec<u64>,
    /// Number of reduce tasks / shuffle partitions.
    pub n_reduces: usize,
    /// Shuffle behaviour.
    pub shuffle: ShuffleModel,
}

impl JobInput {
    /// Build the inputs for a [`Batch`]'s jobs.
    pub fn from_batch(batch: &Batch) -> Vec<JobInput> {
        batch
            .jobs
            .iter()
            .map(|(spec, submit)| JobInput {
                name: spec.name(),
                submit: *submit,
                block_sizes: spec.block_sizes(),
                n_reduces: spec.reduces as usize,
                shuffle: ShuffleModel::for_app(spec.app),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_workloads::{table2_batch, AppKind};

    #[test]
    fn paper_testbed_matches_section_3() {
        let c = SimConfig::paper_testbed();
        assert_eq!(c.n_nodes, 60);
        assert_eq!(c.map_slots, 4);
        assert_eq!(c.reduce_slots, 2);
        assert_eq!(c.replication, 2);
        assert_eq!(c.total_map_slots(), 240);
        assert_eq!(c.total_reduce_slots(), 120);
        let t = c.build_topology();
        assert_eq!(t.n_nodes(), 60);
        assert_eq!(t.layout().n_racks(), 1);
    }

    #[test]
    fn multi_rack_shape_validated() {
        let mut c = SimConfig::tiny(6, 0);
        c.topology = TopologyKind::MultiRack { racks: 2, per_rack: 3, uplink_bps: 1e9 };
        assert_eq!(c.build_topology().layout().n_racks(), 2);
    }

    #[test]
    #[should_panic(expected = "must match n_nodes")]
    fn multi_rack_shape_mismatch_panics() {
        let mut c = SimConfig::tiny(7, 0);
        c.topology = TopologyKind::MultiRack { racks: 2, per_rack: 3, uplink_bps: 1e9 };
        c.build_topology();
    }

    #[test]
    fn background_traffic_is_deterministic_and_covers_horizon() {
        let a = background_traffic(3, 1000.0, 10, 7);
        let b = background_traffic(3, 1000.0, 10, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.src, x.dst, x.start.to_bits()), (y.src, y.dst, y.start.to_bits()));
        }
        // Different seeds differ.
        let c = background_traffic(3, 1000.0, 10, 8);
        assert_ne!(
            a.iter().map(|f| (f.src, f.dst)).collect::<Vec<_>>(),
            c.iter().map(|f| (f.src, f.dst)).collect::<Vec<_>>()
        );
        // Valid endpoints, bounded times, full horizon coverage per lane.
        for f in &a {
            assert!(f.src < 10 && f.dst < 10 && f.src != f.dst);
            assert!(f.start < f.end && f.end <= 1000.0);
        }
        let latest_end = a.iter().map(|f| f.end).fold(0.0, f64::max);
        assert_eq!(latest_end, 1000.0, "lanes run back-to-back to the horizon");
    }

    #[test]
    fn data_layout_flag_roundtrips() {
        let mut c = SimConfig::paper_testbed();
        assert_eq!(c.data_layout, DataLayout::HdfsRackAware);
        c.data_layout = DataLayout::IngestConfined;
        assert_eq!(c.data_layout, DataLayout::IngestConfined);
    }

    #[test]
    fn job_inputs_from_batch() {
        let b = table2_batch(AppKind::Wordcount);
        let inputs = JobInput::from_batch(&b);
        assert_eq!(inputs.len(), 10);
        assert_eq!(inputs[0].name, "Wordcount_10GB");
        assert_eq!(inputs[0].block_sizes.len(), 88);
        assert_eq!(inputs[0].n_reduces, 157);
    }
}
