//! Flat slot-availability and pending-task bookkeeping for the incremental
//! tick loop.
//!
//! Two tiny data structures carry the scaled simulator's hot paths:
//!
//! * [`FreeSet`] — the set of nodes with a free map (or reduce) slot,
//!   maintained as a bitset plus a lazily rebuilt ascending node list and,
//!   when a cost-class partition is installed, per-class free counts. The
//!   list replaces the per-offer `O(n)` scan that rebuilt the free-node
//!   vector from scratch, and the counts back the scheduler's incremental
//!   `C_ave` maintenance (`pnats_core::costidx`). A `generation` stamp
//!   bumps only on real 0↔1 membership flips, so cached averages keyed on
//!   it are invalidated exactly when the free set changes.
//! * [`PendingList`] — an intrusive doubly-linked list over task indices
//!   with O(1) push/remove/contains, replacing `VecDeque` pending queues
//!   whose mid-queue `remove` was `O(len)`. Iteration order is identical
//!   to the `VecDeque` it replaces under the same operation sequence
//!   (FIFO, with mid-removals preserving relative order).
//!
//! Both structures are pure bookkeeping: they never make decisions, so the
//! simulator's decision stream is byte-identical to the scan-based code as
//! long as membership and iteration order match — which the tests below pin.

use pnats_net::NodeId;

/// Set of nodes with at least one free slot of one kind.
#[derive(Clone, Debug)]
pub struct FreeSet {
    /// Membership bitset, bit `i` = node `i` free.
    words: Vec<u64>,
    /// Ascending free-node list; valid only when `!dirty`.
    list: Vec<NodeId>,
    dirty: bool,
    total: u32,
    /// Node → cost class; empty when no class partition is installed.
    class_of: Vec<u32>,
    /// Free-node count per cost class (parallel to the installed partition).
    counts: Vec<u32>,
    generation: u64,
}

impl FreeSet {
    /// An empty set over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
            list: Vec::with_capacity(n),
            dirty: false,
            total: 0,
            class_of: Vec::new(),
            counts: Vec::new(),
            generation: 0,
        }
    }

    /// Set node membership. No-ops (and keeps `generation`) unless the
    /// bit actually flips.
    pub fn set(&mut self, node: usize, free: bool) {
        let (w, b) = (node / 64, node % 64);
        let cur = (self.words[w] >> b) & 1 == 1;
        if cur == free {
            return;
        }
        self.words[w] ^= 1 << b;
        if free {
            self.total += 1;
        } else {
            self.total -= 1;
        }
        if !self.class_of.is_empty() {
            let q = self.class_of[node] as usize;
            if free {
                self.counts[q] += 1;
            } else {
                self.counts[q] -= 1;
            }
        }
        self.generation += 1;
        self.dirty = true;
    }

    /// Whether `node` is in the set.
    pub fn is_free(&self, node: usize) -> bool {
        (self.words[node / 64] >> (node % 64)) & 1 == 1
    }

    /// Number of free nodes.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Stamp that advances exactly when membership changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The raw membership bitset.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Per-class free counts (empty when no partition is installed).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Whether a class partition is installed.
    pub fn has_classes(&self) -> bool {
        !self.class_of.is_empty()
    }

    /// Install a node → class partition and recount per-class totals.
    pub fn set_classes(&mut self, class_of: &[u32], n_classes: usize) {
        assert_eq!(class_of.len().div_ceil(64), self.words.len(), "partition size mismatch");
        self.class_of = class_of.to_vec();
        self.counts = vec![0; n_classes];
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                self.counts[self.class_of[i] as usize] += 1;
                bits &= bits - 1;
            }
        }
        self.generation += 1;
    }

    /// Drop the class partition.
    pub fn clear_classes(&mut self) {
        self.class_of.clear();
        self.counts.clear();
    }

    /// Rebuild the ascending free-node list if membership changed since the
    /// last rebuild. Call before [`FreeSet::list`]; split from it so the
    /// `&mut` rebuild doesn't fight the shared borrows a decision context
    /// holds on the list.
    pub fn ensure_list(&mut self) {
        if !self.dirty {
            return;
        }
        self.list.clear();
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                self.list.push(NodeId(i as u32));
                bits &= bits - 1;
            }
        }
        self.dirty = false;
    }

    /// The ascending free-node list. [`FreeSet::ensure_list`] must have run
    /// since the last mutation.
    pub fn list(&self) -> &[NodeId] {
        debug_assert!(!self.dirty, "FreeSet::ensure_list not called after mutation");
        &self.list
    }
}

const NIL: u32 = u32::MAX;

/// Intrusive FIFO list over task indices `0..n` with O(1) push-back,
/// mid-list remove and membership test.
#[derive(Clone, Debug)]
pub struct PendingList {
    next: Vec<u32>,
    prev: Vec<u32>,
    present: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl PendingList {
    /// An empty list able to hold indices `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            next: vec![NIL; n],
            prev: vec![NIL; n],
            present: vec![false; n],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// A list pre-filled with `0, 1, …, n-1` in order.
    pub fn full(n: usize) -> Self {
        let mut l = Self::with_capacity(n);
        for i in 0..n {
            l.push_back(i);
        }
        l
    }

    /// Entries currently in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `i` is currently in the list.
    pub fn contains(&self, i: usize) -> bool {
        self.present[i]
    }

    /// Append `i` at the tail. Panics if already present.
    pub fn push_back(&mut self, i: usize) {
        assert!(!self.present[i], "index {i} already pending");
        let iu = i as u32;
        self.present[i] = true;
        self.next[i] = NIL;
        self.prev[i] = self.tail;
        if self.tail == NIL {
            self.head = iu;
        } else {
            self.next[self.tail as usize] = iu;
        }
        self.tail = iu;
        self.len += 1;
    }

    /// Unlink `i`; returns whether it was present. Relative order of the
    /// remaining entries is unchanged.
    pub fn remove(&mut self, i: usize) -> bool {
        if !self.present[i] {
            return false;
        }
        let (p, n) = (self.prev[i], self.next[i]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.present[i] = false;
        self.next[i] = NIL;
        self.prev[i] = NIL;
        self.len -= 1;
        true
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        let mut cur = self.head;
        while cur != NIL {
            let nx = self.next[cur as usize];
            self.present[cur as usize] = false;
            self.next[cur as usize] = NIL;
            self.prev[cur as usize] = NIL;
            cur = nx;
        }
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// First entry, if any.
    pub fn front(&self) -> Option<usize> {
        (self.head != NIL).then_some(self.head as usize)
    }

    /// Iterate entries head → tail.
    pub fn iter(&self) -> PendingIter<'_> {
        PendingIter { list: self, cur: self.head }
    }
}

/// Iterator over a [`PendingList`] in FIFO order.
pub struct PendingIter<'a> {
    list: &'a PendingList,
    cur: u32,
}

impl Iterator for PendingIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.cur == NIL {
            return None;
        }
        let i = self.cur as usize;
        self.cur = self.list.next[i];
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn freeset_tracks_membership_and_total() {
        let mut f = FreeSet::new(130);
        assert_eq!(f.total(), 0);
        f.set(0, true);
        f.set(64, true);
        f.set(129, true);
        assert_eq!(f.total(), 3);
        assert!(f.is_free(64) && !f.is_free(63));
        let g = f.generation();
        f.set(64, true); // no flip — generation must not move
        assert_eq!(f.generation(), g);
        f.set(64, false);
        assert_eq!(f.generation(), g + 1);
        f.ensure_list();
        assert_eq!(f.list(), &[NodeId(0), NodeId(129)]);
    }

    #[test]
    fn freeset_list_is_ascending_and_lazy() {
        let mut f = FreeSet::new(200);
        for i in [150usize, 3, 77, 63, 64, 199] {
            f.set(i, true);
        }
        f.ensure_list();
        let ids: Vec<usize> = f.list().iter().map(|n| n.idx()).collect();
        assert_eq!(ids, vec![3, 63, 64, 77, 150, 199]);
        // Unchanged membership keeps the same slice without a rebuild.
        let ptr = f.list().as_ptr();
        f.ensure_list();
        assert_eq!(f.list().as_ptr(), ptr);
    }

    #[test]
    fn freeset_class_counts_follow_flips() {
        let mut f = FreeSet::new(8);
        f.set(1, true);
        f.set(5, true);
        // Classes: nodes 0–3 → class 0, 4–7 → class 1.
        f.set_classes(&[0, 0, 0, 0, 1, 1, 1, 1], 2);
        assert_eq!(f.counts(), &[1, 1]);
        f.set(2, true);
        f.set(5, false);
        assert_eq!(f.counts(), &[2, 0]);
        f.clear_classes();
        assert!(!f.has_classes());
    }

    #[test]
    fn pending_list_matches_vecdeque_semantics() {
        // Drive a PendingList and a VecDeque through the same op sequence;
        // iteration order must agree at every step.
        let mut pl = PendingList::full(10);
        let mut vd: VecDeque<usize> = (0..10).collect();
        let check = |pl: &PendingList, vd: &VecDeque<usize>| {
            assert_eq!(pl.iter().collect::<Vec<_>>(), vd.iter().copied().collect::<Vec<_>>());
            assert_eq!(pl.len(), vd.len());
        };
        check(&pl, &vd);
        for &kill in &[4usize, 0, 9] {
            assert!(pl.remove(kill));
            let pos = vd.iter().position(|&x| x == kill).unwrap();
            vd.remove(pos);
            check(&pl, &vd);
        }
        // Requeue with dedup, like the recovery path does.
        for &back in &[4usize, 4, 0] {
            if !pl.contains(back) {
                pl.push_back(back);
            }
            if !vd.contains(&back) {
                vd.push_back(back);
            }
            check(&pl, &vd);
        }
        assert!(pl.remove(7));
        assert!(!pl.remove(7)); // second remove is a no-op
        pl.clear();
        assert!(pl.is_empty());
        assert_eq!(pl.iter().count(), 0);
        pl.push_back(3);
        assert_eq!(pl.front(), Some(3));
    }

    #[test]
    #[should_panic(expected = "already pending")]
    fn double_push_panics() {
        let mut pl = PendingList::with_capacity(4);
        pl.push_back(2);
        pl.push_back(2);
    }
}
