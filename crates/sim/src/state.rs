//! Cluster, job and task state.
//!
//! Tasks are explicit state machines; *time-varying* quantities (map
//! progress `d_read`, current intermediate size `A_jf`) are pure functions
//! of state and the query time, so heartbeat "reports" never need to be
//! stored or synchronized — exactly the information a Hadoop heartbeat
//! would carry, derived on demand.
//!
//! The collections here are sized for 10k-node / 1M-task runs: pending
//! task queues are intrusive [`PendingList`]s (O(1) remove), shuffle
//! bookkeeping is indexed per source node instead of linearly scanned,
//! per-node tables (`done_by_node`, `local_maps`) are sparse maps instead
//! of `O(n_nodes)` vectors per job, and aggregate map progress is an
//! integer counter instead of an `O(maps)` sweep. Every replacement
//! preserves the iteration order and membership of the structure it
//! replaced, so decision traces are byte-identical.

use crate::config::JobInput;
use crate::freeset::PendingList;
use pnats_core::context::{MapCandidate, ShuffleSource};
use pnats_core::types::{JobId, MapTaskId};
use pnats_metrics::LocalityClass;
use pnats_net::NodeId;
use pnats_workloads::ShuffleModel;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{HashMap, VecDeque};

/// Per-node slot availability.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// Free map slots.
    pub free_map: u32,
    /// Free reduce slots.
    pub free_reduce: u32,
    /// Compute speed factor (1.0 = nominal).
    pub speed: f64,
    /// Whether the node is up. Dead nodes hold no slots, receive no
    /// assignments and their stored map outputs are unreadable.
    pub alive: bool,
}

/// Map task lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum MapPhase {
    /// Not yet placed.
    Unassigned,
    /// Fetching its input block from a remote replica.
    Fetching {
        /// Execution node.
        node: NodeId,
    },
    /// Computing; progress is linear between `start` and `start + duration`.
    Computing {
        /// Execution node.
        node: NodeId,
        /// Compute start time.
        start: f64,
        /// Compute duration.
        duration: f64,
    },
    /// Finished.
    Done {
        /// Execution node.
        node: NodeId,
        /// Completion time.
        finish: f64,
    },
}

/// One map task.
#[derive(Clone, Debug)]
pub struct MapTask {
    /// Lifecycle phase.
    pub phase: MapPhase,
    /// Input block size (`B_j`).
    pub block: u64,
    /// Effective shuffle selectivity (drawn at placement).
    pub selectivity: f64,
    /// Per-reduce partition weights (`w_jf`, sum 1; materialized at
    /// placement).
    pub weights: Vec<f64>,
    /// Time the task was assigned.
    pub assigned_t: f64,
    /// Locality of its placement.
    pub locality: LocalityClass,
    /// Attempt id; bumped whenever the current attempt is killed so
    /// in-flight completion events for it become stale.
    pub run: u32,
    /// Output epoch; bumped when a *completed* output is invalidated by a
    /// node crash and the map must re-execute.
    pub epoch: u32,
    /// Execution attempts started so far (bounds transient-failure
    /// retries).
    pub attempts: u32,
}

impl MapTask {
    /// Execution node, if placed.
    pub fn node(&self) -> Option<NodeId> {
        match self.phase {
            MapPhase::Unassigned => None,
            MapPhase::Fetching { node }
            | MapPhase::Computing { node, .. }
            | MapPhase::Done { node, .. } => Some(node),
        }
    }

    /// `d_read` at time `t`: input bytes consumed so far.
    pub fn input_read(&self, t: f64) -> u64 {
        match self.phase {
            MapPhase::Unassigned | MapPhase::Fetching { .. } => 0,
            MapPhase::Computing { start, duration, .. } => {
                let frac = ((t - start) / duration).clamp(0.0, 1.0);
                (self.block as f64 * frac) as u64
            }
            MapPhase::Done { .. } => self.block,
        }
    }

    /// `A_jf` at time `t`: intermediate bytes produced so far for
    /// partition `f`.
    pub fn current_bytes_for(&self, f: usize, t: f64) -> f64 {
        let frac = self.input_read(t) as f64 / self.block.max(1) as f64;
        self.final_bytes_for(f) * frac
    }

    /// `I_jf`: final intermediate bytes for partition `f`.
    pub fn final_bytes_for(&self, f: usize) -> f64 {
        self.block as f64 * self.selectivity * self.weights[f]
    }

    /// Whether the task has completed.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, MapPhase::Done { .. })
    }
}

/// Reduce task lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum ReducePhase {
    /// Not yet placed.
    Unassigned,
    /// Placed; copying map outputs as they become available.
    Shuffling {
        /// Execution node.
        node: NodeId,
    },
    /// All inputs local; merging + reducing.
    Merging {
        /// Execution node.
        node: NodeId,
    },
    /// Finished.
    Done {
        /// Execution node.
        node: NodeId,
        /// Completion time.
        finish: f64,
    },
}

/// FIFO queue of pending shuffle fetches, aggregated per source node.
///
/// Same observable behaviour as the `VecDeque<(NodeId, f64)>` it replaced —
/// first-enqueue order, merge-on-repeat — but the merge is an O(1) map
/// update instead of a linear scan over the queue.
#[derive(Clone, Debug, Default)]
pub struct SourceQueue {
    order: VecDeque<NodeId>,
    amt: HashMap<u32, f64>,
}

impl SourceQueue {
    /// Queued sources.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Queue `bytes` from `src`, merging into an existing entry (position
    /// unchanged) if one is already queued.
    pub fn push(&mut self, src: NodeId, bytes: f64) {
        match self.amt.entry(src.0) {
            std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += bytes,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(bytes);
                self.order.push_back(src);
            }
        }
    }

    /// Dequeue the oldest source with its accumulated bytes.
    pub fn pop_front(&mut self) -> Option<(NodeId, f64)> {
        let src = self.order.pop_front()?;
        let bytes = self.amt.remove(&src.0).expect("queue/amount desync");
        Some((src, bytes))
    }

    /// Drop any queued fetch from `src` (node crash).
    pub fn remove_source(&mut self, src: NodeId) {
        if self.amt.remove(&src.0).is_some() {
            self.order.retain(|s| *s != src);
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.order.clear();
        self.amt.clear();
    }

    /// Iterate `(source, bytes)` in queue order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.order.iter().map(|s| (*s, self.amt[&s.0]))
    }
}

/// One reduce task.
#[derive(Clone, Debug)]
pub struct ReduceTask {
    /// Lifecycle phase.
    pub phase: ReducePhase,
    /// Fetches not yet started, aggregated per source node.
    pub pending: SourceQueue,
    /// Fetch flows currently in the network.
    pub active_fetches: usize,
    /// Shuffle bytes received so far.
    pub received: f64,
    /// Bytes received from each source node (locality accounting).
    pub per_source: Vec<(NodeId, f64)>,
    /// Source node → index into `per_source` (kept consistent across
    /// `swap_remove` by `drop_source`).
    per_source_idx: HashMap<u32, u32>,
    /// Assignment time.
    pub assigned_t: f64,
    /// Attempt id; bumped whenever the current attempt is killed or sent
    /// back to shuffling, so in-flight `ReduceDone` events become stale.
    pub run: u32,
}

impl ReduceTask {
    fn new() -> Self {
        Self {
            phase: ReducePhase::Unassigned,
            pending: SourceQueue::default(),
            active_fetches: 0,
            received: 0.0,
            per_source: Vec::new(),
            per_source_idx: HashMap::new(),
            assigned_t: 0.0,
            run: 0,
        }
    }

    /// Execution node, if placed.
    pub fn node(&self) -> Option<NodeId> {
        match self.phase {
            ReducePhase::Unassigned => None,
            ReducePhase::Shuffling { node }
            | ReducePhase::Merging { node }
            | ReducePhase::Done { node, .. } => Some(node),
        }
    }

    /// Queue `bytes` from `src`, merging with an existing pending entry.
    pub fn enqueue(&mut self, src: NodeId, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        self.pending.push(src, bytes);
    }

    /// Account received bytes from `src`.
    pub fn receive(&mut self, src: NodeId, bytes: f64) {
        self.received += bytes;
        match self.per_source_idx.entry(src.0) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.per_source[*e.get() as usize].1 += bytes;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.per_source.len() as u32);
                self.per_source.push((src, bytes));
            }
        }
    }

    /// Forget everything `src` contributed — pending fetch and received
    /// bytes — returning the lost byte count (node-crash recovery).
    pub fn drop_source(&mut self, src: NodeId) -> f64 {
        self.pending.remove_source(src);
        let Some(pos) = self.per_source_idx.remove(&src.0) else {
            return 0.0;
        };
        let (_, bytes) = self.per_source.swap_remove(pos as usize);
        if let Some(moved) = self.per_source.get(pos as usize) {
            self.per_source_idx.insert(moved.0 .0, pos);
        }
        self.received -= bytes;
        bytes
    }

    /// Reset all shuffle accounting (attempt killed outright).
    pub fn clear_sources(&mut self) {
        self.received = 0.0;
        self.per_source.clear();
        self.per_source_idx.clear();
    }

    /// The source node contributing the most bytes (reduce locality).
    pub fn dominant_source(&self) -> Option<NodeId> {
        self.per_source
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
    }

    /// Whether the task has completed.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, ReducePhase::Done { .. })
    }
}

/// One job's full scheduling state.
pub struct JobState {
    /// Stable job id (index into the simulation's job table).
    pub id: JobId,
    /// Display name.
    pub name: String,
    /// Submission time.
    pub submit: f64,
    /// Shuffle model.
    pub shuffle: ShuffleModel,
    /// Base partition weights `w_f` (drawn once per job).
    pub base_weights: Vec<f64>,
    /// Precomputed placement candidates (block size + replicas).
    pub map_cands: Vec<MapCandidate>,
    /// Map tasks.
    pub maps: Vec<MapTask>,
    /// Reduce tasks.
    pub reduces: Vec<ReduceTask>,
    /// Unassigned map tasks in offer order (front = next offered).
    pub unassigned_maps: PendingList,
    /// Per-node index of map tasks with a local replica — Hadoop's
    /// node-local task cache. Sparse: only nodes holding a replica have an
    /// entry. Entries are cleaned lazily as tasks assign.
    pub local_maps: HashMap<u32, Vec<u32>>,
    /// Unassigned reduce tasks in offer order.
    pub unassigned_reduces: PendingList,
    /// Aggregate finished-map output bytes per node, indexed
    /// `[partition]` within each entry (incrementally maintained so reduce
    /// contexts build in O(output nodes + running maps) instead of
    /// O(all maps)). Sparse companion of `output_nodes`.
    pub done_by_node: HashMap<u32, Vec<f64>>,
    /// Ascending list of nodes that have ever held finished map output of
    /// this job — the iteration order for `done_by_node` (which a hash map
    /// cannot provide deterministically).
    pub output_nodes: Vec<u32>,
    /// Indices of currently running (placed, unfinished) map tasks.
    pub running_maps: Vec<usize>,
    /// Total map input bytes (`Σ B_j`), fixed at construction.
    pub input_total: u64,
    /// Input bytes of currently-valid *finished* maps; decremented when a
    /// crash invalidates an output. With the running maps' partial reads
    /// this reproduces the old full-sweep progress sum exactly (`u64`
    /// addition is associative/commutative, so the total is bit-identical).
    pub input_done: u64,
    /// Completed map count.
    pub maps_finished: usize,
    /// Completed reduce count.
    pub reduces_finished: usize,
    /// Running (assigned, unfinished) task count — fair-share key.
    pub running_tasks: usize,
    /// Nodes currently hosting a reduce of this job.
    pub reduce_nodes: Vec<NodeId>,
    /// Completion time, once done.
    pub finished_at: Option<f64>,
    /// Whether the job was aborted (a task exhausted its retry budget).
    pub failed: bool,
}

impl JobState {
    /// Build job state from its input spec; replica locations are supplied
    /// by the runner (which owns the block store).
    pub fn new(
        id: JobId,
        input: &JobInput,
        replicas_per_block: Vec<Vec<NodeId>>,
        _n_nodes: usize,
        rng: &mut SmallRng,
    ) -> Self {
        assert_eq!(replicas_per_block.len(), input.block_sizes.len());
        let base_weights = input.shuffle.partition_weights(input.n_reduces.max(1), rng);
        let map_cands: Vec<MapCandidate> = input
            .block_sizes
            .iter()
            .zip(&replicas_per_block)
            .enumerate()
            .map(|(j, (size, reps))| MapCandidate {
                task: MapTaskId { job: id, index: j as u32 },
                block_size: *size,
                replicas: reps.clone(),
            })
            .collect();
        let maps: Vec<MapTask> = input
            .block_sizes
            .iter()
            .map(|size| MapTask {
                phase: MapPhase::Unassigned,
                block: *size,
                selectivity: 0.0,
                weights: Vec::new(),
                assigned_t: 0.0,
                locality: LocalityClass::Remote,
                run: 0,
                epoch: 0,
                attempts: 0,
            })
            .collect();
        let reduces = (0..input.n_reduces).map(|_| ReduceTask::new()).collect();
        let mut local_maps: HashMap<u32, Vec<u32>> = HashMap::new();
        for (j, reps) in replicas_per_block.iter().enumerate() {
            for r in reps {
                local_maps.entry(r.idx() as u32).or_default().push(j as u32);
            }
        }
        let input_total = input.block_sizes.iter().sum();
        Self {
            id,
            name: input.name.clone(),
            submit: input.submit,
            shuffle: input.shuffle,
            base_weights,
            map_cands,
            maps,
            reduces,
            unassigned_maps: PendingList::full(input.block_sizes.len()),
            local_maps,
            unassigned_reduces: PendingList::full(input.n_reduces),
            done_by_node: HashMap::new(),
            output_nodes: Vec::new(),
            running_maps: Vec::new(),
            input_total,
            input_done: 0,
            maps_finished: 0,
            reduces_finished: 0,
            running_tasks: 0,
            reduce_nodes: Vec::new(),
            finished_at: None,
            failed: false,
        }
    }

    /// Whether the job is out of the scheduler's hands — finished or
    /// aborted.
    pub fn terminated(&self) -> bool {
        self.finished_at.is_some() || self.failed
    }

    /// Draw a map's effective selectivity and per-partition weights (base
    /// weights perturbed by per-map noise, renormalized).
    pub fn materialize_map_output(&mut self, map: usize, noise: f64, rng: &mut SmallRng) {
        let sel = self.shuffle.sample_selectivity(rng);
        let mut w: Vec<f64> = self
            .base_weights
            .iter()
            .map(|b| b * (1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0)).max(0.01))
            .collect();
        let total: f64 = w.iter().sum();
        w.iter_mut().for_each(|x| *x /= total);
        let m = &mut self.maps[map];
        m.selectivity = sel;
        m.weights = w;
    }

    /// Up to `limit` unassigned map tasks with a replica on `node`
    /// (compacting already-assigned entries out of the index) — the
    /// node-local candidates Hadoop's per-node task cache would surface.
    pub fn local_unassigned_on(&mut self, node: NodeId, limit: usize) -> Vec<usize> {
        let Some(cache) = self.local_maps.get_mut(&(node.idx() as u32)) else {
            return Vec::new();
        };
        let maps = &self.maps;
        cache.retain(|&m| matches!(maps[m as usize].phase, MapPhase::Unassigned));
        cache.iter().take(limit).map(|&m| m as usize).collect()
    }

    /// Fraction of total map *work* (input bytes) completed at `t` — the
    /// `job_map_progress` Coupling's gate reads. O(running maps).
    pub fn map_work_progress(&self, t: f64) -> f64 {
        if self.input_total == 0 {
            return 1.0;
        }
        let mut read = self.input_done;
        for &mi in &self.running_maps {
            read += self.maps[mi].input_read(t);
        }
        read as f64 / self.input_total as f64
    }

    /// Whether every task has finished.
    pub fn is_done(&self) -> bool {
        self.maps_finished == self.maps.len() && self.reduces_finished == self.reduces.len()
    }

    /// Mark map `map` finished on `node` at `finish`: flips its phase,
    /// folds its final output into the per-node aggregates and maintains
    /// the running/finished bookkeeping.
    pub fn complete_map(&mut self, map: usize, node: NodeId, finish: f64) {
        debug_assert!(matches!(
            self.maps[map].phase,
            MapPhase::Computing { .. } | MapPhase::Fetching { .. }
        ));
        self.maps[map].phase = MapPhase::Done { node, finish };
        if let Some(pos) = self.running_maps.iter().position(|m| *m == map) {
            self.running_maps.swap_remove(pos);
        }
        self.maps_finished += 1;
        self.input_done += self.maps[map].block;
        let nid = node.idx() as u32;
        let agg = self.done_by_node.entry(nid).or_default();
        if agg.is_empty() {
            agg.resize(self.reduces.len(), 0.0);
        }
        for (f, slot) in agg.iter_mut().enumerate() {
            *slot += self.maps[map].final_bytes_for(f);
        }
        if let Err(pos) = self.output_nodes.binary_search(&nid) {
            self.output_nodes.insert(pos, nid);
        }
    }

    /// A node crash invalidated map `map`'s completed output: bump epoch
    /// and attempt id, return the task to `Unassigned` and roll back the
    /// finished-work accounting. The caller requeues it.
    pub fn invalidate_map_output(&mut self, map: usize) {
        let t = &mut self.maps[map];
        t.epoch += 1;
        t.run += 1;
        t.phase = MapPhase::Unassigned;
        self.maps_finished -= 1;
        self.input_done -= self.maps[map].block;
    }

    /// Forget all finished output stored on `node` (its disks are gone).
    /// The node stays in `output_nodes`; its empty aggregate is skipped by
    /// every reader, matching the old dense table whose entry was cleared
    /// in place.
    pub fn clear_node_output(&mut self, node: NodeId) {
        if let Some(agg) = self.done_by_node.get_mut(&(node.idx() as u32)) {
            agg.clear();
        }
    }

    /// Queue every already-finished map output of partition `f` onto its
    /// reduce task (called at reduce assignment, before per-completion
    /// feeding takes over). Ascending node order, like the dense sweep it
    /// replaces.
    pub fn enqueue_finished_outputs(&mut self, f: usize) {
        for i in 0..self.output_nodes.len() {
            let nid = self.output_nodes[i];
            let Some(bytes) = self.done_by_node.get(&nid).and_then(|a| a.get(f)).copied() else {
                continue;
            };
            if bytes > 0.0 {
                self.reduces[f].enqueue(NodeId(nid), bytes);
            }
        }
    }

    /// Build the shuffle sources of reduce partition `f` at time `t`:
    /// exact per the paper's model — one aggregate entry per node holding
    /// *finished* map output (their extrapolation is exact) plus one entry
    /// per still-running map (whose progress is what the estimator
    /// comparison is about).
    pub fn shuffle_sources(&self, f: usize, t: f64, out: &mut Vec<ShuffleSource>) {
        out.clear();
        for &nid in &self.output_nodes {
            let Some(bytes) = self.done_by_node.get(&nid).and_then(|a| a.get(f)) else {
                continue;
            };
            if *bytes > 0.0 {
                out.push(ShuffleSource {
                    node: NodeId(nid),
                    current_bytes: *bytes,
                    input_read: 1,
                    input_total: 1,
                });
            }
        }
        for &mi in &self.running_maps {
            let m = &self.maps[mi];
            if let Some(node) = m.node() {
                out.push(ShuffleSource {
                    node,
                    current_bytes: m.current_bytes_for(f, t),
                    input_read: m.input_read(t),
                    input_total: m.block,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_workloads::AppKind;
    use rand::SeedableRng;

    fn input() -> JobInput {
        JobInput {
            name: "t".into(),
            submit: 0.0,
            block_sizes: vec![1000, 1000],
            n_reduces: 4,
            shuffle: ShuffleModel::for_app(AppKind::Terasort),
        }
    }

    fn job() -> JobState {
        let mut rng = SmallRng::seed_from_u64(3);
        JobState::new(
            JobId(0),
            &input(),
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            4,
            &mut rng,
        )
    }

    #[test]
    fn construction() {
        let j = job();
        assert_eq!(j.maps.len(), 2);
        assert_eq!(j.reduces.len(), 4);
        assert_eq!(j.unassigned_maps.len(), 2);
        assert_eq!(j.map_cands[1].replicas, vec![NodeId(1)]);
        assert_eq!(j.input_total, 2000);
        assert!(!j.is_done());
    }

    #[test]
    fn map_progress_is_linear() {
        let mut j = job();
        let mut rng = SmallRng::seed_from_u64(4);
        j.materialize_map_output(0, 0.0, &mut rng);
        j.maps[0].phase = MapPhase::Computing { node: NodeId(0), start: 10.0, duration: 20.0 };
        assert_eq!(j.maps[0].input_read(10.0), 0);
        assert_eq!(j.maps[0].input_read(20.0), 500);
        assert_eq!(j.maps[0].input_read(30.0), 1000);
        assert_eq!(j.maps[0].input_read(99.0), 1000);
        // A_jf scales with progress; I_jf is the full-output value.
        let half = j.maps[0].current_bytes_for(0, 20.0);
        let full = j.maps[0].final_bytes_for(0);
        assert!((half * 2.0 - full).abs() < 1e-9);
    }

    #[test]
    fn map_work_progress_aggregates() {
        let mut j = job();
        let mut rng = SmallRng::seed_from_u64(4);
        j.materialize_map_output(0, 0.0, &mut rng);
        j.maps[0].phase = MapPhase::Computing { node: NodeId(0), start: 0.0, duration: 1.0 };
        j.complete_map(0, NodeId(0), 5.0);
        assert!((j.map_work_progress(0.0) - 0.5).abs() < 1e-9);
        assert_eq!(j.maps_finished, 1);
        assert_eq!(j.input_done, 1000);
    }

    #[test]
    fn complete_map_folds_into_aggregates() {
        let mut j = job();
        let mut rng = SmallRng::seed_from_u64(4);
        j.materialize_map_output(0, 0.0, &mut rng);
        j.maps[0].phase = MapPhase::Computing { node: NodeId(2), start: 0.0, duration: 1.0 };
        j.running_maps.push(0);
        j.complete_map(0, NodeId(2), 1.0);
        assert!(j.running_maps.is_empty());
        assert_eq!(j.output_nodes, vec![2]);
        let total: f64 = j.done_by_node[&2].iter().sum();
        let expect = j.maps[0].block as f64 * j.maps[0].selectivity;
        assert!((total - expect).abs() < 1e-6);
    }

    #[test]
    fn invalidation_rolls_back_progress() {
        let mut j = job();
        let mut rng = SmallRng::seed_from_u64(4);
        j.materialize_map_output(0, 0.0, &mut rng);
        j.maps[0].phase = MapPhase::Computing { node: NodeId(2), start: 0.0, duration: 1.0 };
        j.complete_map(0, NodeId(2), 1.0);
        j.invalidate_map_output(0);
        j.clear_node_output(NodeId(2));
        assert_eq!(j.maps_finished, 0);
        assert_eq!(j.input_done, 0);
        assert_eq!(j.maps[0].epoch, 1);
        assert_eq!(j.maps[0].phase, MapPhase::Unassigned);
        // The cleared node yields no shuffle sources.
        let mut out = Vec::new();
        j.shuffle_sources(0, 2.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn materialized_weights_normalized() {
        let mut j = job();
        let mut rng = SmallRng::seed_from_u64(4);
        j.materialize_map_output(0, 0.5, &mut rng);
        let s: f64 = j.maps[0].weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert!(j.maps[0].selectivity > 0.9); // terasort ≈ 1.0
    }

    #[test]
    fn shuffle_sources_split_done_and_running() {
        let mut j = job();
        let mut rng = SmallRng::seed_from_u64(4);
        j.materialize_map_output(0, 0.0, &mut rng);
        j.materialize_map_output(1, 0.0, &mut rng);
        j.maps[0].phase = MapPhase::Computing { node: NodeId(0), start: 0.0, duration: 1.0 };
        j.complete_map(0, NodeId(0), 1.0);
        j.maps[1].phase = MapPhase::Computing { node: NodeId(1), start: 0.0, duration: 10.0 };
        j.running_maps.push(1);
        let mut out = Vec::new();
        j.shuffle_sources(2, 5.0, &mut out);
        assert_eq!(out.len(), 2);
        // Finished aggregate reports itself as fully read.
        assert_eq!(out[0].node, NodeId(0));
        assert_eq!(out[0].input_read, out[0].input_total);
        // Running map reports true progress.
        assert_eq!(out[1].node, NodeId(1));
        assert_eq!(out[1].input_read, 500);
        assert_eq!(out[1].input_total, 1000);
    }

    #[test]
    fn reduce_enqueue_merges_sources() {
        let mut r = ReduceTask::new();
        r.enqueue(NodeId(1), 10.0);
        r.enqueue(NodeId(2), 5.0);
        r.enqueue(NodeId(1), 7.0);
        r.enqueue(NodeId(3), 0.0); // dropped
        assert_eq!(r.pending.len(), 2);
        let first = r.pending.iter().next().unwrap();
        assert_eq!(first, (NodeId(1), 17.0));
    }

    #[test]
    fn reduce_drop_source_forgets_contribution() {
        let mut r = ReduceTask::new();
        r.receive(NodeId(1), 10.0);
        r.receive(NodeId(2), 30.0);
        r.enqueue(NodeId(2), 4.0);
        assert_eq!(r.drop_source(NodeId(2)), 30.0);
        assert_eq!(r.received, 10.0);
        assert!(r.pending.is_empty());
        // Index stays consistent after the swap_remove.
        r.receive(NodeId(1), 5.0);
        assert_eq!(r.per_source, vec![(NodeId(1), 15.0)]);
        assert_eq!(r.drop_source(NodeId(9)), 0.0);
    }

    #[test]
    fn reduce_dominant_source() {
        let mut r = ReduceTask::new();
        r.receive(NodeId(1), 10.0);
        r.receive(NodeId(2), 30.0);
        r.receive(NodeId(1), 5.0);
        assert_eq!(r.dominant_source(), Some(NodeId(2)));
        assert_eq!(r.received, 45.0);
    }
}
