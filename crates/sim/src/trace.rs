//! Execution traces and derived metrics.

use pnats_metrics::{Cdf, LocalityClass, LocalityCounter, UtilizationTimeline};

/// Map or reduce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

/// One completed task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Job index within the run.
    pub job: usize,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within the job.
    pub index: usize,
    /// Execution node index.
    pub node: usize,
    /// Assignment time.
    pub assigned: f64,
    /// Completion time.
    pub finished: f64,
    /// Locality class of the placement.
    pub locality: LocalityClass,
    /// Bytes moved over the network on this task's behalf (input fetch for
    /// maps, shuffle for reduces).
    pub net_bytes: f64,
    /// Output epoch of the completion (maps only; 0 unless a node crash
    /// invalidated an earlier completed output and forced a re-execution).
    pub epoch: u32,
}

impl TaskRecord {
    /// Running time (assignment to completion) — the quantity of the
    /// paper's Figure 6.
    pub fn running_time(&self) -> f64 {
        self.finished - self.assigned
    }
}

/// One completed job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Job index within the run (stable key for trace joins; names can
    /// repeat across jobs).
    pub job: usize,
    /// Job name (e.g. `Wordcount_10GB`).
    pub name: String,
    /// Submission time.
    pub submit: f64,
    /// Completion time.
    pub finished: f64,
}

impl JobRecord {
    /// Job completion time — the quantity of Figures 4/5.
    pub fn jct(&self) -> f64 {
        self.finished - self.submit
    }
}

/// Everything a simulation run records.
pub struct Trace {
    /// Completed tasks, in completion order.
    pub tasks: Vec<TaskRecord>,
    /// Completed jobs, in completion order.
    pub jobs: Vec<JobRecord>,
    /// Map-slot busy timeline.
    pub map_util: UtilizationTimeline,
    /// Reduce-slot busy timeline.
    pub reduce_util: UtilizationTimeline,
    /// Total bytes moved over the network.
    pub network_bytes: f64,
    /// Placement offers the task-level scheduler declined.
    pub skipped_offers: u64,
    /// Speculative map backups launched.
    pub backups_launched: u64,
    /// Backups that finished before their primary (and killed it).
    pub backups_won: u64,
    /// Backups cancelled because the primary finished (or died) first.
    pub backups_cancelled: u64,
    /// Primary attempts killed because their backup won the race.
    pub losers_killed: u64,
}

impl Trace {
    /// An empty trace for a cluster of the given slot capacities.
    pub fn new(map_slot_capacity: u64, reduce_slot_capacity: u64) -> Self {
        Self {
            tasks: Vec::new(),
            jobs: Vec::new(),
            map_util: UtilizationTimeline::new(map_slot_capacity),
            reduce_util: UtilizationTimeline::new(reduce_slot_capacity),
            network_bytes: 0.0,
            skipped_offers: 0,
            backups_launched: 0,
            backups_won: 0,
            backups_cancelled: 0,
            losers_killed: 0,
        }
    }

    /// Task records of one kind.
    pub fn tasks_of(&self, kind: TaskKind) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.iter().filter(move |t| t.kind == kind)
    }

    /// CDF of running times for one kind of task (Figure 6).
    pub fn task_time_cdf(&self, kind: TaskKind) -> Cdf {
        Cdf::new(self.tasks_of(kind).map(|t| t.running_time()).collect())
    }

    /// CDF of job completion times (Figure 4).
    pub fn jct_cdf(&self) -> Cdf {
        Cdf::new(self.jobs.iter().map(|j| j.jct()).collect())
    }

    /// Locality tallies for one kind of task (Table III / Figure 7).
    pub fn locality_of(&self, kind: TaskKind) -> LocalityCounter {
        let mut c = LocalityCounter::default();
        for t in self.tasks_of(kind) {
            c.record(t.locality);
        }
        c
    }

    /// Combined map+reduce locality (Table III counts both).
    pub fn locality_all(&self) -> LocalityCounter {
        let mut c = self.locality_of(TaskKind::Map);
        c += self.locality_of(TaskKind::Reduce);
        c
    }

    /// Makespan: last job completion time.
    pub fn makespan(&self) -> f64 {
        self.jobs.iter().map(|j| j.finished).fold(0.0, f64::max)
    }

    /// The task trace as CSV (header + one row per task), for external
    /// analysis/plotting.
    pub fn tasks_csv(&self) -> String {
        let mut out = String::from(
            "job,kind,index,node,assigned_s,finished_s,running_s,locality,net_bytes,epoch\n",
        );
        for t in &self.tasks {
            out.push_str(&format!(
                "{},{},{},{},{:.3},{:.3},{:.3},{},{:.0},{}\n",
                t.job,
                match t.kind {
                    TaskKind::Map => "map",
                    TaskKind::Reduce => "reduce",
                },
                t.index,
                t.node,
                t.assigned,
                t.finished,
                t.running_time(),
                t.locality,
                t.net_bytes,
                t.epoch,
            ));
        }
        out
    }

    /// The job trace as CSV.
    pub fn jobs_csv(&self) -> String {
        let mut out = String::from("name,submit_s,finished_s,jct_s\n");
        for j in &self.jobs {
            out.push_str(&format!(
                "{},{:.3},{:.3},{:.3}\n",
                j.name, j.submit, j.finished,
                j.jct()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: TaskKind, assigned: f64, finished: f64, loc: LocalityClass) -> TaskRecord {
        TaskRecord { job: 0, kind, index: 0, node: 0, assigned, finished, locality: loc, net_bytes: 0.0, epoch: 0 }
    }

    #[test]
    fn cdfs_split_by_kind() {
        let mut t = Trace::new(4, 2);
        t.tasks.push(rec(TaskKind::Map, 0.0, 10.0, LocalityClass::NodeLocal));
        t.tasks.push(rec(TaskKind::Map, 0.0, 20.0, LocalityClass::RackLocal));
        t.tasks.push(rec(TaskKind::Reduce, 5.0, 10.0, LocalityClass::Remote));
        assert_eq!(t.task_time_cdf(TaskKind::Map).len(), 2);
        assert_eq!(t.task_time_cdf(TaskKind::Reduce).len(), 1);
        assert_eq!(t.task_time_cdf(TaskKind::Map).max(), Some(20.0));
    }

    #[test]
    fn locality_tallies() {
        let mut t = Trace::new(4, 2);
        t.tasks.push(rec(TaskKind::Map, 0.0, 1.0, LocalityClass::NodeLocal));
        t.tasks.push(rec(TaskKind::Reduce, 0.0, 1.0, LocalityClass::NodeLocal));
        t.tasks.push(rec(TaskKind::Reduce, 0.0, 1.0, LocalityClass::RackLocal));
        assert_eq!(t.locality_of(TaskKind::Map).node_local, 1);
        assert_eq!(t.locality_all().total(), 3);
        assert_eq!(t.locality_all().rack_local, 1);
    }

    #[test]
    fn csv_exports() {
        let mut t = Trace::new(1, 1);
        t.tasks.push(rec(TaskKind::Map, 0.0, 2.0, LocalityClass::NodeLocal));
        t.jobs.push(JobRecord { job: 0, name: "wc".into(), submit: 0.0, finished: 9.0 });
        let csv = t.tasks_csv();
        assert!(csv.starts_with("job,kind"));
        assert!(csv.contains("0,map,0,0,0.000,2.000,2.000,local,0"));
        assert_eq!(csv.lines().count(), 2);
        let jcsv = t.jobs_csv();
        assert!(jcsv.contains("wc,0.000,9.000,9.000"));
    }

    #[test]
    fn jct_and_makespan() {
        let mut t = Trace::new(1, 1);
        t.jobs.push(JobRecord { job: 0, name: "a".into(), submit: 0.0, finished: 100.0 });
        t.jobs.push(JobRecord { job: 1, name: "b".into(), submit: 50.0, finished: 80.0 });
        assert_eq!(t.jct_cdf().max(), Some(100.0));
        assert_eq!(t.makespan(), 100.0);
        assert_eq!(t.jobs[1].jct(), 30.0);
    }
}
