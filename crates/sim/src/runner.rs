//! The simulation driver: event loop, heartbeat scheduling, task lifecycle.
//!
//! ## How a run unfolds
//!
//! 1. Blocks of every job are placed on nodes by the configured replication
//!    policy (HDFS rack-aware, factor 2 by default).
//! 2. Nodes heartbeat every [`SimConfig::heartbeat_s`] seconds (staggered).
//!    On each heartbeat the JobTracker fills the node's free slots: jobs
//!    are visited in fair-share order (fewest running tasks first — the
//!    paper keeps Hadoop's Fair Scheduler at the job level) and the
//!    pluggable [`TaskPlacer`] answers each slot offer.
//! 3. Placed maps fetch their block (a network flow if remote), compute,
//!    and on completion push shuffle segments toward running reduces.
//!    Placed reduces copy finished map outputs with bounded parallelism,
//!    then merge+reduce once the job's map phase is complete.
//! 4. Completed transfers feed the rate monitor; when
//!    [`SimConfig::network_condition`] is set, the scheduler's cost matrix
//!    is the congestion-scaled variant of §II-B3, refreshed every second.
//!
//! The run ends when every job finishes (or `max_sim_time` passes — the
//! escape hatch that detects `P_min` values so high the cluster starves,
//! which is how the paper's §III selected `P_min = 0.4`).

use crate::config::{JobInput, SimConfig};
use crate::events::{EventKind, EventQueue};
use crate::freeset::FreeSet;
use crate::service::{TenancyState, TenantRunStats};
use crate::state::{JobState, MapPhase, NodeState, ReducePhase};
use crate::trace::{JobRecord, TaskKind, TaskRecord, Trace};
use crate::transfers::{Completion, NominalTransfers, TransferEngine, TransferTag, Transfers};
use pnats_core::context::{MapSchedContext, ReduceCandidate, ReduceSchedContext};
use pnats_core::costidx::{CostClasses, CostView};
use pnats_core::placer::{Decision, SkipReason, TaskPlacer};
use pnats_core::types::{JobId, ReduceTaskId};
use pnats_dfs::{RackAware, ReplicaPlacement};
use pnats_metrics::LocalityClass;
use pnats_obs::{DecisionObserver, FaultKind, FaultRecord, SchedCounters, TraceSink};
use pnats_tenancy::AdmissionDecision;
use pnats_net::{ClassedDistance, ClusterLayout, DistanceMatrix, NodeId, PathCost, RateMonitor};
use pnats_workloads::Batch;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The hop metric backing the scheduler's cost queries: dense `n × n`
/// matrix at testbed scale (and whenever the congestion-scaled matrix of
/// §II-B3 is in play, which is built dense), class-compressed at large `n`
/// where a dense matrix would cost `O(n²)` memory.
enum HopModel {
    /// Exact `n × n` matrix.
    Dense(DistanceMatrix),
    /// Neighbor-class compressed hops ([`ClassedDistance`]) — exact too,
    /// just `O(classes²)`.
    Classed(ClassedDistance),
}

impl HopModel {
    fn get(&self, a: NodeId, b: NodeId) -> f64 {
        match self {
            HopModel::Dense(d) => d.path_cost(a, b),
            HopModel::Classed(c) => c.path_cost(a, b),
        }
    }
}

/// Convenience: the [`JobInput`]s of a workload batch.
pub fn job_inputs_from_batch(batch: &Batch) -> Vec<JobInput> {
    JobInput::from_batch(batch)
}

/// The outcome of a simulation run.
pub struct SimReport {
    /// Task-level scheduler that produced it.
    pub scheduler: String,
    /// Full execution trace.
    pub trace: Trace,
    /// Simulated time at which the run ended.
    pub sim_end: f64,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Jobs that finished before `max_sim_time`.
    pub jobs_completed: usize,
    /// Jobs aborted because a task exhausted its transient-retry budget.
    pub jobs_failed: usize,
    /// Every fault the run injected or reacted to (crashes, recoveries,
    /// invalidations, retries), in simulation-time order. Empty when
    /// [`SimConfig::faults`] is [`pnats_core::FaultPlan::none`].
    pub faults: Vec<FaultRecord>,
    /// Decision counters for the whole run (offers, assigns, skips by
    /// reason, plus the probabilistic placer's prune/cache tallies).
    pub counters: SchedCounters,
    /// The decision trace as JSONL, when the run's sink buffers one in
    /// memory (see [`Simulation::with_trace`]); `None` for the default
    /// [`pnats_obs::NullSink`] and for file-backed sinks.
    pub trace_jsonl: Option<String>,
    /// Jobs turned away by admission control (service mode only; these
    /// are neither completed nor failed). Always 0 without
    /// [`SimConfig::tenancy`].
    pub jobs_rejected: usize,
    /// Per-tenant service tallies, aligned with the tenancy config's
    /// tenant ids. Empty without [`SimConfig::tenancy`].
    pub tenants: Vec<TenantRunStats>,
    /// Wall-clock seconds this process spent inside `schedule_node` —
    /// the scheduler-decision latency the service-mode bench reports.
    /// Only measured for non-passthrough tenancy runs (the timing calls
    /// would otherwise be overhead on the hot batch path); 0.0 elsewhere.
    pub sched_wall_s: f64,
}

impl SimReport {
    /// Whether every job completed.
    pub fn all_completed(&self) -> bool {
        self.jobs_completed == self.jobs_submitted
    }
}

/// A configured simulation, ready to run one batch.
pub struct Simulation {
    cfg: SimConfig,
    layout: ClusterLayout,
    hops: HopModel,
    /// Congestion-scaled snapshot (§II-B3); `Some` iff
    /// [`SimConfig::network_condition`].
    sched_matrix: Option<DistanceMatrix>,
    sched_matrix_t: f64,
    /// Path-rate monitor; `Some` iff [`SimConfig::network_condition`] (the
    /// only consumer of its observations).
    monitor: Option<RateMonitor>,
    placer: Box<dyn TaskPlacer>,
    rng: SmallRng,
    now: f64,
    events: EventQueue,
    nodes: Vec<NodeState>,
    jobs: Vec<JobState>,
    arrived: Vec<bool>,
    transfers: TransferEngine,
    trace: Trace,
    /// Nodes with ≥1 free map slot, maintained incrementally beside
    /// `nodes[..].free_map` (the scan it replaces only tested `free_map >
    /// 0`, so membership is identical).
    map_free: FreeSet,
    /// Nodes with ≥1 free reduce slot.
    reduce_free: FreeSet,
    /// Cost-class partition of the active scheduling metric, when the
    /// incremental cost index is enabled and derivation succeeded.
    classes: Option<CostClasses>,
    /// Sticky: once the active metric fails to partition under the class
    /// cap, stop retrying for the rest of the run.
    class_derive_failed: bool,
    cost_index_enabled: bool,
    /// Ascending indices of jobs with `arrived && !terminated` — the
    /// membership (and order) of the old per-offer full-table scan.
    active_jobs: Vec<usize>,
    /// Subset of `active_jobs` with a non-empty unassigned-map queue.
    jobs_wanting_maps: Vec<usize>,
    jobs_done: usize,
    jobs_failed: usize,
    round: u64,
    backups: Vec<BackupTask>,
    observer: DecisionObserver,
    /// Fault log for the report (mirrors what the observer's sink sees).
    faults: Vec<FaultRecord>,
    /// Dedicated RNG for fault timing draws, so a plan with
    /// `transient_map_failure_p == 0` consumes nothing and the run stays
    /// byte-identical to a fault-free one.
    fault_rng: SmallRng,
    /// Crash nesting depth per node (overlapping crash windows: a node is
    /// up only when no window covers it).
    down_depth: Vec<u32>,
    /// Currently open link-degradation windows as `(plan index, factor)`.
    active_degr: Vec<(usize, f64)>,
    /// Multi-tenant service-mode runtime; `None` without
    /// [`SimConfig::tenancy`]. A passthrough config (single tenant, all
    /// policies off) keeps every scheduling path byte-identical to
    /// `None` — only arrival/departure counters tick.
    tenancy: Option<TenancyState>,
    /// Jobs rejected by admission control.
    jobs_rejected: usize,
    /// Wall-clock spent in `schedule_node` (non-passthrough tenancy only).
    sched_wall: std::time::Duration,
}

/// A speculative copy of a running map task.
struct BackupTask {
    job: usize,
    map: usize,
    node: NodeId,
    started: f64,
    cancelled: bool,
}

impl Simulation {
    /// Build a simulation over `cfg` with the given task-level placer.
    pub fn new(cfg: SimConfig, placer: Box<dyn TaskPlacer>) -> Self {
        let topo = cfg.build_topology();
        let layout = topo.layout().clone();
        // The congestion-scaled matrix of §II-B3 is inherently dense, so
        // `network_condition` forces the dense hop model; otherwise large
        // clusters get the class-compressed one (O(classes²) memory).
        let use_classed = !cfg.network_condition && cfg.n_nodes > 2048;
        let hops = if use_classed {
            HopModel::Classed(ClassedDistance::hops(&topo))
        } else {
            HopModel::Dense(DistanceMatrix::hops(&topo))
        };
        let (monitor, sched_matrix) = if cfg.network_condition {
            let dense = match &hops {
                HopModel::Dense(d) => d.clone(),
                HopModel::Classed(_) => unreachable!("network_condition forces dense hops"),
            };
            (Some(RateMonitor::new(cfg.n_nodes, cfg.monitor_alpha)), Some(dense))
        } else {
            (None, None)
        };
        let transfers = if cfg.fluid_network {
            TransferEngine::Fluid(Transfers::new(&topo))
        } else {
            TransferEngine::Nominal(NominalTransfers::new(cfg.n_nodes, cfg.nic_bps))
        };
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut nodes: Vec<NodeState> = (0..cfg.n_nodes)
            .map(|_| NodeState {
                free_map: cfg.map_slots,
                free_reduce: cfg.reduce_slots,
                speed: 1.0 + cfg.node_speed_spread * (rng.gen::<f64>() * 2.0 - 1.0),
                alive: true,
            })
            .collect();
        for &(idx, factor) in &cfg.slow_nodes {
            nodes[idx].speed = factor;
        }
        let mut map_free = FreeSet::new(cfg.n_nodes);
        let mut reduce_free = FreeSet::new(cfg.n_nodes);
        for (i, n) in nodes.iter().enumerate() {
            map_free.set(i, n.free_map > 0);
            reduce_free.set(i, n.free_reduce > 0);
        }
        let trace = Trace::new(cfg.total_map_slots(), cfg.total_reduce_slots());
        let cost_index_enabled = cfg.cost_index.unwrap_or(cfg.n_nodes > 64);
        Self {
            sched_matrix,
            sched_matrix_t: -1.0,
            transfers,
            layout,
            hops,
            monitor,
            placer,
            rng,
            now: 0.0,
            events: EventQueue::new(),
            nodes,
            jobs: Vec::new(),
            arrived: Vec::new(),
            trace,
            map_free,
            reduce_free,
            classes: None,
            class_derive_failed: false,
            cost_index_enabled,
            active_jobs: Vec::new(),
            jobs_wanting_maps: Vec::new(),
            jobs_done: 0,
            jobs_failed: 0,
            round: 0,
            backups: Vec::new(),
            observer: DecisionObserver::disabled(),
            faults: Vec::new(),
            fault_rng: SmallRng::seed_from_u64(cfg.seed ^ 0xfa17_0000_0000_00f2),
            down_depth: vec![0; cfg.n_nodes],
            active_degr: Vec::new(),
            tenancy: None,
            jobs_rejected: 0,
            sched_wall: std::time::Duration::ZERO,
            cfg,
        }
    }

    /// Route per-decision trace records into `sink`. Counters accumulate
    /// whether or not tracing is enabled; with the default
    /// [`pnats_obs::NullSink`] no record is ever built.
    pub fn with_trace(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.observer = DecisionObserver::with_sink(sink);
        self
    }

    /// Run the batch to completion (or `max_sim_time`) and report.
    pub fn run(mut self, inputs: &[JobInput]) -> SimReport {
        // --- Place blocks and build job state. ---
        // Writers come from each job's "ingest set" — the nodes that loaded
        // the data (HDFS puts the first replica on the writer). A fraction
        // of 1.0 degenerates to uniform writers.
        let policy = RackAware;
        let ingest_size = ((self.cfg.ingest_fraction * self.cfg.n_nodes as f64).ceil()
            as usize)
            .clamp(1, self.cfg.n_nodes);
        for (ji, input) in inputs.iter().enumerate() {
            let mut all_nodes: Vec<u32> = (0..self.cfg.n_nodes as u32).collect();
            for i in (1..all_nodes.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                all_nodes.swap(i, j);
            }
            let ingest = &all_nodes[..ingest_size];
            let replicas: Vec<Vec<NodeId>> = input
                .block_sizes
                .iter()
                .map(|_| match self.cfg.data_layout {
                    crate::config::DataLayout::HdfsRackAware => {
                        let writer = NodeId(ingest[self.rng.gen_range(0..ingest.len())]);
                        policy.place(writer, self.cfg.replication, &self.layout, &mut self.rng)
                    }
                    crate::config::DataLayout::IngestConfined => {
                        // All replicas within the ingest set (NAS/SAN-style).
                        let mut picks: Vec<NodeId> = Vec::new();
                        let want = self.cfg.replication.min(ingest.len());
                        while picks.len() < want {
                            let n = NodeId(ingest[self.rng.gen_range(0..ingest.len())]);
                            if !picks.contains(&n) {
                                picks.push(n);
                            }
                        }
                        picks
                    }
                })
                .collect();
            let job = JobState::new(
                JobId(ji as u32),
                input,
                replicas,
                self.cfg.n_nodes,
                &mut self.rng,
            );
            self.events.push(input.submit, EventKind::JobArrival { job: ji });
            self.jobs.push(job);
            self.arrived.push(false);
        }

        // --- Service mode: build the tenancy runtime, tag the decision
        // trace. Passthrough configs skip the tagging so their trace
        // stays byte-identical to a `tenancy: None` run. ---
        if let Some(tc) = self.cfg.tenancy.clone() {
            let tn = TenancyState::new(tc, inputs.len());
            if !tn.passthrough {
                let tags: Vec<u32> =
                    (0..inputs.len()).map(|j| tn.cfg.tenant_of(j) as u32).collect();
                self.observer.set_tenants(tags);
            }
            self.tenancy = Some(tn);
        }

        // --- Prime heartbeats (staggered) and background flows. ---
        let hb = self.cfg.heartbeat_s;
        for n in 0..self.cfg.n_nodes {
            let offset = hb * (n as f64 + 1.0) / self.cfg.n_nodes as f64;
            self.events.push(offset, EventKind::Heartbeat { node: NodeId(n as u32) });
        }
        for (i, bg) in self.cfg.background.clone().iter().enumerate() {
            self.events.push(bg.start, EventKind::BackgroundStart { idx: i });
            self.events.push(bg.end, EventKind::BackgroundStop { idx: i });
        }

        // --- Prime fault-plan events (nothing scheduled for an empty plan,
        // so `FaultPlan::none()` runs stay byte-identical). ---
        self.cfg
            .faults
            .validate(self.cfg.n_nodes)
            .expect("invalid fault plan");
        for (i, c) in self.cfg.faults.crashes.clone().iter().enumerate() {
            self.events.push(c.at, EventKind::NodeCrash { fault: i });
            if let Some(r) = c.recover_at {
                self.events.push(r, EventKind::NodeRecover { fault: i });
            }
        }
        for (i, d) in self.cfg.faults.link_degradations.clone().iter().enumerate() {
            self.events.push(d.from, EventKind::LinkDegradeStart { idx: i });
            self.events.push(d.until, EventKind::LinkDegradeEnd { idx: i });
        }

        // --- Main loop. ---
        while let Some((t, kind)) = self.events.pop() {
            if self.jobs_done == self.jobs.len() {
                break;
            }
            if t > self.cfg.max_sim_time {
                break;
            }
            debug_assert!(t >= self.now - 1e-9, "event time regression");
            self.now = t;
            self.dispatch(kind);
        }

        if let Some(stats) = self.placer.stats() {
            self.observer.absorb_placer(stats);
        }
        self.observer.flush();
        let trace_jsonl = self.observer.drain_jsonl();
        SimReport {
            scheduler: self.placer.name().to_string(),
            sim_end: self.now,
            jobs_submitted: self.jobs.len(),
            jobs_completed: self.jobs_done - self.jobs_failed - self.jobs_rejected,
            jobs_failed: self.jobs_failed,
            trace: self.trace,
            counters: self.observer.counters().clone(),
            trace_jsonl,
            faults: self.faults,
            jobs_rejected: self.jobs_rejected,
            tenants: self.tenancy.as_ref().map(TenancyState::run_stats).unwrap_or_default(),
            sched_wall_s: self.sched_wall.as_secs_f64(),
        }
    }

    /// Log one fault to the observer (counters + sink) and the report.
    fn record_fault(&mut self, kind: FaultKind, node: u32, job: Option<u32>, task: Option<u32>) {
        let rec = FaultRecord { t: self.now, kind, node, job, task };
        self.observer.observe_fault(&rec);
        self.faults.push(rec);
    }

    /// Whether an alive node's heartbeat is suppressed by a loss window.
    fn heartbeat_lost(&self, node: NodeId) -> bool {
        self.cfg
            .faults
            .heartbeat_losses
            .iter()
            .any(|w| w.node == node.idx() && w.from <= self.now && self.now < w.until)
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::JobArrival { job } => self.on_job_arrival(job),
            EventKind::Heartbeat { node } => {
                // Dead or partitioned nodes stay silent but keep their
                // heartbeat chain alive, so a recovered node resumes
                // scheduling without any re-priming (no deadlock when a
                // whole replica set dies and comes back).
                let alive = self.nodes[node.idx()].alive;
                let lost = alive && self.heartbeat_lost(node);
                if !alive || lost {
                    if lost {
                        self.record_fault(FaultKind::HeartbeatLost, node.idx() as u32, None, None);
                    }
                    self.events
                        .push(self.now + self.cfg.heartbeat_s, EventKind::Heartbeat { node });
                    return;
                }
                self.round += 1;
                self.placer.on_heartbeat_round(self.round);
                self.observer.begin_round(self.round);
                self.refresh_sched_matrix();
                self.ensure_classes();
                if self.tenancy.as_ref().is_some_and(|tn| !tn.passthrough) {
                    let t0 = std::time::Instant::now();
                    self.schedule_node(node);
                    self.sched_wall += t0.elapsed();
                    self.maybe_preempt();
                } else {
                    self.schedule_node(node);
                }
                self.events
                    .push(self.now + self.cfg.heartbeat_s, EventKind::Heartbeat { node });
            }
            EventKind::TransferWake { version } => {
                if version != self.transfers.version() {
                    return; // stale prediction
                }
                let done = self.transfers.reap(self.now);
                for c in done {
                    self.handle_completion(c);
                }
                self.arm_transfer_wake();
            }
            EventKind::MapDone { job, map, run } => self.on_map_done(job, map, run),
            EventKind::MapFailed { job, map, run } => self.on_map_failed(job, map, run),
            EventKind::BackupDone { idx } => self.on_backup_done(idx),
            EventKind::ReduceDone { job, reduce, run } => self.on_reduce_done(job, reduce, run),
            EventKind::NodeCrash { fault } => self.on_node_crash(fault),
            EventKind::NodeRecover { fault } => self.on_node_recover(fault),
            EventKind::LinkDegradeStart { idx } => self.on_link_degrade(idx, true),
            EventKind::LinkDegradeEnd { idx } => self.on_link_degrade(idx, false),
            EventKind::BackgroundStart { idx } => {
                let bg = self.cfg.background[idx];
                self.transfers.start(
                    self.now,
                    NodeId(bg.src as u32),
                    NodeId(bg.dst as u32),
                    f64::INFINITY,
                    TransferTag::Background { idx },
                );
                self.arm_transfer_wake();
            }
            EventKind::BackgroundStop { idx } => {
                self.transfers.cancel(self.now, TransferTag::Background { idx });
                self.arm_transfer_wake();
            }
        }
    }

    /// A job's submission reaches the tracker. In service mode the
    /// admission gate runs first: a rejected job never arrives — it gets
    /// no tasks, no JobRecord, and counts as neither completed nor
    /// failed (it holds a `JobRejected` fault record instead).
    fn on_job_arrival(&mut self, ji: usize) {
        if self.tenancy.is_some() {
            let check = self.tenancy.as_ref().expect("checked").cfg.admission;
            let backlog = if check { self.backlog_tasks() } else { 0 };
            let total_slots = self.cfg.total_map_slots() + self.cfg.total_reduce_slots();
            let tn = self.tenancy.as_mut().expect("checked");
            let t = tn.cfg.tenant_of(ji);
            let decision = if check {
                pnats_tenancy::admit(
                    tn.cfg.tenants.get(t),
                    tn.in_system[t] as usize,
                    backlog,
                    total_slots,
                    tn.cfg.saturation_backlog,
                )
            } else {
                AdmissionDecision::Admit
            };
            match decision {
                AdmissionDecision::Admit => tn.admit_job(t),
                AdmissionDecision::Reject(reason) => {
                    tn.counters[t].record_reject(reason);
                    // Terminate the job without arriving: `failed` makes
                    // `terminated()` true so no index ever admits it, but
                    // `jobs_failed` stays put — rejection is its own
                    // outcome in the report's accounting.
                    self.jobs[ji].failed = true;
                    self.jobs_done += 1;
                    self.jobs_rejected += 1;
                    self.record_fault(FaultKind::JobRejected, 0, Some(ji as u32), None);
                    return;
                }
            }
        }
        self.arrived[ji] = true;
        self.refresh_active(ji);
    }

    /// Cluster-wide unassigned tasks across admitted, unfinished jobs —
    /// the saturation signal the admission gate thresholds on.
    fn backlog_tasks(&self) -> u64 {
        self.active_jobs
            .iter()
            .map(|&j| {
                let job = &self.jobs[j];
                (job.unassigned_maps.len() + job.unassigned_reduces.len()) as u64
            })
            .sum()
    }

    /// Min-share enforcement, once per heartbeat after normal scheduling:
    /// if some tenant with a configured minimum map share is starved (has
    /// demand, holds less than its floor, and the cluster has no free map
    /// slot to give it), kill the most recently assigned running map of
    /// the most over-served tenant and requeue it — PR 3's crash-recovery
    /// path, so the exactly-once oracle laws hold unchanged.
    fn maybe_preempt(&mut self) {
        let Some(tn) = self.tenancy.as_ref() else { return };
        if !tn.cfg.preemption {
            return;
        }
        if self.now - tn.last_preempt_t < tn.cfg.preempt_cooldown_s {
            return;
        }
        if self.map_free.total() > 0 {
            return; // a free slot exists — scheduling, not preemption, fixes starvation
        }
        let n = tn.cfg.tenants.len();
        let total = self.cfg.total_map_slots() as f64;
        let total_weight = tn.cfg.tenants.total_weight();
        let mut running = vec![0usize; n];
        for (t, list) in tn.active.iter().enumerate() {
            running[t] = list.iter().map(|&j| self.jobs[j].running_maps.len()).sum();
        }
        // Lowest tenant id wins ties: deterministic.
        let Some(starved) = (0..n).find(|&t| {
            let spec = tn.cfg.tenants.get(t);
            spec.min_share > 0.0
                && !tn.wanting_maps[t].is_empty()
                && (running[t] as f64) < (spec.min_share * total).floor()
        }) else {
            return;
        };
        // Victim tenant: most over-served per unit weight, and strictly
        // above its weighted fair share (preempting an under-share tenant
        // would just move the starvation).
        let victim_t = (0..n)
            .filter(|&t| t != starved)
            .filter(|&t| running[t] as f64 > total * tn.cfg.tenants.get(t).weight / total_weight)
            .max_by(|&a, &b| {
                let ka = running[a] as f64 / tn.cfg.tenants.get(a).weight;
                let kb = running[b] as f64 / tn.cfg.tenants.get(b).weight;
                ka.total_cmp(&kb).then(b.cmp(&a))
            });
        let Some(victim_t) = victim_t else { return };
        // Victim attempt: the most recently assigned running map — the
        // cheapest to redo. Ties (same assignment heartbeat) break on the
        // highest (job, map) id, still deterministic.
        let mut best: Option<(f64, usize, usize)> = None;
        for &j in &tn.active[victim_t] {
            for &m in &self.jobs[j].running_maps {
                let key = (self.jobs[j].maps[m].assigned_t, j, m);
                if best.is_none_or(|b| (key.0, key.1, key.2) > b) {
                    best = Some(key);
                }
            }
        }
        let Some((_, ji, map)) = best else { return };
        // Tear down an in-flight block fetch before the kill (the
        // contract `kill_map_attempt` documents).
        let node = self.jobs[ji].maps[map].node().expect("running map has a node");
        if matches!(self.jobs[ji].maps[map].phase, MapPhase::Fetching { .. }) {
            self.transfers.cancel(self.now, TransferTag::MapFetch { job: ji, map });
            self.arm_transfer_wake();
        }
        self.record_fault(
            FaultKind::MapPreempted,
            node.idx() as u32,
            Some(ji as u32),
            Some(map as u32),
        );
        self.kill_map_attempt(ji, map);
        let tn = self.tenancy.as_mut().expect("checked");
        tn.counters[victim_t].preempted += 1;
        tn.last_preempt_t = self.now;
    }

    /// Re-arm the single pending transfer wake-up.
    fn arm_transfer_wake(&mut self) {
        if let Some((t, v)) = self.transfers.next_wake() {
            self.events
                .push(t.max(self.now), EventKind::TransferWake { version: v });
        }
    }

    /// Refresh the scheduler-facing cost matrix (at most once per
    /// heartbeat interval; it is a full n² snapshot).
    fn refresh_sched_matrix(&mut self) {
        let Some(monitor) = &self.monitor else { return };
        if self.now - self.sched_matrix_t < self.cfg.heartbeat_s * 0.999 {
            return;
        }
        let dense = match &self.hops {
            HopModel::Dense(d) => d,
            HopModel::Classed(_) => unreachable!("network_condition forces dense hops"),
        };
        let sm = self.sched_matrix.as_mut().expect("sched_matrix present with monitor");
        let next_version = sm.version() + 1;
        *sm = monitor.congestion_scaled_matrix(dense, self.cfg.nic_bps);
        // Each snapshot gets a fresh revision so placer-side caches keyed on
        // `PathCost::version` notice the change.
        sm.set_version(next_version);
        self.sched_matrix_t = self.now;
    }

    /// Keep the cost-class partition in sync with the active scheduling
    /// metric. Cheap when nothing changed (version check); re-derives only
    /// after a congestion-matrix refresh.
    fn ensure_classes(&mut self) {
        if !self.cost_index_enabled || self.class_derive_failed {
            return;
        }
        let cost: &dyn PathCost = match (&self.sched_matrix, &self.hops) {
            (Some(m), _) => m,
            (None, HopModel::Dense(d)) => d,
            (None, HopModel::Classed(c)) => c,
        };
        if let Some(cls) = &self.classes {
            if cls.version() == cost.version() {
                return;
            }
        }
        let cap = 64.min(4.max(self.cfg.n_nodes / 4));
        let derived = match (&self.sched_matrix, &self.hops) {
            (None, HopModel::Classed(cd)) => {
                // The classed metric already carries its partition — reuse
                // it instead of re-clustering O(n) columns.
                Some(CostClasses::from_class_map(cd.class_of(), cd))
            }
            _ => CostClasses::derive(cost, cap),
        };
        match derived {
            Some(cls) if cls.n_classes() <= cap => {
                self.map_free.set_classes(cls.class_of(), cls.n_classes());
                self.reduce_free.set_classes(cls.class_of(), cls.n_classes());
                self.classes = Some(cls);
            }
            _ => {
                // Metric does not partition under the cap (e.g. heavily
                // congestion-skewed) — fall back to reference costing for
                // the rest of the run.
                self.class_derive_failed = true;
                self.classes = None;
                self.map_free.clear_classes();
                self.reduce_free.clear_classes();
            }
        }
    }

    /// Sync `active_jobs` / `jobs_wanting_maps` membership for job `ji`
    /// after any change to its arrived/terminated status.
    fn refresh_active(&mut self, ji: usize) {
        let wanted = self.arrived[ji] && !self.jobs[ji].terminated();
        match self.active_jobs.binary_search(&ji) {
            Ok(pos) if !wanted => {
                self.active_jobs.remove(pos);
            }
            Err(pos) if wanted => self.active_jobs.insert(pos, ji),
            _ => {}
        }
        if let Some(tn) = &mut self.tenancy {
            if tn.track_demand() {
                tn.set_active(ji, wanted);
            }
        }
        self.refresh_wants_maps(ji);
    }

    /// Sync `jobs_wanting_maps` membership for job `ji` after any change
    /// to its unassigned-map queue.
    fn refresh_wants_maps(&mut self, ji: usize) {
        let wanted = self.arrived[ji]
            && !self.jobs[ji].terminated()
            && !self.jobs[ji].unassigned_maps.is_empty();
        match self.jobs_wanting_maps.binary_search(&ji) {
            Ok(pos) if !wanted => {
                self.jobs_wanting_maps.remove(pos);
            }
            Err(pos) if wanted => self.jobs_wanting_maps.insert(pos, ji),
            _ => {}
        }
        if let Some(tn) = &mut self.tenancy {
            if tn.track_demand() {
                tn.set_wants_maps(ji, wanted);
            }
        }
    }

    /// Mirror `nodes[n].free_map` into the incremental free set. Must be
    /// called after every mutation of the slot counter.
    fn free_map_changed(&mut self, n: NodeId) {
        self.map_free.set(n.idx(), self.nodes[n.idx()].free_map > 0);
    }

    /// Mirror `nodes[n].free_reduce` into the incremental free set.
    fn free_reduce_changed(&mut self, n: NodeId) {
        self.reduce_free.set(n.idx(), self.nodes[n.idx()].free_reduce > 0);
    }

    /// Jobs eligible for scheduling of one slot type, in Hadoop Fair
    /// Scheduler order: jobs *below their fair share* of that slot type
    /// first (fewest running tasks of the type breaks ties), jobs at or
    /// above their share after them (work conservation — idle slots go to
    /// over-share jobs rather than nobody).
    fn fair_order(&self, demanding: &[usize], running_of: impl Fn(&JobState) -> usize, total_slots: u64) -> Vec<usize> {
        if demanding.is_empty() {
            return Vec::new();
        }
        let share = (total_slots as usize).div_ceil(demanding.len());
        let mut order = demanding.to_vec();
        order.sort_by_key(|&j| {
            let running = running_of(&self.jobs[j]);
            (running >= share, running, j)
        });
        order
    }

    /// Fill `node`'s free slots.
    fn schedule_node(&mut self, node: NodeId) {
        // Map slots: HEAD-OF-LINE. The fair-share head job gets the offer;
        // if its task-level policy declines (delay scheduling waiting for
        // locality, a probability gate firing low), the slot stays idle
        // until the next heartbeat. This is Hadoop 1.x semantics and the
        // under-utilization mechanism the paper (and Coupling's authors)
        // ascribe to delay scheduling — a declined slot is a real cost.
        loop {
            if self.nodes[node.idx()].free_map == 0 {
                break;
            }
            // `jobs_wanting_maps` is exactly the old full-table scan's
            // result (ascending ids; membership maintained incrementally).
            #[cfg(debug_assertions)]
            {
                let scan: Vec<usize> = (0..self.jobs.len())
                    .filter(|&j| {
                        self.arrived[j]
                            && !self.jobs[j].terminated()
                            && !self.jobs[j].unassigned_maps.is_empty()
                    })
                    .collect();
                debug_assert_eq!(scan, self.jobs_wanting_maps, "jobs_wanting_maps desync");
            }
            if self.jobs_wanting_maps.is_empty() {
                break;
            }
            // With weighted fair sharing on, the DWRR arbiter first
            // decides which *tenant* this slot belongs to; the classic
            // head-of-line rule then runs within that tenant's jobs. The
            // arbiter charges the winner one slot up front — refunded if
            // the task-level placer declines the offer (the slot stays
            // idle, so nobody was served).
            let (head, charged) = match self.tenancy.as_mut().filter(|tn| tn.cfg.fairness) {
                Some(tn) => {
                    #[cfg(debug_assertions)]
                    {
                        let mut merged: Vec<usize> =
                            tn.wanting_maps.iter().flatten().copied().collect();
                        merged.sort_unstable();
                        debug_assert_eq!(
                            merged, self.jobs_wanting_maps,
                            "tenant demand partition desync"
                        );
                    }
                    let t = tn.arbiter.pick(&tn.demanding);
                    let list = &tn.wanting_maps[t];
                    let share = (self.cfg.total_map_slots() as usize).div_ceil(list.len());
                    let jobs = &self.jobs;
                    let head = list
                        .iter()
                        .copied()
                        .min_by_key(|&j| {
                            let running = jobs[j].running_maps.len();
                            (running >= share, running, j)
                        })
                        .expect("demanding tenant has a job wanting maps");
                    (head, Some(t))
                }
                None => {
                    // Head-of-line job under the fair-share order, without
                    // materializing the full sort: the `(over-share,
                    // running, id)` key is unique per job (the id
                    // component), so `min_by_key` picks exactly
                    // `fair_order(..).first()`.
                    let share = (self.cfg.total_map_slots() as usize)
                        .div_ceil(self.jobs_wanting_maps.len());
                    let head = self
                        .jobs_wanting_maps
                        .iter()
                        .copied()
                        .min_by_key(|&j| {
                            let running = self.jobs[j].running_maps.len();
                            (running >= share, running, j)
                        })
                        .expect("non-empty demand set");
                    (head, None)
                }
            };
            match self.offer_map(head, node) {
                Some(map) => self.assign_map(head, map, node),
                None => {
                    if let Some(t) = charged {
                        self.tenancy.as_mut().expect("charged implies tenancy").arbiter.refund(t);
                    }
                    break;
                }
            }
        }
        // Speculative execution: with free map slots, no pending maps in
        // the head job, and a straggling copy, launch one backup.
        if self.cfg.speculation_lag > 0.0 && self.nodes[node.idx()].free_map > 0 {
            self.try_speculate(node);
        }
        // Reduce slots.
        loop {
            if self.nodes[node.idx()].free_reduce == 0 {
                break;
            }
            // `active_jobs` is exactly the `arrived && !terminated` subset
            // in ascending order, so filtering it matches the old full scan.
            let demanding: Vec<usize> = self
                .active_jobs
                .iter()
                .copied()
                .filter(|&j| {
                    let job = &self.jobs[j];
                    if job.unassigned_reduces.is_empty() {
                        return false;
                    }
                    // Hadoop slowstart: a fraction of maps must have finished.
                    let gate = (self.cfg.slowstart * job.maps.len() as f64).ceil() as usize;
                    job.maps_finished >= gate.min(job.maps.len())
                })
                .collect();
            // Hard share cap on reduce slots: running reduces hold their
            // slot for the job's whole shuffle, so without a cap the first
            // jobs past slowstart would monopolize the pool for the rest
            // of the batch (Fair Scheduler enforces shares per slot type).
            let share = if demanding.is_empty() {
                0
            } else {
                (self.cfg.total_reduce_slots() as usize).div_ceil(demanding.len())
            };
            let eligible: Vec<usize> = demanding
                .iter()
                .copied()
                .filter(|&j| self.jobs[j].reduce_nodes.len() < share)
                .collect();
            let order = match self.tenancy.as_ref().filter(|tn| tn.cfg.fairness) {
                Some(tn) => {
                    // Weighted least-service across tenants: reduce slots
                    // are held for a job's whole shuffle, so instead of a
                    // slot-by-slot arbiter the tenant holding the least
                    // service per unit weight goes first; within a tenant
                    // the classic fair-share key applies.
                    let n = tn.cfg.tenants.len();
                    let mut held = vec![0usize; n];
                    for (t, list) in tn.active.iter().enumerate() {
                        held[t] =
                            list.iter().map(|&j| self.jobs[j].reduce_nodes.len()).sum();
                    }
                    let mut order = eligible.clone();
                    order.sort_by(|&a, &b| {
                        let (ta, tb) = (tn.cfg.tenant_of(a), tn.cfg.tenant_of(b));
                        let ka = held[ta] as f64 / tn.cfg.tenants.get(ta).weight;
                        let kb = held[tb] as f64 / tn.cfg.tenants.get(tb).weight;
                        let (ra, rb) =
                            (self.jobs[a].reduce_nodes.len(), self.jobs[b].reduce_nodes.len());
                        ka.total_cmp(&kb)
                            .then(ta.cmp(&tb))
                            .then((ra >= share, ra, a).cmp(&(rb >= share, rb, b)))
                    });
                    order
                }
                None => self.fair_order(
                    &eligible,
                    |j| j.reduce_nodes.len(),
                    self.cfg.total_reduce_slots(),
                ),
            };
            let mut assigned = false;
            for ji in order {
                if let Some(red) = self.offer_reduce(ji, node) {
                    self.assign_reduce(ji, red, node);
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                break;
            }
        }
    }

    /// Offer one map slot on `node` for job `ji`; returns the chosen map
    /// task index, if any.
    fn offer_map(&mut self, ji: usize, node: NodeId) -> Option<usize> {
        // Node-local candidates first (Hadoop's per-node task cache), then
        // the head of the pending queue up to the window size.
        let mut window = self.jobs[ji].local_unassigned_on(node, 8);
        let job = &self.jobs[ji];
        for m in job.unassigned_maps.iter() {
            if window.len() >= self.cfg.map_candidate_window {
                break;
            }
            if !window.contains(&m) {
                window.push(m);
            }
        }
        let candidates: Vec<_> = window.iter().map(|&m| job.map_cands[m].clone()).collect();
        let cost: &dyn PathCost = match (&self.sched_matrix, &self.hops) {
            (Some(m), _) => m,
            (None, HopModel::Dense(d)) => d,
            (None, HopModel::Classed(c)) => c,
        };
        self.map_free.ensure_list();
        let free = self.map_free.list();
        // Liveness filter (runtime, not placer): a map is schedulable only
        // while at least one replica of its block is on a live node. If the
        // whole window is data-dead, record a NodeDead skip so the offer
        // identity (`offers = assigns + skips`) still holds.
        let live_window: Vec<usize> = window
            .iter()
            .copied()
            .filter(|&m| {
                self.jobs[ji].map_cands[m]
                    .replicas
                    .iter()
                    .any(|r| self.nodes[r.idx()].alive)
            })
            .collect();
        if live_window.is_empty() && !window.is_empty() {
            let ctx = MapSchedContext::new(
                self.jobs[ji].id,
                &candidates,
                free,
                cost,
                &self.layout,
            )
            .at(self.now);
            self.observer
                .observe_map(&ctx, node, Decision::Skip(SkipReason::NodeDead), None);
            self.trace.skipped_offers += 1;
            return None;
        }
        let window = live_window;
        let candidates: Vec<_> =
            window.iter().map(|&m| self.jobs[ji].map_cands[m].clone()).collect();
        let job = &self.jobs[ji];
        let mut ctx = MapSchedContext::new(
            job.id,
            &candidates,
            free,
            cost,
            &self.layout,
        )
        .at(self.now);
        if let Some(cls) = &self.classes {
            ctx = ctx.with_cost_view(CostView {
                classes: Some(cls),
                free_counts: self.map_free.counts(),
                free_bits: self.map_free.words(),
                total_free: self.map_free.total(),
                generation: self.map_free.generation(),
            });
        }
        let decision = self.placer.place_map(&ctx, node, &mut self.rng);
        self.observer
            .observe_map(&ctx, node, decision, self.placer.last_detail());
        match decision {
            Decision::Assign(i) => Some(window[i]),
            Decision::Skip(_) => {
                self.trace.skipped_offers += 1;
                None
            }
        }
    }

    /// Offer one reduce slot on `node` for job `ji`.
    fn offer_reduce(&mut self, ji: usize, node: NodeId) -> Option<usize> {
        let job = &self.jobs[ji];
        let window: Vec<usize> = job
            .unassigned_reduces
            .iter()
            .take(self.cfg.reduce_candidate_window)
            .collect();
        let mut candidates = Vec::with_capacity(window.len());
        let mut scratch = Vec::new();
        for &f in &window {
            job.shuffle_sources(f, self.now, &mut scratch);
            candidates.push(ReduceCandidate {
                task: ReduceTaskId { job: job.id, index: f as u32 },
                sources: scratch.clone(),
            });
        }
        let cost: &dyn PathCost = match (&self.sched_matrix, &self.hops) {
            (Some(m), _) => m,
            (None, HopModel::Dense(d)) => d,
            (None, HopModel::Classed(c)) => c,
        };
        self.reduce_free.ensure_list();
        let free = self.reduce_free.list();
        let job = &self.jobs[ji];
        let launched = job.reduces.len() - job.unassigned_reduces.len();
        let mut ctx = ReduceSchedContext::new(
            job.id,
            &candidates,
            free,
            cost,
            &self.layout,
        )
        .running_on(&job.reduce_nodes)
        .map_phase(job.map_work_progress(self.now), job.maps_finished, job.maps.len())
        .reduce_phase(launched, job.reduces.len())
        .at(self.now);
        if let Some(cls) = &self.classes {
            ctx = ctx.with_cost_view(CostView {
                classes: Some(cls),
                free_counts: self.reduce_free.counts(),
                free_bits: self.reduce_free.words(),
                total_free: self.reduce_free.total(),
                generation: self.reduce_free.generation(),
            });
        }
        let decision = self.placer.place_reduce(&ctx, node, &mut self.rng);
        self.observer
            .observe_reduce(&ctx, node, decision, self.placer.last_detail());
        match decision {
            Decision::Assign(i) => Some(window[i]),
            Decision::Skip(_) => {
                self.trace.skipped_offers += 1;
                None
            }
        }
    }

    fn map_locality(&self, ji: usize, map: usize, node: NodeId) -> LocalityClass {
        let cand = &self.jobs[ji].map_cands[map];
        if cand.is_local_to(node) {
            LocalityClass::NodeLocal
        } else if cand.is_rack_local_to(node, &self.layout) {
            LocalityClass::RackLocal
        } else {
            LocalityClass::Remote
        }
    }

    fn assign_map(&mut self, ji: usize, map: usize, node: NodeId) {
        debug_assert!(self.nodes[node.idx()].free_map > 0);
        self.nodes[node.idx()].free_map -= 1;
        self.free_map_changed(node);
        self.trace.map_util.start(self.now);

        let locality = self.map_locality(ji, map, node);
        let noise = self.cfg.partition_noise;
        let job = &mut self.jobs[ji];
        assert!(job.unassigned_maps.remove(map), "assigning an unassigned map");
        job.running_tasks += 1;
        job.running_maps.push(map);
        if job.maps[map].weights.is_empty() {
            // First attempt only: re-executions must reproduce the same
            // output (sizes already folded into reducer accounting) and
            // must not perturb the shared RNG stream.
            job.materialize_map_output(map, noise, &mut self.rng);
        }
        job.maps[map].assigned_t = self.now;
        job.maps[map].locality = locality;

        // Fetch from the nearest *live* replica (by physical hops), then
        // compute. `offer_map` guarantees at least one replica is alive.
        let (src, dist) = {
            let cand = &job.map_cands[map];
            cand.replicas
                .iter()
                .filter(|r| self.nodes[r.idx()].alive)
                .map(|&r| (r, self.hops.get(node, r)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("offer_map filters to maps with a live replica")
        };
        if dist == 0.0 {
            self.start_map_compute(ji, map, node);
        } else {
            let bytes = self.jobs[ji].maps[map].block as f64;
            self.jobs[ji].maps[map].phase = MapPhase::Fetching { node };
            let done = self.transfers.start(
                self.now,
                src,
                node,
                bytes,
                TransferTag::MapFetch { job: ji, map },
            );
            match done {
                Some(c) => self.handle_completion(c),
                None => self.arm_transfer_wake(),
            }
        }
        self.refresh_wants_maps(ji);
    }

    fn start_map_compute(&mut self, ji: usize, map: usize, node: NodeId) {
        let speed = self.nodes[node.idx()].speed;
        let jitter = 1.0 + self.cfg.task_jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
        let block = self.jobs[ji].maps[map].block as f64;
        let duration = (block / (self.cfg.map_rate_bps * speed * jitter)).max(1e-6);
        self.jobs[ji].maps[map].phase =
            MapPhase::Computing { node, start: self.now, duration };
        let (run, attempt) = {
            let m = &mut self.jobs[ji].maps[map];
            m.attempts += 1;
            (m.run, m.attempts)
        };
        // Transient-failure draw: keyed on (job, map, attempt) rather than
        // drawn from a stream, so the verdict is independent of execution
        // order (the wall-clock engine shares it). `none()` plans never
        // reach the hash.
        let fails = self.cfg.faults.transient_map_failure_p > 0.0
            && self
                .cfg
                .faults
                .map_attempt_fails(self.cfg.seed, (ji << 20) | map, attempt);
        if fails {
            let frac = 0.05 + 0.9 * self.fault_rng.gen::<f64>();
            self.events.push(
                self.now + duration * frac,
                EventKind::MapFailed { job: ji, map, run },
            );
        } else {
            self.events
                .push(self.now + duration, EventKind::MapDone { job: ji, map, run });
        }
    }

    fn on_map_done(&mut self, ji: usize, map: usize, run: u32) {
        if self.jobs[ji].maps[map].run != run {
            return; // stale: this attempt was killed (crash, retry or lost race)
        }
        let node = self.jobs[ji].maps[map].node().expect("done map has a node");
        self.nodes[node.idx()].free_map += 1;
        self.free_map_changed(node);
        self.trace.map_util.end(self.now);
        if self.jobs[ji].maps[map].is_done() {
            // Defensive: completions bump no run, so a duplicate event for
            // a done map should not exist; just release the slot.
            return;
        }
        // Kill any outstanding backup of this task (the primary won).
        self.cancel_backups_of(ji, Some(map));
        self.finish_map(ji, map, node);
    }

    /// A map attempt died with a retryable failure: release the slot,
    /// retire the attempt and either requeue the task or — once the retry
    /// budget is spent — fail the whole job.
    fn on_map_failed(&mut self, ji: usize, map: usize, run: u32) {
        if self.jobs[ji].maps[map].run != run {
            return; // stale: attempt already killed by a crash or race
        }
        let node = self.jobs[ji].maps[map].node().expect("failing map has a node");
        // The hosting node must still be up: its crash would have bumped
        // `run` and made this event stale.
        self.nodes[node.idx()].free_map += 1;
        self.free_map_changed(node);
        self.trace.map_util.end(self.now);
        let attempts = {
            let m = &mut self.jobs[ji].maps[map];
            m.run += 1;
            m.phase = MapPhase::Unassigned;
            m.attempts
        };
        if let Some(pos) = self.jobs[ji].running_maps.iter().position(|x| *x == map) {
            self.jobs[ji].running_maps.swap_remove(pos);
        }
        self.jobs[ji].running_tasks -= 1;
        self.cancel_backups_of(ji, Some(map));
        self.record_fault(
            FaultKind::TransientFailure,
            node.idx() as u32,
            Some(ji as u32),
            Some(map as u32),
        );
        if attempts >= self.cfg.faults.max_attempts {
            self.fail_job(ji, node);
        } else {
            self.requeue_map(ji, map);
        }
    }

    /// Put an unassigned map back on the queues (pending list + per-node
    /// locality cache), deduplicating both.
    fn requeue_map(&mut self, ji: usize, map: usize) {
        let job = &mut self.jobs[ji];
        if !job.unassigned_maps.contains(map) {
            job.unassigned_maps.push_back(map);
        }
        let reps: Vec<NodeId> = job.map_cands[map].replicas.clone();
        for r in reps {
            let cache = job.local_maps.entry(r.0).or_default();
            if !cache.contains(&(map as u32)) {
                cache.push(map as u32);
            }
        }
        self.refresh_wants_maps(ji);
    }

    /// Cancel live backups of one map (or of a whole job with `None`),
    /// releasing their slots on live nodes.
    fn cancel_backups_of(&mut self, ji: usize, map: Option<usize>) {
        for b in &mut self.backups {
            if b.job == ji && !b.cancelled && map.is_none_or(|m| b.map == m) {
                b.cancelled = true;
                if self.nodes[b.node.idx()].alive {
                    self.nodes[b.node.idx()].free_map += 1;
                    self.map_free.set(b.node.idx(), true);
                }
                self.trace.map_util.end(self.now);
                self.trace.backups_cancelled += 1;
            }
        }
    }

    /// Common completion path for primaries and winning backups.
    fn finish_map(&mut self, ji: usize, map: usize, node: NodeId) {
        self.jobs[ji].complete_map(map, node, self.now);
        self.jobs[ji].running_tasks -= 1;
        // A winning backup may have run elsewhere than the original
        // placement; record the locality of where the work actually ran.
        let locality = self.map_locality(ji, map, node);
        self.jobs[ji].maps[map].locality = locality;

        let m = &self.jobs[ji].maps[map];
        let net_bytes = match m.locality {
            LocalityClass::NodeLocal => 0.0,
            _ => m.block as f64,
        };
        self.trace.tasks.push(TaskRecord {
            job: ji,
            kind: TaskKind::Map,
            index: map,
            node: node.idx(),
            assigned: m.assigned_t,
            finished: self.now,
            locality: m.locality,
            net_bytes,
            epoch: m.epoch,
        });

        // Push this map's output toward every running reduce.
        let n_reduces = self.jobs[ji].reduces.len();
        for f in 0..n_reduces {
            let phase = self.jobs[ji].reduces[f].phase.clone();
            if let ReducePhase::Shuffling { .. } = phase {
                let bytes = self.jobs[ji].maps[map].final_bytes_for(f);
                self.jobs[ji].reduces[f].enqueue(node, bytes);
                self.kick_copiers(ji, f);
                self.try_finish_shuffle(ji, f);
            }
        }
        self.check_job_done(ji);
    }

    /// Launch at most one speculative backup on `node` for the fair-order
    /// head job whose map queue is drained but whose slowest running map
    /// lags the job's mean progress by `speculation_lag`.
    fn try_speculate(&mut self, node: NodeId) {
        let lag = self.cfg.speculation_lag;
        let now = self.now;
        // `active_jobs` is the ascending `arrived && !terminated` subset, so
        // walking it visits exactly the jobs the old full scan kept.
        let active = self.active_jobs.clone();
        for ji in active {
            let job = &self.jobs[ji];
            if !job.unassigned_maps.is_empty() || job.running_maps.is_empty() {
                continue;
            }
            // Progress fractions of running maps.
            let fracs: Vec<(usize, f64)> = job
                .running_maps
                .iter()
                .map(|&m| {
                    let t = &job.maps[m];
                    (m, t.input_read(now) as f64 / t.block.max(1) as f64)
                })
                .collect();
            let mean = fracs.iter().map(|(_, f)| f).sum::<f64>() / fracs.len() as f64;
            let Some(&(victim, frac)) = fracs
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .filter(|(_, f)| mean - f >= lag)
            else {
                continue;
            };
            let _ = frac;
            // One backup per task; never on the straggler's own node.
            if self
                .backups
                .iter()
                .any(|b| b.job == ji && b.map == victim && !b.cancelled)
                || job.maps[victim].node() == Some(node)
            {
                continue;
            }
            // Launch the backup from scratch on this node.
            self.nodes[node.idx()].free_map -= 1;
            self.free_map_changed(node);
            self.trace.map_util.start(now);
            let speed = self.nodes[node.idx()].speed;
            let jitter = 1.0 + self.cfg.task_jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
            let block = self.jobs[ji].maps[victim].block as f64;
            // Backups re-read their input; approximate a remote fetch at
            // nominal NIC rate rather than opening a flow.
            let fetch = block / self.cfg.nic_bps;
            let duration = fetch + block / (self.cfg.map_rate_bps * speed * jitter);
            let idx = self.backups.len();
            self.backups
                .push(BackupTask { job: ji, map: victim, node, started: now, cancelled: false });
            self.trace.backups_launched += 1;
            self.events.push(now + duration, EventKind::BackupDone { idx });
            return;
        }
    }

    /// A speculative copy finished (or fires stale after cancellation).
    fn on_backup_done(&mut self, idx: usize) {
        if self.backups[idx].cancelled {
            return; // loser already reaped when the primary finished
        }
        let (ji, map, node, started) = {
            let b = &self.backups[idx];
            (b.job, b.map, b.node, b.started)
        };
        self.backups[idx].cancelled = true;
        self.nodes[node.idx()].free_map += 1;
        self.free_map_changed(node);
        self.trace.map_util.end(self.now);
        if self.jobs[ji].maps[map].is_done() || self.jobs[ji].terminated() {
            // Defensive: primary completions and job teardown cancel their
            // backups, so a live backup should always find a live primary.
            self.trace.backups_cancelled += 1;
            return;
        }
        // The backup wins: kill the losing primary *now* (free its slot,
        // stale-out its MapDone via the run bump) and credit the completion
        // to the backup's node and start time.
        let pnode = self.jobs[ji].maps[map].node().expect("racing primary is placed");
        if matches!(self.jobs[ji].maps[map].phase, MapPhase::Fetching { .. }) {
            self.transfers
                .cancel(self.now, TransferTag::MapFetch { job: ji, map });
            self.arm_transfer_wake();
        }
        if self.nodes[pnode.idx()].alive {
            self.nodes[pnode.idx()].free_map += 1;
            self.free_map_changed(pnode);
        }
        self.trace.map_util.end(self.now);
        self.jobs[ji].maps[map].run += 1;
        self.jobs[ji].maps[map].assigned_t = started;
        self.trace.backups_won += 1;
        self.trace.losers_killed += 1;
        self.finish_map(ji, map, node);
    }

    fn assign_reduce(&mut self, ji: usize, f: usize, node: NodeId) {
        debug_assert!(self.nodes[node.idx()].free_reduce > 0);
        self.nodes[node.idx()].free_reduce -= 1;
        self.free_reduce_changed(node);
        self.trace.reduce_util.start(self.now);

        let job = &mut self.jobs[ji];
        assert!(job.unassigned_reduces.remove(f), "assigning an unassigned reduce");
        job.running_tasks += 1;
        job.reduce_nodes.push(node);
        job.reduces[f].phase = ReducePhase::Shuffling { node };
        job.reduces[f].assigned_t = self.now;

        // Pull everything already finished.
        job.enqueue_finished_outputs(f);
        self.kick_copiers(ji, f);
        self.try_finish_shuffle(ji, f);
    }

    /// Start queued shuffle fetches up to the copier limit.
    fn kick_copiers(&mut self, ji: usize, f: usize) {
        let node = match self.jobs[ji].reduces[f].phase {
            ReducePhase::Shuffling { node } => node,
            _ => return,
        };
        let mut started_remote = false;
        loop {
            let r = &mut self.jobs[ji].reduces[f];
            if r.active_fetches >= self.cfg.parallel_copies || r.pending.is_empty() {
                break;
            }
            let (src, bytes) = r.pending.pop_front().expect("checked non-empty");
            if src == node {
                // Local read: no network involvement.
                r.receive(src, bytes);
                continue;
            }
            r.active_fetches += 1;
            let done = self.transfers.start(
                self.now,
                src,
                node,
                bytes,
                TransferTag::Shuffle { job: ji, reduce: f },
            );
            if let Some(c) = done {
                // Tiny transfers complete inline.
                self.jobs[ji].reduces[f].active_fetches -= 1;
                self.jobs[ji].reduces[f].receive(c.src, c.bytes);
            } else {
                started_remote = true;
            }
        }
        if started_remote {
            self.arm_transfer_wake();
        }
    }

    /// If the reduce has everything, enter merge+reduce.
    fn try_finish_shuffle(&mut self, ji: usize, f: usize) {
        let job = &self.jobs[ji];
        let r = &job.reduces[f];
        let node = match r.phase {
            ReducePhase::Shuffling { node } => node,
            _ => return,
        };
        if job.maps_finished < job.maps.len()
            || !r.pending.is_empty()
            || r.active_fetches > 0
        {
            return;
        }
        let speed = self.nodes[node.idx()].speed;
        let jitter = 1.0 + self.cfg.task_jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
        let duration = (r.received / (self.cfg.reduce_rate_bps * speed * jitter)).max(1e-6);
        let run = self.jobs[ji].reduces[f].run;
        self.jobs[ji].reduces[f].phase = ReducePhase::Merging { node };
        self.events
            .push(self.now + duration, EventKind::ReduceDone { job: ji, reduce: f, run });
    }

    fn on_reduce_done(&mut self, ji: usize, f: usize, run: u32) {
        if self.jobs[ji].reduces[f].run != run {
            return; // stale: the merge was aborted (crash took its inputs)
        }
        let node = self.jobs[ji].reduces[f].node().expect("done reduce has a node");
        {
            let job = &mut self.jobs[ji];
            job.reduces[f].phase = ReducePhase::Done { node, finish: self.now };
            job.reduces_finished += 1;
            job.running_tasks -= 1;
            if let Some(pos) = job.reduce_nodes.iter().position(|n| *n == node) {
                job.reduce_nodes.swap_remove(pos);
            }
        }
        self.nodes[node.idx()].free_reduce += 1;
        self.free_reduce_changed(node);
        self.trace.reduce_util.end(self.now);

        let r = &self.jobs[ji].reduces[f];
        // Reduce locality: where did the bulk of its input live?
        let locality = match r.dominant_source() {
            Some(src) if src == node => LocalityClass::NodeLocal,
            Some(src) if self.layout.same_rack(src, node) => LocalityClass::RackLocal,
            Some(_) => LocalityClass::Remote,
            None => LocalityClass::NodeLocal, // no input at all
        };
        let local_bytes: f64 = r
            .per_source
            .iter()
            .filter(|(n, _)| *n == node)
            .map(|(_, b)| *b)
            .sum();
        self.trace.tasks.push(TaskRecord {
            job: ji,
            kind: TaskKind::Reduce,
            index: f,
            node: node.idx(),
            assigned: r.assigned_t,
            finished: self.now,
            locality,
            net_bytes: r.received - local_bytes,
            epoch: 0,
        });
        self.check_job_done(ji);
    }

    fn check_job_done(&mut self, ji: usize) {
        let done = {
            let job = &mut self.jobs[ji];
            if !job.terminated() && job.is_done() {
                job.finished_at = Some(self.now);
                self.trace.jobs.push(JobRecord {
                    job: ji,
                    name: job.name.clone(),
                    submit: job.submit,
                    finished: self.now,
                });
                true
            } else {
                false
            }
        };
        if done {
            self.jobs_done += 1;
            self.refresh_active(ji);
            if let Some(tn) = &mut self.tenancy {
                tn.job_left(ji);
            }
        }
    }

    /// Kill a placed (fetching/computing) map attempt: release its slot if
    /// the hosting node is up, stale-out its in-flight events, requeue the
    /// task and log the reschedule. Any caller that tears down the attempt's
    /// fetch flow must do so *before* calling this.
    fn kill_map_attempt(&mut self, ji: usize, map: usize) {
        let node = self.jobs[ji].maps[map].node().expect("killing a placed map");
        if self.nodes[node.idx()].alive {
            self.nodes[node.idx()].free_map += 1;
            self.free_map_changed(node);
        }
        self.trace.map_util.end(self.now);
        {
            let m = &mut self.jobs[ji].maps[map];
            m.run += 1;
            m.phase = MapPhase::Unassigned;
        }
        if let Some(pos) = self.jobs[ji].running_maps.iter().position(|x| *x == map) {
            self.jobs[ji].running_maps.swap_remove(pos);
        }
        self.jobs[ji].running_tasks -= 1;
        self.cancel_backups_of(ji, Some(map));
        self.requeue_map(ji, map);
        self.record_fault(
            FaultKind::TaskRescheduled,
            node.idx() as u32,
            Some(ji as u32),
            Some(map as u32),
        );
    }

    /// Kill a placed (shuffling/merging) reduce attempt: release its slot if
    /// the hosting node is up, reset all shuffle progress and requeue.
    fn kill_reduce_attempt(&mut self, ji: usize, f: usize) {
        let node = self.jobs[ji].reduces[f].node().expect("killing a placed reduce");
        if self.nodes[node.idx()].alive {
            self.nodes[node.idx()].free_reduce += 1;
            self.free_reduce_changed(node);
        }
        self.trace.reduce_util.end(self.now);
        {
            let r = &mut self.jobs[ji].reduces[f];
            r.run += 1;
            r.phase = ReducePhase::Unassigned;
            r.pending.clear();
            r.active_fetches = 0;
            r.clear_sources();
        }
        let job = &mut self.jobs[ji];
        if let Some(pos) = job.reduce_nodes.iter().position(|x| *x == node) {
            job.reduce_nodes.swap_remove(pos);
        }
        job.running_tasks -= 1;
        if !job.unassigned_reduces.contains(f) {
            job.unassigned_reduces.push_back(f);
        }
        self.record_fault(
            FaultKind::TaskRescheduled,
            node.idx() as u32,
            Some(ji as u32),
            Some(f as u32),
        );
    }

    /// A node dies. MapReduce recovery semantics, in order:
    ///
    /// 1. its slots vanish and in-flight transfers touching it are torn
    ///    down (fetches from a dead replica reschedule their map; shuffle
    ///    fetches from it are re-sourced from the re-executed maps);
    /// 2. running tasks *on* the node (and its speculative backups) are
    ///    killed and requeued;
    /// 3. completed map outputs stored on it are invalidated — the maps
    ///    re-execute under a bumped epoch — and reducers drop whatever they
    ///    had copied from it (a merge that had consumed such bytes reverts
    ///    to shuffling).
    ///
    /// Completed *reduce* outputs are durable (DFS-replicated), as are all
    /// outputs of already-finished jobs.
    fn on_node_crash(&mut self, fault: usize) {
        let crash = self.cfg.faults.crashes[fault];
        let n = NodeId(crash.node as u32);
        self.down_depth[n.idx()] += 1;
        if self.down_depth[n.idx()] > 1 {
            return; // overlapping windows: already down
        }
        self.record_fault(FaultKind::NodeCrash, n.idx() as u32, None, None);
        self.nodes[n.idx()].alive = false;
        self.nodes[n.idx()].free_map = 0;
        self.nodes[n.idx()].free_reduce = 0;
        self.free_map_changed(n);
        self.free_reduce_changed(n);

        // 1. Tear down in-flight transfers involving the node.
        let torn = self.transfers.cancel_involving(self.now, n);
        for (tag, _src, dst) in torn {
            match tag {
                TransferTag::MapFetch { job, map } => {
                    // Dead source or dead destination: either way the
                    // fetching attempt cannot finish; kill it (the helper
                    // frees the slot only on live nodes).
                    if !self.jobs[job].terminated() {
                        self.kill_map_attempt(job, map);
                    }
                }
                TransferTag::Shuffle { job, reduce } => {
                    if dst != n && !self.jobs[job].terminated() {
                        // Reducer is alive, its source died mid-copy. The
                        // per-source cleanup below re-sources the bytes.
                        self.jobs[job].reduces[reduce].active_fetches -= 1;
                    }
                }
                TransferTag::Background { .. } => {
                    unreachable!("cancel_involving spares background flows")
                }
            }
        }

        // 2. Kill running tasks hosted on the node, and backups there.
        for ji in 0..self.jobs.len() {
            if !self.arrived[ji] || self.jobs[ji].terminated() {
                continue;
            }
            let dead_maps: Vec<usize> = self.jobs[ji]
                .running_maps
                .iter()
                .copied()
                .filter(|&m| self.jobs[ji].maps[m].node() == Some(n))
                .collect();
            for m in dead_maps {
                self.kill_map_attempt(ji, m);
            }
            let dead_reduces: Vec<usize> = self.jobs[ji]
                .reduces
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    matches!(r.phase,
                        ReducePhase::Shuffling { node } | ReducePhase::Merging { node }
                            if node == n)
                })
                .map(|(f, _)| f)
                .collect();
            for f in dead_reduces {
                self.kill_reduce_attempt(ji, f);
            }
        }
        for b in &mut self.backups {
            if !b.cancelled && b.node == n {
                b.cancelled = true; // no slot to free — the node is gone
                self.trace.map_util.end(self.now);
                self.trace.backups_cancelled += 1;
            }
        }

        // 3. Invalidate completed map outputs on the node; reducers shed
        // what they had fetched from it.
        for ji in 0..self.jobs.len() {
            if !self.arrived[ji] || self.jobs[ji].terminated() {
                continue;
            }
            let lost: Vec<usize> = self.jobs[ji]
                .maps
                .iter()
                .enumerate()
                .filter(|(_, m)| matches!(m.phase, MapPhase::Done { node, .. } if node == n))
                .map(|(i, _)| i)
                .collect();
            for m in lost {
                self.jobs[ji].invalidate_map_output(m);
                self.requeue_map(ji, m);
                self.record_fault(
                    FaultKind::MapInvalidated,
                    n.idx() as u32,
                    Some(ji as u32),
                    Some(m as u32),
                );
            }
            self.jobs[ji].clear_node_output(n);
            for f in 0..self.jobs[ji].reduces.len() {
                let r = &mut self.jobs[ji].reduces[f];
                if !matches!(
                    r.phase,
                    ReducePhase::Shuffling { .. } | ReducePhase::Merging { .. }
                ) {
                    continue;
                }
                let lost_bytes = r.drop_source(n);
                if lost_bytes > 0.0 {
                    if let ReducePhase::Merging { node } = r.phase {
                        // The merge consumed bytes that no longer exist;
                        // back to shuffling to await the re-executed maps.
                        r.run += 1;
                        r.phase = ReducePhase::Shuffling { node };
                    }
                }
            }
        }
        self.arm_transfer_wake();
    }

    /// A crashed node rejoins: empty disks, full free slots. Its heartbeat
    /// chain never stopped, so scheduling resumes on its next beat.
    fn on_node_recover(&mut self, fault: usize) {
        let crash = self.cfg.faults.crashes[fault];
        let n = crash.node;
        debug_assert!(self.down_depth[n] > 0, "recover without a crash");
        self.down_depth[n] = self.down_depth[n].saturating_sub(1);
        if self.down_depth[n] > 0 {
            return; // still inside an overlapping crash window
        }
        self.nodes[n].alive = true;
        self.nodes[n].free_map = self.cfg.map_slots;
        self.nodes[n].free_reduce = self.cfg.reduce_slots;
        self.free_map_changed(NodeId(n as u32));
        self.free_reduce_changed(NodeId(n as u32));
        self.record_fault(FaultKind::NodeRecover, n as u32, None, None);
    }

    /// A link-degradation window opens or closes: rescale the node's NIC
    /// links to the product of all windows currently covering it.
    fn on_link_degrade(&mut self, idx: usize, start: bool) {
        let d = self.cfg.faults.link_degradations[idx];
        if start {
            self.active_degr.push((idx, d.factor));
        } else if let Some(pos) = self.active_degr.iter().position(|(i, _)| *i == idx) {
            self.active_degr.swap_remove(pos);
        }
        let scale: f64 = self
            .active_degr
            .iter()
            .filter(|(i, _)| self.cfg.faults.link_degradations[*i].node == d.node)
            .map(|(_, f)| f)
            .product();
        self.transfers
            .scale_node_links(self.now, NodeId(d.node as u32), scale);
        self.record_fault(
            if start { FaultKind::LinkDegraded } else { FaultKind::LinkRestored },
            d.node as u32,
            None,
            None,
        );
        self.arm_transfer_wake();
    }

    /// Abort a job: a task exhausted its retry budget. All running attempts
    /// are killed, queues drained, transfers torn down; the job produces no
    /// `JobRecord` and counts as failed, not completed.
    fn fail_job(&mut self, ji: usize, node: NodeId) {
        debug_assert!(!self.jobs[ji].terminated());
        let running: Vec<usize> = self.jobs[ji].running_maps.clone();
        for m in running {
            // A fetching attempt's flow dies below via `cancel_job`.
            let mnode = self.jobs[ji].maps[m].node().expect("running map has a node");
            if self.nodes[mnode.idx()].alive {
                self.nodes[mnode.idx()].free_map += 1;
                self.free_map_changed(mnode);
            }
            self.trace.map_util.end(self.now);
            let t = &mut self.jobs[ji].maps[m];
            t.run += 1;
            t.phase = MapPhase::Unassigned;
        }
        self.jobs[ji].running_maps.clear();
        for f in 0..self.jobs[ji].reduces.len() {
            if !matches!(
                self.jobs[ji].reduces[f].phase,
                ReducePhase::Shuffling { .. } | ReducePhase::Merging { .. }
            ) {
                continue;
            }
            let rnode = self.jobs[ji].reduces[f].node().expect("placed reduce has a node");
            if self.nodes[rnode.idx()].alive {
                self.nodes[rnode.idx()].free_reduce += 1;
                self.free_reduce_changed(rnode);
            }
            self.trace.reduce_util.end(self.now);
            let r = &mut self.jobs[ji].reduces[f];
            r.run += 1;
            r.phase = ReducePhase::Unassigned;
            r.pending.clear();
            r.active_fetches = 0;
        }
        self.cancel_backups_of(ji, None);
        let job = &mut self.jobs[ji];
        job.reduce_nodes.clear();
        job.unassigned_maps.clear();
        job.unassigned_reduces.clear();
        job.running_tasks = 0;
        job.failed = true;
        self.jobs_done += 1;
        self.jobs_failed += 1;
        self.refresh_active(ji);
        if let Some(tn) = &mut self.tenancy {
            tn.job_left(ji);
        }
        let _ = self.transfers.cancel_job(self.now, ji);
        self.arm_transfer_wake();
        self.record_fault(FaultKind::JobFailed, node.idx() as u32, Some(ji as u32), None);
    }

    /// Route a finished network transfer to its consumer.
    fn handle_completion(&mut self, c: Completion) {
        if let Some(mon) = &mut self.monitor {
            if c.avg_rate.is_finite() {
                mon.observe(c.src, c.dst, c.avg_rate);
            }
        }
        self.trace.network_bytes += c.bytes;
        match c.tag {
            TransferTag::MapFetch { job, map } => {
                let node = match self.jobs[job].maps[map].phase {
                    MapPhase::Fetching { node } => node,
                    ref p => unreachable!("fetch completion in phase {p:?}"),
                };
                self.start_map_compute(job, map, node);
            }
            TransferTag::Shuffle { job, reduce } => {
                let r = &mut self.jobs[job].reduces[reduce];
                r.active_fetches -= 1;
                r.receive(c.src, c.bytes);
                self.kick_copiers(job, reduce);
                self.try_finish_shuffle(job, reduce);
            }
            TransferTag::Background { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::prob_sched::{ProbConfig, ProbabilisticPlacer};
    use pnats_workloads::{AppKind, ShuffleModel};

    fn tiny_inputs(n_jobs: usize, maps: usize, reduces: usize) -> Vec<JobInput> {
        (0..n_jobs)
            .map(|i| JobInput {
                name: format!("job{i}"),
                submit: 0.0,
                block_sizes: vec![64 << 20; maps],
                n_reduces: reduces,
                shuffle: ShuffleModel::for_app(AppKind::Terasort),
            })
            .collect()
    }

    fn run_tiny(placer: Box<dyn TaskPlacer>, seed: u64) -> SimReport {
        let cfg = SimConfig::tiny(6, seed);
        Simulation::new(cfg, placer).run(&tiny_inputs(2, 8, 3))
    }

    #[test]
    fn probabilistic_run_completes() {
        let r = run_tiny(Box::new(ProbabilisticPlacer::paper()), 7);
        assert!(r.all_completed(), "finished {}/{}", r.jobs_completed, r.jobs_submitted);
        assert_eq!(r.trace.jobs.len(), 2);
        // 2 jobs × 8 maps + 2 × 3 reduces tasks recorded.
        assert_eq!(r.trace.tasks_of(TaskKind::Map).count(), 16);
        assert_eq!(r.trace.tasks_of(TaskKind::Reduce).count(), 6);
        assert!(r.sim_end > 0.0);
    }

    #[test]
    fn task_times_are_positive_and_ordered() {
        let r = run_tiny(Box::new(ProbabilisticPlacer::paper()), 8);
        for t in &r.trace.tasks {
            assert!(t.finished > t.assigned, "{t:?}");
        }
        for j in &r.trace.jobs {
            assert!(j.jct() > 0.0);
        }
        // Makespan bounds every completion.
        let mk = r.trace.makespan();
        assert!(r.trace.tasks.iter().all(|t| t.finished <= mk + 1e-9));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_tiny(Box::new(ProbabilisticPlacer::paper()), 9);
        let b = run_tiny(Box::new(ProbabilisticPlacer::paper()), 9);
        assert_eq!(a.trace.jobs.len(), b.trace.jobs.len());
        for (x, y) in a.trace.jobs.iter().zip(&b.trace.jobs) {
            assert_eq!(x.finished, y.finished);
            assert_eq!(x.name, y.name);
        }
        assert_eq!(a.trace.network_bytes, b.trace.network_bytes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_tiny(Box::new(ProbabilisticPlacer::paper()), 1);
        let b = run_tiny(Box::new(ProbabilisticPlacer::paper()), 2);
        let ja: Vec<f64> = a.trace.jobs.iter().map(|j| j.finished).collect();
        let jb: Vec<f64> = b.trace.jobs.iter().map(|j| j.finished).collect();
        assert_ne!(ja, jb);
    }

    #[test]
    fn impossible_p_min_starves_and_hits_time_cap() {
        let mut cfg = SimConfig::tiny(4, 3);
        cfg.max_sim_time = 500.0;
        // P_min ≈ 1: only zero-cost placements are ever taken, and reduce
        // tasks (whose cost is never exactly zero once maps spread) starve.
        let placer = ProbabilisticPlacer::new(ProbConfig::with_p_min(0.999));
        let r = Simulation::new(cfg, Box::new(placer)).run(&tiny_inputs(1, 6, 3));
        assert!(!r.all_completed(), "starvation expected");
    }

    #[test]
    fn single_map_only_job() {
        let cfg = SimConfig::tiny(3, 5);
        let inputs = vec![JobInput {
            name: "maponly".into(),
            submit: 0.0,
            block_sizes: vec![32 << 20],
            n_reduces: 0,
            shuffle: ShuffleModel::for_app(AppKind::Grep),
        }];
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        assert!(r.all_completed());
        assert_eq!(r.trace.tasks.len(), 1);
    }

    #[test]
    fn staggered_submission() {
        let cfg = SimConfig::tiny(4, 6);
        let mut inputs = tiny_inputs(2, 4, 2);
        inputs[1].submit = 50.0;
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        assert!(r.all_completed());
        let j1 = r.trace.jobs.iter().find(|j| j.name == "job1").unwrap();
        assert!(j1.submit == 50.0 && j1.finished > 50.0);
    }

    #[test]
    fn network_bytes_accounted() {
        let r = run_tiny(Box::new(ProbabilisticPlacer::paper()), 11);
        // Terasort: shuffle ≈ input; with 6 nodes most shuffle is remote.
        assert!(r.trace.network_bytes > 0.0);
        let total_input: f64 = 2.0 * 8.0 * (64u64 << 20) as f64;
        assert!(
            r.trace.network_bytes < 3.0 * total_input,
            "{} vs {}",
            r.trace.network_bytes,
            total_input
        );
    }

    #[test]
    fn utilization_timelines_consistent() {
        let r = run_tiny(Box::new(ProbabilisticPlacer::paper()), 12);
        let end = r.trace.makespan();
        let mu = r.trace.map_util.mean_utilization(0.0, end);
        assert!(mu > 0.0 && mu <= 1.0, "{mu}");
        assert!(r.trace.map_util.peak() <= 12, "6 nodes × 2 slots");
    }

    #[test]
    fn counters_satisfy_offer_identity() {
        let r = run_tiny(Box::new(ProbabilisticPlacer::paper()), 7);
        assert!(r.counters.consistent(), "{:?}", r.counters);
        assert!(r.counters.offers > 0);
        // Every skip the scheduler counted is also a skipped trace offer.
        assert_eq!(r.counters.total_skips(), r.trace.skipped_offers);
        // The probabilistic placer exposes stats; cache misses were absorbed.
        assert!(r.counters.cache_misses > 0, "{:?}", r.counters);
        // Default sink: no trace text.
        assert!(r.trace_jsonl.is_none());
    }

    #[test]
    fn trace_is_deterministic_under_seed() {
        let run = || {
            let cfg = SimConfig::tiny(6, 9);
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
                .with_trace(Box::new(pnats_obs::InMemorySink::unbounded()))
                .run(&tiny_inputs(2, 8, 3))
        };
        let a = run();
        let b = run();
        let ta = a.trace_jsonl.expect("tracing enabled");
        let tb = b.trace_jsonl.expect("tracing enabled");
        assert!(!ta.is_empty());
        assert_eq!(ta, tb, "same seed must yield byte-identical traces");
        // One record per slot offer.
        assert_eq!(ta.lines().count() as u64, a.counters.offers);
    }

    #[test]
    fn locality_recorded_for_all_tasks() {
        let r = run_tiny(Box::new(ProbabilisticPlacer::paper()), 13);
        let loc = r.trace.locality_all();
        assert_eq!(loc.total() as usize, r.trace.tasks.len());
        // Single-rack topology: nothing can be remote.
        assert_eq!(loc.remote, 0);
    }

    #[test]
    fn background_flows_slow_things_down() {
        let inputs = tiny_inputs(1, 6, 2);
        let quiet = Simulation::new(SimConfig::tiny(4, 20), Box::new(ProbabilisticPlacer::paper()))
            .run(&inputs);
        let mut cfg = SimConfig::tiny(4, 20);
        // Saturate every NIC with crossing background flows.
        for s in 0..4usize {
            cfg.background.push(crate::config::BackgroundFlow {
                src: s,
                dst: (s + 1) % 4,
                start: 0.0,
                end: 1e6,
            });
        }
        let busy = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        assert!(quiet.all_completed() && busy.all_completed());
        assert!(
            busy.trace.makespan() > quiet.trace.makespan(),
            "background traffic must hurt: {} vs {}",
            busy.trace.makespan(),
            quiet.trace.makespan()
        );
    }

    #[test]
    fn reduce_share_cap_prevents_monopoly() {
        // Two jobs, tiny maps so both pass slowstart immediately; each job
        // may hold at most ceil(total_reduce_slots / 2) reduce slots while
        // the other still has pending demand.
        let mut cfg = SimConfig::tiny(6, 31); // 6 nodes × 1 reduce slot
        cfg.slowstart = 0.0;
        let inputs = tiny_inputs(2, 4, 12);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        assert!(r.all_completed());
        // Reconstruct concurrent reduce occupancy per job over time.
        let mut events: Vec<(f64, usize, i32)> = Vec::new();
        for t in r.trace.tasks_of(TaskKind::Reduce) {
            events.push((t.assigned, t.job, 1));
            events.push((t.finished, t.job, -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        let mut running = [0i32; 2];
        let share = 6usize.div_ceil(2) as i32;
        for (_, job, d) in events {
            running[job] += d;
            assert!(
                running[job] <= share,
                "job {job} exceeded its reduce share: {}",
                running[job]
            );
        }
    }

    #[test]
    fn ingest_confined_layout_restricts_replicas() {
        // With a confined layout and a small ingest fraction, map locality
        // must be markedly lower than under writer-local HDFS layout.
        let mk = |layout| {
            let mut cfg = SimConfig::tiny(10, 17);
            cfg.ingest_fraction = 0.2;
            cfg.data_layout = layout;
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
                .run(&tiny_inputs(2, 20, 3))
        };
        let hdfs = mk(crate::config::DataLayout::HdfsRackAware);
        let confined = mk(crate::config::DataLayout::IngestConfined);
        assert!(hdfs.all_completed() && confined.all_completed());
        let l_hdfs = hdfs.trace.locality_of(TaskKind::Map).pct_node_local();
        let l_conf = confined.trace.locality_of(TaskKind::Map).pct_node_local();
        assert!(
            l_conf < l_hdfs,
            "confined layout should depress locality: {l_conf} vs {l_hdfs}"
        );
    }

    #[test]
    fn speculation_rescues_stragglers() {
        // One crippled node (5% speed): without speculation its maps hold
        // the job hostage; with speculation a backup finishes elsewhere.
        // Seed 14 is pinned: the crippled node receives at least one map in
        // the no-speculation run (placement is stochastic; on seeds where
        // node 0 gets no maps, both runs finish fast and the comparison is
        // noise). If the placement stream ever changes, re-pin a seed where
        // `without` launches no backups but leaves work on node 0.
        let mk = |lag: f64| {
            let mut cfg = SimConfig::tiny(5, 14);
            cfg.slow_nodes = vec![(0, 0.05)];
            cfg.speculation_lag = lag;
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
                .run(&tiny_inputs(1, 10, 2))
        };
        let without = mk(0.0);
        let with = mk(0.3);
        assert!(without.all_completed() && with.all_completed());
        assert!(
            with.trace.makespan() < without.trace.makespan(),
            "speculation should shorten the straggler-bound makespan: {} vs {}",
            with.trace.makespan(),
            without.trace.makespan()
        );
        // Counter-based evidence that speculation actually did the work:
        // a lag of 0 disables the mechanism entirely; with it on, a backup
        // won the race and the losing primary was *killed*, not left to
        // block the slot until its own completion.
        assert_eq!(without.trace.backups_launched, 0);
        assert!(with.trace.backups_launched > 0, "no backups launched");
        assert!(with.trace.backups_won > 0, "no backup won");
        assert_eq!(
            with.trace.losers_killed, with.trace.backups_won,
            "every winning backup must kill its primary"
        );
        assert_eq!(
            with.trace.backups_launched,
            with.trace.backups_won + with.trace.backups_cancelled,
            "every backup either wins or is cancelled"
        );
        // Exactly one record per map task even when backups raced.
        assert_eq!(with.trace.tasks_of(TaskKind::Map).count(), 10);
    }

    // ---- fault injection ----

    #[test]
    fn crash_with_recovery_reexecutes_lost_maps() {
        use pnats_core::faults::{FaultPlan, NodeCrash};
        let mut cfg = SimConfig::tiny(6, 9);
        // Crash a node mid-map-phase (the clean batch finishes in ~29 s);
        // recover it late enough that its lost work must re-run elsewhere.
        cfg.faults = FaultPlan {
            crashes: vec![NodeCrash { node: 2, at: 10.0, recover_at: Some(150.0) }],
            ..FaultPlan::none()
        };
        let ins = tiny_inputs(2, 8, 3);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(r.all_completed(), "finished {}/{}", r.jobs_completed, r.jobs_submitted);
        crate::oracle::check_report(&r, &ins).unwrap();
        assert_eq!(r.counters.node_crashes, 1);
        // Whatever the node had completed re-ran under a bumped epoch.
        let reexec = r.trace.tasks.iter().filter(|t| t.epoch > 0).count() as u64;
        assert_eq!(reexec, r.counters.reexecuted_maps);
        assert!(reexec > 0, "node 2 should have held completed output at t=10");
        // Nothing completed on node 2 during its downtime.
        for t in &r.trace.tasks {
            if t.node == 2 {
                assert!(t.finished <= 10.0 || t.assigned >= 150.0, "{t:?}");
            }
        }
    }

    #[test]
    fn crash_without_recovery_still_completes() {
        use pnats_core::faults::{FaultPlan, NodeCrash};
        let mut cfg = SimConfig::tiny(6, 9);
        cfg.faults = FaultPlan {
            crashes: vec![NodeCrash { node: 0, at: 25.0, recover_at: None }],
            ..FaultPlan::none()
        };
        let ins = tiny_inputs(2, 8, 3);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(r.all_completed(), "survivors must finish the batch");
        crate::oracle::check_report(&r, &ins).unwrap();
        assert!(r.trace.tasks.iter().all(|t| t.node != 0 || t.finished <= 25.0));
    }

    #[test]
    fn faults_degrade_makespan() {
        use pnats_core::faults::{FaultPlan, NodeCrash};
        let ins = tiny_inputs(2, 8, 3);
        let clean = Simulation::new(SimConfig::tiny(6, 9), Box::new(ProbabilisticPlacer::paper()))
            .run(&ins);
        let mut cfg = SimConfig::tiny(6, 9);
        cfg.faults = FaultPlan {
            crashes: vec![NodeCrash { node: 2, at: 10.0, recover_at: Some(150.0) }],
            ..FaultPlan::none()
        };
        let faulty = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(clean.all_completed() && faulty.all_completed());
        assert!(
            faulty.trace.makespan() >= clean.trace.makespan(),
            "losing a node must not speed the batch up: {} vs {}",
            faulty.trace.makespan(),
            clean.trace.makespan()
        );
    }

    #[test]
    fn transient_failures_retry_then_complete() {
        use pnats_core::faults::FaultPlan;
        let mut cfg = SimConfig::tiny(6, 9);
        cfg.faults = FaultPlan {
            transient_map_failure_p: 0.3,
            max_attempts: 20,
            ..FaultPlan::none()
        };
        let ins = tiny_inputs(2, 8, 3);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(r.all_completed());
        crate::oracle::check_report(&r, &ins).unwrap();
        assert!(r.counters.retries > 0, "p=0.3 over 16 maps should retry: {:?}", r.counters);
        assert_eq!(r.jobs_failed, 0);
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        use pnats_core::faults::FaultPlan;
        let mut cfg = SimConfig::tiny(6, 9);
        cfg.faults = FaultPlan {
            transient_map_failure_p: 1.0, // every attempt dies
            max_attempts: 2,
            ..FaultPlan::none()
        };
        let ins = tiny_inputs(2, 8, 3);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert_eq!(r.jobs_failed, 2, "both jobs must abort");
        assert_eq!(r.jobs_completed, 0);
        assert!(r.trace.jobs.is_empty(), "failed jobs produce no JobRecord");
        crate::oracle::check_report(&r, &ins).unwrap();
        let job_failures = r
            .faults
            .iter()
            .filter(|f| f.kind == pnats_obs::FaultKind::JobFailed)
            .count();
        assert_eq!(job_failures, 2);
        // The run terminates promptly rather than spinning on dead jobs.
        assert!(r.sim_end < SimConfig::tiny(6, 9).max_sim_time);
    }

    #[test]
    fn heartbeat_loss_suppresses_scheduling() {
        use pnats_core::faults::{FaultPlan, HeartbeatLoss};
        let mut cfg = SimConfig::tiny(6, 9);
        cfg.faults = FaultPlan {
            heartbeat_losses: vec![HeartbeatLoss { node: 1, from: 0.0, until: 60.0 }],
            ..FaultPlan::none()
        };
        let ins = tiny_inputs(2, 8, 3);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(r.all_completed());
        crate::oracle::check_report(&r, &ins).unwrap();
        assert!(r.counters.lost_heartbeats > 0);
        // A partitioned node receives no work while silent.
        assert!(r.trace.tasks.iter().all(|t| t.node != 1 || t.assigned >= 60.0));
    }

    #[test]
    fn link_degradation_slows_the_batch() {
        use pnats_core::faults::{FaultPlan, LinkDegradation};
        let ins = tiny_inputs(2, 8, 3);
        let clean = Simulation::new(SimConfig::tiny(6, 9), Box::new(ProbabilisticPlacer::paper()))
            .run(&ins);
        let mut cfg = SimConfig::tiny(6, 9);
        cfg.faults = FaultPlan {
            link_degradations: vec![LinkDegradation {
                node: 0,
                from: 0.0,
                until: 5_000.0,
                factor: 0.02,
            }],
            ..FaultPlan::none()
        };
        let slow = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(clean.all_completed() && slow.all_completed());
        assert!(
            slow.trace.makespan() > clean.trace.makespan(),
            "a 50x slower NIC must hurt: {} vs {}",
            slow.trace.makespan(),
            clean.trace.makespan()
        );
    }

    #[test]
    fn whole_replica_set_dies_and_recovers_without_deadlock() {
        use pnats_core::faults::{FaultPlan, NodeCrash};
        // Kill EVERY node holding data (replication covers all 4 nodes in a
        // tiny cluster eventually) over a window, then recover them. The
        // scheduler must stall on NodeDead skips, not deadlock, and finish
        // after recovery.
        let mut cfg = SimConfig::tiny(4, 9);
        cfg.faults = FaultPlan {
            crashes: (0..4)
                .map(|n| NodeCrash { node: n, at: 10.0 + n as f64, recover_at: Some(300.0) })
                .collect(),
            ..FaultPlan::none()
        };
        let ins = tiny_inputs(1, 6, 2);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(r.all_completed(), "must finish after the cluster heals");
        crate::oracle::check_report(&r, &ins).unwrap();
        assert_eq!(r.counters.node_crashes, 4);
        // Nothing finished on a node inside its blackout (node n dies at
        // 10 + n and recovers at 300).
        for t in &r.trace.tasks {
            let dies = 10.0 + t.node as f64;
            assert!(t.finished <= dies + 1e-9 || t.finished >= 300.0, "{t:?}");
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        use pnats_core::faults::FaultPlan;
        let run = || {
            let mut cfg = SimConfig::tiny(6, 9);
            cfg.faults = FaultPlan::with_random_crashes(2, 6, (20.0, 200.0), Some(150.0), 77);
            cfg.faults.transient_map_failure_p = 0.15;
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
                .with_trace(Box::new(pnats_obs::InMemorySink::unbounded()))
                .run(&tiny_inputs(2, 8, 3))
        };
        let a = run();
        let b = run();
        assert_eq!(a.trace_jsonl, b.trace_jsonl);
        assert_eq!(a.trace.makespan().to_bits(), b.trace.makespan().to_bits());
        assert_eq!(a.counters.to_kv(), b.counters.to_kv());
        assert_eq!(a.faults, b.faults);
        // The fault stream is interleaved into the same trace: fault lines
        // carry a "fault" key, decision lines don't.
        let jsonl = a.trace_jsonl.unwrap();
        assert!(jsonl.lines().any(|l| l.contains("\"fault\"")));
    }

    #[test]
    fn straggler_node_slows_its_tasks() {
        let mut cfg = SimConfig::tiny(4, 21);
        cfg.slow_nodes = vec![(0, 0.2)];
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
            .run(&tiny_inputs(1, 8, 2));
        assert!(r.all_completed());
        let on_slow: Vec<f64> = r
            .trace
            .tasks_of(TaskKind::Map)
            .filter(|t| t.node == 0)
            .map(|t| t.running_time())
            .collect();
        let on_fast: Vec<f64> = r
            .trace
            .tasks_of(TaskKind::Map)
            .filter(|t| t.node != 0)
            .map(|t| t.running_time())
            .collect();
        if !on_slow.is_empty() && !on_fast.is_empty() {
            let slow_mean: f64 = on_slow.iter().sum::<f64>() / on_slow.len() as f64;
            let fast_mean: f64 = on_fast.iter().sum::<f64>() / on_fast.len() as f64;
            assert!(slow_mean > fast_mean, "{slow_mean} vs {fast_mean}");
        }
    }

    // --- Service mode (pnats-tenancy) ---

    use crate::oracle::check_report;
    use pnats_tenancy::{TenancyConfig, TenantSet, TenantSpec};

    /// Inputs for `n_jobs` map-only jobs per tenant, tagged round-robin
    /// across `n_tenants`, all submitted at `submit`.
    fn tenant_inputs(
        n_tenants: usize,
        jobs_each: usize,
        maps: usize,
        submit: f64,
    ) -> (Vec<JobInput>, Vec<u32>) {
        let mut inputs = Vec::new();
        let mut tags = Vec::new();
        for j in 0..jobs_each {
            for t in 0..n_tenants {
                inputs.push(JobInput {
                    name: format!("t{t}-job{j}"),
                    submit,
                    block_sizes: vec![64 << 20; maps],
                    n_reduces: 0,
                    shuffle: ShuffleModel::for_app(AppKind::Terasort),
                });
                tags.push(t as u32);
            }
        }
        (inputs, tags)
    }

    #[test]
    fn single_tenant_passthrough_is_byte_identical() {
        let inputs = tiny_inputs(2, 8, 3);
        let run = |tenancy: Option<TenancyConfig>| {
            let mut cfg = SimConfig::tiny(6, 11);
            cfg.tenancy = tenancy;
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
                .with_trace(Box::new(pnats_obs::InMemorySink::unbounded()))
                .run(&inputs)
        };
        let a = run(None);
        let b = run(Some(TenancyConfig::single_tenant(inputs.len())));
        assert_eq!(a.trace_jsonl, b.trace_jsonl, "trace must be byte-identical");
        assert_eq!(a.sim_end.to_bits(), b.sim_end.to_bits());
        assert_eq!(a.counters.to_kv(), b.counters.to_kv());
        assert_eq!(b.jobs_rejected, 0);
        assert_eq!(b.sched_wall_s, 0.0, "passthrough runs skip decision timing");
        // The passthrough run still reports its (trivial) tenant stats.
        assert_eq!(b.tenants.len(), 1);
        assert_eq!(b.tenants[0].counters.admitted, inputs.len() as u64);
        assert_eq!(a.tenants.len(), 0);
    }

    #[test]
    fn weighted_fairness_serves_heavy_tenant_first() {
        let (inputs, tags) = tenant_inputs(2, 4, 12, 0.0);
        let tenants = TenantSet::new(vec![
            TenantSpec::new("gold", 3.0),
            TenantSpec::new("bronze", 1.0),
        ]);
        let mut tc = TenancyConfig::new(tenants, tags.clone());
        tc.fairness = true;
        let mut cfg = SimConfig::tiny(4, 13);
        cfg.tenancy = Some(tc);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        assert!(r.all_completed());
        check_report(&r, &inputs).unwrap();
        let mean_jct = |tenant: u32| {
            let jcts: Vec<f64> = r
                .trace
                .jobs
                .iter()
                .filter(|j| tags[j.job] == tenant)
                .map(|j| j.jct())
                .collect();
            jcts.iter().sum::<f64>() / jcts.len() as f64
        };
        let (gold, bronze) = (mean_jct(0), mean_jct(1));
        assert!(
            gold < bronze,
            "3:1 weights must favor the heavy tenant: gold {gold} vs bronze {bronze}"
        );
        assert!(r.sched_wall_s > 0.0, "non-passthrough runs time their decisions");
    }

    #[test]
    fn admission_queue_cap_rejects_excess_jobs() {
        let (inputs, tags) = tenant_inputs(1, 6, 4, 0.0);
        let tenants = TenantSet::new(vec![TenantSpec::new("only", 1.0).with_queue_cap(2)]);
        let mut tc = TenancyConfig::new(tenants, tags);
        tc.admission = true;
        let mut cfg = SimConfig::tiny(4, 17);
        cfg.tenancy = Some(tc);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        check_report(&r, &inputs).unwrap();
        assert_eq!(r.jobs_rejected, 4, "cap 2, six simultaneous arrivals");
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.jobs_failed, 0);
        assert_eq!(r.tenants[0].counters.rejected_queue, 4);
        assert_eq!(r.tenants[0].counters.admitted, 2);
        assert_eq!(r.tenants[0].counters.peak_in_system, 2);
        assert_eq!(r.counters.jobs_rejected, 4);
        // Rejected jobs never produced a task.
        assert_eq!(r.trace.tasks_of(TaskKind::Map).count(), 2 * 4);
    }

    #[test]
    fn saturation_backpressure_rejects_when_backlog_high() {
        let (mut inputs, tags) = tenant_inputs(1, 8, 16, 0.0);
        // Stagger arrivals one second apart so backlog builds up first.
        for (i, input) in inputs.iter_mut().enumerate() {
            input.submit = i as f64 * 1.0;
        }
        let tenants = TenantSet::new(vec![TenantSpec::new("only", 1.0)]);
        let mut tc = TenancyConfig::new(tenants, tags);
        tc.admission = true;
        tc.saturation_backlog = 1.0; // reject past one queued task per slot
        let mut cfg = SimConfig::tiny(4, 19);
        cfg.tenancy = Some(tc);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        check_report(&r, &inputs).unwrap();
        assert!(r.jobs_rejected > 0, "saturated cluster must shed load");
        assert_eq!(r.tenants[0].counters.rejected_saturated, r.jobs_rejected as u64);
        assert_eq!(r.jobs_completed + r.jobs_rejected, r.jobs_submitted);
    }

    #[test]
    fn preemption_restores_min_share_and_requeues_victims() {
        // Tenant 0 saturates every map slot with a long job; tenant 1
        // (min-share 0.5) arrives mid-run into a full cluster.
        let mut inputs = vec![JobInput {
            name: "hog".into(),
            submit: 0.0,
            block_sizes: vec![64 << 20; 80],
            n_reduces: 0,
            shuffle: ShuffleModel::for_app(AppKind::Terasort),
        }];
        inputs.push(JobInput {
            name: "late".into(),
            submit: 60.0,
            block_sizes: vec![64 << 20; 16],
            n_reduces: 0,
            shuffle: ShuffleModel::for_app(AppKind::Terasort),
        });
        let tenants = TenantSet::new(vec![
            TenantSpec::new("hog", 1.0),
            TenantSpec::new("late", 1.0).with_min_share(0.5),
        ]);
        let mut tc = TenancyConfig::new(tenants, vec![0, 1]);
        tc.fairness = true;
        tc.preemption = true;
        tc.preempt_cooldown_s = 1.0;
        let mut cfg = SimConfig::tiny(4, 23);
        cfg.tenancy = Some(tc);
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
        assert!(r.all_completed());
        // check_report verifies every MapPreempted was requeued (law 7)
        // and map exactly-once still holds despite the kills (law 2).
        check_report(&r, &inputs).unwrap();
        assert!(r.tenants[0].counters.preempted > 0, "the hog must get preempted");
        assert_eq!(r.counters.preemptions, r.tenants[0].counters.preempted);
        assert_eq!(r.tenants[1].counters.preempted, 0);
    }

    #[test]
    fn tenancy_runs_are_deterministic() {
        let (inputs, tags) = tenant_inputs(3, 2, 6, 0.0);
        let run = || {
            let tenants = TenantSet::new(vec![
                TenantSpec::new("a", 2.0),
                TenantSpec::new("b", 1.0),
                TenantSpec::new("c", 1.0).with_min_share(0.25),
            ]);
            let mut tc = TenancyConfig::new(tenants, tags.clone());
            tc.fairness = true;
            tc.preemption = true;
            let mut cfg = SimConfig::tiny(5, 29);
            cfg.tenancy = Some(tc);
            Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper()))
                .with_trace(Box::new(pnats_obs::InMemorySink::unbounded()))
                .run(&inputs)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.trace_jsonl, b.trace_jsonl);
        assert_eq!(a.sim_end.to_bits(), b.sim_end.to_bits());
        // Tenant tags ride along in the decision trace.
        let jsonl = a.trace_jsonl.as_deref().unwrap();
        assert!(jsonl.lines().any(|l| l.contains("\"tenant\":")), "tagged trace");
        check_report(&a, &inputs).unwrap();
    }
}
