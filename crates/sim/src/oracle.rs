//! Invariant oracle: conservation laws any simulation report must satisfy.
//!
//! Fault injection multiplies the ways a scheduler can silently go wrong —
//! a map counted done twice after an invalidation, a slot leaked by a
//! crash, a completion credited to a dead node. The oracle replays a
//! finished [`SimReport`] against the laws that hold for *every* correct
//! MapReduce execution, faulty or not:
//!
//! 1. **Offer conservation** — `offers = assigns + Σ skips` (delegated to
//!    [`SchedCounters::consistent`](pnats_obs::SchedCounters::consistent)).
//! 2. **Map exactly-once per valid epoch** — for every completed job, each
//!    map index has exactly one completion record per epoch `0..=E`, with
//!    epochs contiguous from zero (an epoch is born only by invalidating
//!    the previous completion).
//! 3. **Reduce exactly-once** — each reduce of a completed job completes
//!    exactly once (reduce output is durable; crashes re-run the attempt,
//!    never the completion).
//! 4. **Liveness of execution spans** — no completion's `[assigned,
//!    finished]` span overlaps a down interval of its node: a crash would
//!    have killed the attempt instead of letting it complete.
//! 5. **Re-execution accounting** — when every job completed, the number
//!    of `epoch > 0` map records equals `counters.reexecuted_maps`.
//! 6. **Rejection accounting** (service mode) — every admission rejection
//!    left a `JobRejected` fault, the counters booked it, and the
//!    rejected job never ran a task or completed.
//! 7. **Preemption requeue** (service mode) — every `MapPreempted` fault
//!    is followed by a `TaskRescheduled` for the same task at the same
//!    instant; preemption kills attempts, it never loses tasks.
//! 8. **Slot-capacity conservation** — peak concurrent running tasks
//!    never exceed configured slots of either type.
//!
//! A separate helper, [`check_makespan_monotone`], checks the macro
//! property the `fault_sweep` bench leans on: for a fixed seed and nested
//! fault plans, more crashes should not make the batch *faster* (within a
//! slack for scheduling noise).

use crate::config::JobInput;
use crate::runner::SimReport;
use crate::trace::TaskKind;
use pnats_obs::FaultKind;

/// Per-node down intervals reconstructed from the fault log.
fn down_intervals(report: &SimReport, n_nodes: usize) -> Vec<Vec<(f64, f64)>> {
    let mut down: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_nodes];
    let mut open: Vec<Option<f64>> = vec![None; n_nodes];
    for f in &report.faults {
        let n = f.node as usize;
        match f.kind {
            FaultKind::NodeCrash if n < n_nodes && open[n].is_none() => {
                open[n] = Some(f.t);
            }
            FaultKind::NodeRecover if n < n_nodes => {
                if let Some(start) = open[n].take() {
                    down[n].push((start, f.t));
                }
            }
            _ => {}
        }
    }
    for (n, o) in open.into_iter().enumerate() {
        if let Some(start) = o {
            down[n].push((start, f64::INFINITY));
        }
    }
    down
}

/// Check every conservation law against a finished report. Returns the
/// first violation as a human-readable message.
pub fn check_report(report: &SimReport, inputs: &[JobInput]) -> Result<(), String> {
    if !report.counters.consistent() {
        return Err(format!(
            "offer identity violated: offers={} assigns={} skips={}",
            report.counters.offers,
            report.counters.assigns,
            report.counters.total_skips()
        ));
    }
    if report.jobs_completed + report.jobs_failed + report.jobs_rejected > report.jobs_submitted {
        return Err(format!(
            "job accounting: {} completed + {} failed + {} rejected > {} submitted",
            report.jobs_completed,
            report.jobs_failed,
            report.jobs_rejected,
            report.jobs_submitted
        ));
    }

    // Law 6 (service mode): rejection accounting. Every rejection left a
    // fault record, the counters booked it, and a rejected job never ran
    // — no task spans, no completion record.
    let rejected: Vec<usize> = report
        .faults
        .iter()
        .filter(|f| f.kind == FaultKind::JobRejected)
        .filter_map(|f| f.job.map(|j| j as usize))
        .collect();
    if rejected.len() != report.jobs_rejected
        || report.counters.jobs_rejected != report.jobs_rejected as u64
    {
        return Err(format!(
            "rejection accounting: {} JobRejected faults, counters say {}, report says {}",
            rejected.len(),
            report.counters.jobs_rejected,
            report.jobs_rejected
        ));
    }
    for ji in &rejected {
        if report.trace.tasks.iter().any(|t| t.job == *ji) {
            return Err(format!("rejected job {ji} has task records"));
        }
        if report.trace.jobs.iter().any(|jr| jr.job == *ji) {
            return Err(format!("rejected job {ji} has a completion record"));
        }
    }

    // Law 7 (service mode): every preemption requeued its victim — a
    // MapPreempted fault is immediately followed by a TaskRescheduled for
    // the same (job, task) at the same instant, and the counters agree.
    let preempts = report.faults.iter().filter(|f| f.kind == FaultKind::MapPreempted).count();
    if preempts as u64 != report.counters.preemptions {
        return Err(format!(
            "preemption accounting: {} MapPreempted faults vs counters.preemptions={}",
            preempts, report.counters.preemptions
        ));
    }
    for (i, f) in report.faults.iter().enumerate() {
        if f.kind != FaultKind::MapPreempted {
            continue;
        }
        let requeued = report.faults[i + 1..].iter().any(|g| {
            g.kind == FaultKind::TaskRescheduled && g.job == f.job && g.task == f.task && g.t == f.t
        });
        if !requeued {
            return Err(format!(
                "preempted map not requeued: job {:?} task {:?} at t={}",
                f.job, f.task, f.t
            ));
        }
    }

    // Law 8: slot-capacity conservation — concurrent running tasks never
    // exceeded configured slots (preemption/fairness must reuse slots,
    // not mint them).
    if report.trace.map_util.peak() > report.trace.map_util.capacity() {
        return Err(format!(
            "map slot capacity exceeded: peak {} > capacity {}",
            report.trace.map_util.peak(),
            report.trace.map_util.capacity()
        ));
    }
    if report.trace.reduce_util.peak() > report.trace.reduce_util.capacity() {
        return Err(format!(
            "reduce slot capacity exceeded: peak {} > capacity {}",
            report.trace.reduce_util.peak(),
            report.trace.reduce_util.capacity()
        ));
    }

    let n_nodes = report
        .trace
        .tasks
        .iter()
        .map(|t| t.node + 1)
        .chain(report.faults.iter().map(|f| f.node as usize + 1))
        .max()
        .unwrap_or(0);
    let down = down_intervals(report, n_nodes);

    // Law 4: completion spans never overlap their node's down time.
    for t in &report.trace.tasks {
        if t.finished < t.assigned {
            return Err(format!("task finished before assignment: {t:?}"));
        }
        for &(from, until) in &down[t.node] {
            if t.assigned < until && from < t.finished {
                return Err(format!(
                    "task span [{}, {}] overlaps node {} downtime [{from}, {until}]: {t:?}",
                    t.assigned, t.finished, t.node
                ));
            }
        }
    }

    // Laws 2 + 3: exactly-once per valid epoch, for completed jobs.
    for jr in &report.trace.jobs {
        let ji = jr.job;
        let input = inputs.get(ji).ok_or_else(|| {
            format!("job record {ji} has no matching input (inputs len {})", inputs.len())
        })?;
        for mi in 0..input.block_sizes.len() {
            let mut epochs: Vec<u32> = report
                .trace
                .tasks
                .iter()
                .filter(|t| t.kind == TaskKind::Map && t.job == ji && t.index == mi)
                .map(|t| t.epoch)
                .collect();
            epochs.sort_unstable();
            if epochs.is_empty() {
                return Err(format!("completed job {ji} has no record for map {mi}"));
            }
            for (want, got) in epochs.iter().enumerate() {
                if *got != want as u32 {
                    return Err(format!(
                        "job {ji} map {mi}: epochs {epochs:?} not exactly-once-contiguous"
                    ));
                }
            }
        }
        for ri in 0..input.n_reduces {
            let n = report
                .trace
                .tasks
                .iter()
                .filter(|t| t.kind == TaskKind::Reduce && t.job == ji && t.index == ri)
                .count();
            if n != 1 {
                return Err(format!("job {ji} reduce {ri}: {n} completions (want 1)"));
            }
        }
    }

    // Law 5: global re-execution accounting when nothing was cut short.
    if report.all_completed() {
        let reexec = report
            .trace
            .tasks
            .iter()
            .filter(|t| t.kind == TaskKind::Map && t.epoch > 0)
            .count() as u64;
        if reexec != report.counters.reexecuted_maps {
            return Err(format!(
                "re-execution mismatch: {} epoch>0 records vs reexecuted_maps={}",
                reexec, report.counters.reexecuted_maps
            ));
        }
    }
    Ok(())
}

/// Exactly-once-per-epoch over a *runtime* completion ledger — the
/// cluster-runtime face of laws 2 and 3. The cluster (unlike the
/// simulator) has no global trace of task spans, but its tracker records
/// one [`pnats_obs::TaskCompletion`] per completion it *accepted*; this
/// checks that ledger directly:
///
/// * each map index `0..n_maps` completed exactly once per epoch, with
///   epochs contiguous from zero (an epoch exists only because the
///   previous completion was invalidated);
/// * each reduce index `0..n_reduces` completed exactly once (reduce
///   output is tracker-held, hence durable across crashes).
pub fn check_runtime_completions(
    completions: &[pnats_obs::TaskCompletion],
    n_maps: usize,
    n_reduces: usize,
) -> Result<(), String> {
    use pnats_obs::TaskKind as K;
    for mi in 0..n_maps {
        let mut epochs: Vec<u32> = completions
            .iter()
            .filter(|c| c.kind == K::Map && c.index == mi as u32)
            .map(|c| c.epoch)
            .collect();
        epochs.sort_unstable();
        if epochs.is_empty() {
            return Err(format!("map {mi} has no accepted completion"));
        }
        for (want, got) in epochs.iter().enumerate() {
            if *got != want as u32 {
                return Err(format!(
                    "map {mi}: epochs {epochs:?} not exactly-once-contiguous"
                ));
            }
        }
    }
    for ri in 0..n_reduces {
        let n = completions.iter().filter(|c| c.kind == K::Reduce && c.index == ri as u32).count();
        if n != 1 {
            return Err(format!("reduce {ri}: {n} completions (want 1)"));
        }
    }
    Ok(())
}

/// The cluster-runtime oracle: offer conservation plus the exactly-once
/// completion-ledger laws plus re-execution accounting. For failed
/// (aborted) runs only the laws that hold mid-flight are checked: offer
/// conservation, and no duplicate `(task, epoch)` ledger entries.
pub fn check_cluster_run(
    counters: &pnats_obs::SchedCounters,
    completions: &[pnats_obs::TaskCompletion],
    n_maps: usize,
    n_reduces: usize,
    failed: bool,
) -> Result<(), String> {
    if !counters.consistent() {
        return Err(format!(
            "offer identity violated: offers={} assigns={} skips={}",
            counters.offers,
            counters.assigns,
            counters.total_skips()
        ));
    }
    if failed {
        // An aborted run owes no completeness — but never a duplicate.
        let mut seen = std::collections::HashSet::new();
        for c in completions {
            if !seen.insert((c.kind == pnats_obs::TaskKind::Map, c.index, c.epoch)) {
                return Err(format!("duplicate completion accepted: {c:?}"));
            }
        }
        return Ok(());
    }
    check_runtime_completions(completions, n_maps, n_reduces)?;
    // Every epoch>0 map completion exists because an invalidation created
    // it — either one this incarnation booked as a re-executed map, or one
    // a *previous* incarnation booked and the journal replay carried over
    // (`recovered_reexec`). The split must tile the ledger exactly.
    let reexec = completions
        .iter()
        .filter(|c| c.kind == pnats_obs::TaskKind::Map && c.epoch > 0)
        .count() as u64;
    if reexec != counters.recovered_reexec + counters.reexecuted_maps {
        return Err(format!(
            "re-execution mismatch: {} epoch>0 ledger entries vs recovered_reexec={} + reexecuted_maps={}",
            reexec, counters.recovered_reexec, counters.reexecuted_maps
        ));
    }
    Ok(())
}

/// Check a makespan series is monotone non-decreasing up to a relative
/// `slack` (each value must reach `(1 - slack)` of the running maximum).
/// The `fault_sweep` bench feeds this the makespans of nested fault plans.
pub fn check_makespan_monotone(makespans: &[f64], slack: f64) -> Result<(), String> {
    let mut peak = f64::NEG_INFINITY;
    for (i, &m) in makespans.iter().enumerate() {
        if m < peak * (1.0 - slack) {
            return Err(format!(
                "makespan not monotone in fault count: step {i} fell to {m} (peak {peak}, slack {slack})"
            ));
        }
        peak = peak.max(m);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::prob_sched::ProbabilisticPlacer;
    use pnats_workloads::{AppKind, ShuffleModel};

    fn inputs() -> Vec<JobInput> {
        (0..2)
            .map(|i| JobInput {
                name: format!("job{i}"),
                submit: 0.0,
                block_sizes: vec![64 << 20; 8],
                n_reduces: 3,
                shuffle: ShuffleModel::for_app(AppKind::Terasort),
            })
            .collect()
    }

    #[test]
    fn clean_run_passes() {
        let cfg = crate::SimConfig::tiny(6, 9);
        let ins = inputs();
        let r = crate::Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        assert!(r.all_completed());
        check_report(&r, &ins).unwrap();
    }

    #[test]
    fn duplicate_map_completion_detected() {
        let cfg = crate::SimConfig::tiny(6, 9);
        let ins = inputs();
        let mut r = crate::Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        let dup = r.trace.tasks.iter().find(|t| t.kind == TaskKind::Map).unwrap().clone();
        r.trace.tasks.push(dup);
        let err = check_report(&r, &ins).unwrap_err();
        assert!(err.contains("not exactly-once"), "{err}");
    }

    #[test]
    fn completion_on_downed_node_detected() {
        let cfg = crate::SimConfig::tiny(6, 9);
        let ins = inputs();
        let mut r = crate::Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        // Forge a crash window covering some task's whole span.
        let t = r.trace.tasks[0].clone();
        r.faults.push(pnats_obs::FaultRecord {
            t: t.assigned,
            kind: FaultKind::NodeCrash,
            node: t.node as u32,
            job: None,
            task: None,
        });
        let err = check_report(&r, &ins).unwrap_err();
        assert!(err.contains("downtime"), "{err}");
    }

    #[test]
    fn runtime_ledger_laws() {
        use pnats_obs::{SchedCounters, TaskCompletion, TaskKind as K};
        let c = |kind, index, epoch| TaskCompletion { kind, index, epoch };
        // Clean: 2 maps (one re-executed), 1 reduce.
        let ledger = vec![c(K::Map, 0, 0), c(K::Map, 1, 0), c(K::Map, 1, 1), c(K::Reduce, 0, 0)];
        check_runtime_completions(&ledger, 2, 1).unwrap();
        // Missing epoch 0 for map 1 → non-contiguous.
        let gap = vec![c(K::Map, 0, 0), c(K::Map, 1, 1), c(K::Reduce, 0, 0)];
        let err = check_runtime_completions(&gap, 2, 1).unwrap_err();
        assert!(err.contains("not exactly-once-contiguous"), "{err}");
        // Duplicate reduce.
        let dup = vec![c(K::Map, 0, 0), c(K::Reduce, 0, 0), c(K::Reduce, 0, 0)];
        let err = check_runtime_completions(&dup, 1, 1).unwrap_err();
        assert!(err.contains("completions (want 1)"), "{err}");

        let mut counters = SchedCounters {
            offers: 4,
            assigns: 4,
            reexecuted_maps: 1,
            ..SchedCounters::default()
        };
        check_cluster_run(&counters, &ledger, 2, 1, false).unwrap();
        // A recovery incarnation books the same epoch>0 entry as inherited
        // rather than re-executed; the split still tiles the ledger.
        counters.reexecuted_maps = 0;
        counters.recovered_reexec = 1;
        check_cluster_run(&counters, &ledger, 2, 1, false).unwrap();
        // Booked re-executions must match epoch>0 entries.
        counters.recovered_reexec = 0;
        let err = check_cluster_run(&counters, &ledger, 2, 1, false).unwrap_err();
        assert!(err.contains("re-execution mismatch"), "{err}");
        // A failed run owes no completeness...
        check_cluster_run(&counters, &gap[..1], 2, 1, true).unwrap();
        // ...but never a duplicate.
        let err = check_cluster_run(&counters, &dup, 1, 1, true).unwrap_err();
        assert!(err.contains("duplicate completion"), "{err}");
        // Offer conservation is checked either way.
        counters.offers = 5;
        let err = check_cluster_run(&counters, &ledger, 2, 1, true).unwrap_err();
        assert!(err.contains("offer identity"), "{err}");
    }

    #[test]
    fn monotone_with_slack() {
        check_makespan_monotone(&[100.0, 99.5, 120.0, 180.0], 0.02).unwrap();
        let err = check_makespan_monotone(&[100.0, 80.0], 0.05).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }
}
