#![warn(missing_docs)]
//! # pnats-sim — discrete-event MapReduce cluster simulator
//!
//! The paper evaluates on 60 nodes of Clemson's Palmetto cluster running
//! Hadoop 1.2.1. This crate is the stand-in testbed: a discrete-event
//! simulator of a slot-based MapReduce cluster with an explicit network.
//! What it models, and why each piece exists:
//!
//! * **Slots & heartbeats** ([`state`], [`runner`]) — each node has `m` map
//!   and `r` reduce slots and heartbeats the JobTracker every second; all
//!   placement decisions happen at heartbeats through the
//!   [`pnats_core::placer::TaskPlacer`] trait, exactly the surface the
//!   paper's Algorithms 1/2 and both baselines plug into.
//! * **Fluid network** ([`transfers`] over [`pnats_net::flow`]) — every
//!   remote map-input fetch and every shuffle segment is a flow receiving
//!   its max-min fair share; transfer times therefore respond to placement
//!   the way the paper's testbed did (bad placement ⇒ shared bottlenecks ⇒
//!   stragglers).
//! * **Map/reduce lifecycle** ([`state`]) — maps fetch (if remote), then
//!   compute at a per-node rate; their intermediate output per reduce
//!   partition follows the workload's shuffle model with per-map jitter.
//!   Reduces shuffle from every finished map (bounded parallel copiers),
//!   then merge+reduce. Progress reports (`d_read`, `A_jf`) are derived
//!   from task state, feeding the paper's estimator.
//! * **Job-level fair scheduling** ([`runner`]) — the paper keeps Hadoop's
//!   Fair Scheduler at the job level and varies only task-level placement;
//!   so do we.
//! * **Network-condition monitoring** — completed transfers feed a
//!   [`pnats_net::RateMonitor`]; with
//!   [`SimConfig::network_condition`](config::SimConfig) enabled the
//!   scheduler sees congestion-scaled costs (§II-B3).
//! * **Fault knobs** ([`config`]) — per-node slowdown factors, background
//!   traffic and a seeded [`pnats_core::FaultPlan`] (node crashes with
//!   MapReduce recovery semantics, transient map failures with bounded
//!   retries, heartbeat loss, link degradation), for the
//!   robustness/ablation experiments. The [`oracle`] module checks any
//!   finished report against the conservation laws faulty runs must keep.
//!
//! Determinism: one seed drives every stochastic choice; identical config +
//! seed ⇒ identical traces.

pub mod config;
pub mod events;
pub mod freeset;
pub mod oracle;
pub mod runner;
pub mod service;
pub mod state;
pub mod trace;
pub mod transfers;

pub use config::{background_traffic, BackgroundFlow, DataLayout, JobInput, SimConfig, TopologyKind};
pub use oracle::{
    check_cluster_run, check_makespan_monotone, check_report, check_runtime_completions,
};
pub use runner::{job_inputs_from_batch, SimReport, Simulation};
pub use service::TenantRunStats;
pub use trace::{JobRecord, TaskKind, TaskRecord, Trace};
