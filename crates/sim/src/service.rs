//! Runtime state for the multi-tenant service mode (`pnats-tenancy`).
//!
//! The policy crate ([`pnats_tenancy`]) is pure — specs, the DWRR
//! arbiter, the admission predicate. This module holds the *runtime*
//! side the simulator threads through its event loop: per-tenant demand
//! indexes mirroring `active_jobs` / `jobs_wanting_maps` (maintained at
//! the same two choke points, so they are exact partitions by tenant),
//! per-tenant service counters, and the preemption cooldown clock.
//!
//! Everything here is gated behind `SimConfig::tenancy`; a `None` config
//! never constructs a [`TenancyState`] and the simulator runs the classic
//! single-pool paths untouched.

use pnats_tenancy::{DwrrArbiter, TenancyConfig, TenantCounters};

/// Per-tenant outcome tallies surfaced in a [`crate::SimReport`].
#[derive(Clone, Debug)]
pub struct TenantRunStats {
    /// Tenant name (from its [`pnats_tenancy::TenantSpec`]).
    pub name: String,
    /// Configured weight.
    pub weight: f64,
    /// Admission / rejection / preemption tallies.
    pub counters: TenantCounters,
}

/// Mutable tenancy runtime threaded through the simulation.
pub(crate) struct TenancyState {
    /// The policy configuration (tenants, tags, switches).
    pub cfg: TenancyConfig,
    /// Single tenant, all policies off: the simulator must take exactly
    /// the classic code paths (byte-identical traces).
    pub passthrough: bool,
    /// Slot-granularity weighted arbiter over tenants for map slots.
    pub arbiter: DwrrArbiter,
    /// Per-tenant service tallies.
    pub counters: Vec<TenantCounters>,
    /// Jobs currently admitted and not yet finished, per tenant.
    pub in_system: Vec<u32>,
    /// Per-tenant partition of `jobs_wanting_maps` (ascending job ids).
    pub wanting_maps: Vec<Vec<usize>>,
    /// Per-tenant partition of `active_jobs` (ascending job ids).
    pub active: Vec<Vec<usize>>,
    /// Ascending tenant ids with non-empty `wanting_maps` — the demand
    /// set the arbiter cycles over.
    pub demanding: Vec<usize>,
    /// Last preemption time (cooldown anchor); `-inf` before the first.
    pub last_preempt_t: f64,
}

impl TenancyState {
    pub fn new(cfg: TenancyConfig, n_jobs: usize) -> Self {
        assert!(
            cfg.job_tenant.iter().all(|&t| (t as usize) < cfg.tenants.len()),
            "job tenant tag out of range"
        );
        assert!(
            cfg.job_tenant.len() >= n_jobs,
            "tenancy config tags {} jobs, batch has {}",
            cfg.job_tenant.len(),
            n_jobs
        );
        let n = cfg.tenants.len();
        let arbiter = DwrrArbiter::new(&cfg.tenants.weights());
        let passthrough = cfg.is_passthrough();
        Self {
            cfg,
            passthrough,
            arbiter,
            counters: vec![TenantCounters::default(); n],
            in_system: vec![0; n],
            wanting_maps: vec![Vec::new(); n],
            active: vec![Vec::new(); n],
            demanding: Vec::new(),
            last_preempt_t: f64::NEG_INFINITY,
        }
    }

    /// Whether the per-tenant demand indexes are maintained: any policy
    /// that consults them is on. Passthrough runs skip the bookkeeping
    /// entirely (it is pure overhead there).
    pub fn track_demand(&self) -> bool {
        self.cfg.fairness || self.cfg.preemption
    }

    /// Mirror of `refresh_wants_maps` for the per-tenant partition:
    /// insert/remove `ji` in its tenant's wanting-maps list and keep the
    /// tenant demand set (and the arbiter's queue-empty reset rule) in
    /// sync.
    pub fn set_wants_maps(&mut self, ji: usize, wanted: bool) {
        let t = self.cfg.tenant_of(ji);
        let list = &mut self.wanting_maps[t];
        match list.binary_search(&ji) {
            Ok(pos) if !wanted => {
                list.remove(pos);
                if list.is_empty() {
                    // Tenant's queue drained: forfeit accumulated deficit
                    // (DWRR's anti-burst rule) and leave the demand set.
                    self.arbiter.reset(t);
                    if let Ok(dp) = self.demanding.binary_search(&t) {
                        self.demanding.remove(dp);
                    }
                }
            }
            Err(pos) if wanted => {
                if list.is_empty() {
                    if let Err(dp) = self.demanding.binary_search(&t) {
                        self.demanding.insert(dp, t);
                    }
                }
                list.insert(pos, ji);
            }
            _ => {}
        }
    }

    /// Mirror of `refresh_active` for the per-tenant partition.
    pub fn set_active(&mut self, ji: usize, wanted: bool) {
        let t = self.cfg.tenant_of(ji);
        let list = &mut self.active[t];
        match list.binary_search(&ji) {
            Ok(pos) if !wanted => {
                list.remove(pos);
            }
            Err(pos) if wanted => list.insert(pos, ji),
            _ => {}
        }
    }

    /// Book a job admission for tenant `t`.
    pub fn admit_job(&mut self, t: usize) {
        self.counters[t].admitted += 1;
        self.in_system[t] += 1;
        let peak = &mut self.counters[t].peak_in_system;
        *peak = (*peak).max(self.in_system[t] as u64);
    }

    /// Book a job leaving the system (completed or failed) for its tenant.
    pub fn job_left(&mut self, ji: usize) {
        let t = self.cfg.tenant_of(ji);
        debug_assert!(self.in_system[t] > 0, "in_system underflow for tenant {t}");
        self.in_system[t] = self.in_system[t].saturating_sub(1);
    }

    /// Per-tenant stats for the report.
    pub fn run_stats(&self) -> Vec<TenantRunStats> {
        self.cfg
            .tenants
            .iter()
            .zip(&self.counters)
            .map(|(spec, c)| TenantRunStats {
                name: spec.name.clone(),
                weight: spec.weight,
                counters: c.clone(),
            })
            .collect()
    }
}
