//! Property tests of the multi-tenant service layer: for *arbitrary*
//! small clusters, tenant sets (weights, queue caps, minimum shares) and
//! staggered job streams with all three tenancy policies enabled, every
//! run must satisfy the trace oracle — which pins the three service-mode
//! laws on top of the classic conservation laws:
//!
//! * **slot capacity** — the DWRR arbiter never assigns more concurrent
//!   tasks than the cluster has slots (oracle law 8);
//! * **admission bounds** — no tenant ever holds more in-system jobs
//!   than its queue cap (checked directly against `peak_in_system`), and
//!   rejected jobs leave no trace records (oracle law 6);
//! * **preemption requeue** — every `MapPreempted` fault is followed by
//!   a `TaskRescheduled` for the same attempt at the same instant
//!   (oracle law 7).
//!
//! Per-tenant arrival accounting (`admitted + rejected` equals the
//! tenant's submissions) and seed-determinism of the full service path
//! are asserted alongside. The case count honors `PROPTEST_CASES`.

use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_sim::{check_report, JobInput, SimConfig, SimReport, Simulation};
use pnats_tenancy::{TenancyConfig, TenantSet, TenantSpec};
use pnats_workloads::{AppKind, ShuffleModel};
use proptest::prelude::*;

const MAX_TENANTS: usize = 4;

/// One generated job: `(maps, reduces, submit, tenant)` over the maximum
/// tenant domain; the scenario builder folds the tenant index onto the
/// drawn tenant count (the vendored proptest shim has no dependent
/// strategies).
type RawJob = (usize, usize, f64, usize);

fn job_strategy() -> impl Strategy<Value = RawJob> {
    (1..8usize, 0..3usize, 0.0f64..90.0, 0..MAX_TENANTS)
}

/// One generated tenant: `(weight, queue cap, raw min-share)`. A cap of 6
/// means unbounded; the raw min-share is scaled down by the tenant count
/// so the combined guarantee never exceeds the cluster.
type RawTenant = (f64, usize, f64);

fn tenant_strategy() -> impl Strategy<Value = RawTenant> {
    (0.5f64..4.0, 1..7usize, 0.0f64..0.6)
}

#[derive(Debug, Clone)]
struct Scenario {
    n_nodes: usize,
    tenants: Vec<RawTenant>,
    jobs: Vec<RawJob>,
    saturation_backlog: f64,
    cooldown_s: f64,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        (3..8usize, proptest::collection::vec(tenant_strategy(), 1..=MAX_TENANTS)),
        proptest::collection::vec(job_strategy(), 2..10),
        (0.5f64..4.0, 1.0f64..10.0, 0..1_000_000u64),
    )
        .prop_map(|((n_nodes, tenants), jobs, (sat, cool, seed))| Scenario {
            n_nodes,
            tenants,
            jobs,
            saturation_backlog: sat,
            cooldown_s: cool,
            seed,
        })
}

fn build(sc: &Scenario) -> (SimConfig, Vec<JobInput>, TenancyConfig) {
    let n_tenants = sc.tenants.len();
    let specs: Vec<TenantSpec> = sc
        .tenants
        .iter()
        .enumerate()
        .map(|(t, &(w, cap, raw_share))| {
            let mut s = TenantSpec::new(&format!("t{t}"), w)
                .with_min_share(raw_share / n_tenants as f64);
            if cap < 6 {
                s = s.with_queue_cap(cap);
            }
            s
        })
        .collect();
    let inputs: Vec<JobInput> = sc
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(maps, reduces, submit, _))| JobInput {
            name: format!("job{i}"),
            submit,
            block_sizes: vec![64 << 20; maps],
            n_reduces: reduces,
            shuffle: ShuffleModel::for_app(AppKind::Terasort),
        })
        .collect();
    let tags: Vec<u32> = sc.jobs.iter().map(|&(_, _, _, t)| (t % n_tenants) as u32).collect();
    let mut tc = TenancyConfig::new(TenantSet::new(specs), tags);
    tc.fairness = true;
    tc.admission = true;
    tc.preemption = true;
    tc.saturation_backlog = sc.saturation_backlog;
    tc.preempt_cooldown_s = sc.cooldown_s;
    let mut cfg = SimConfig::tiny(sc.n_nodes, sc.seed);
    cfg.max_sim_time = 20_000.0;
    (cfg, inputs, tc)
}

fn run(sc: &Scenario) -> (SimReport, Vec<JobInput>, TenancyConfig) {
    let (mut cfg, inputs, tc) = build(sc);
    cfg.tenancy = Some(tc.clone());
    let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&inputs);
    (r, inputs, tc)
}

proptest! {
    #[test]
    /// The oracle holds on every generated service-mode run: offer
    /// conservation, task/job accounting for admitted jobs, rejection
    /// accounting, preemption requeue, and the slot-capacity bound.
    fn oracle_holds_under_all_policies(sc in scenario_strategy()) {
        let (r, inputs, _) = run(&sc);
        check_report(&r, &inputs).unwrap_or_else(|e| panic!("{sc:?}: {e}"));
    }

    #[test]
    /// Admission control never lets a tenant's in-system job count exceed
    /// its queue cap, and every submission is accounted exactly once as
    /// admitted or rejected.
    fn queue_caps_bound_in_system_jobs(sc in scenario_strategy()) {
        let (r, _, tc) = run(&sc);
        for (t, ts) in r.tenants.iter().enumerate() {
            let cap = tc.tenants.get(t).queue_cap as u64;
            assert!(
                ts.counters.peak_in_system <= cap,
                "{sc:?}: tenant {t} peaked at {} jobs, cap {cap}",
                ts.counters.peak_in_system
            );
            let submitted = tc.job_tenant.iter().filter(|&&x| x as usize == t).count() as u64;
            assert_eq!(
                ts.counters.admitted + ts.counters.rejected(),
                submitted,
                "{sc:?}: tenant {t} arrival accounting leaked"
            );
        }
    }

    #[test]
    /// The full service path is deterministic: identical scenario, seed
    /// and policies produce bit-identical outcomes and counters.
    fn service_mode_is_deterministic(sc in scenario_strategy()) {
        let (a, _, _) = run(&sc);
        let (b, _, _) = run(&sc);
        assert_eq!(a.sim_end.to_bits(), b.sim_end.to_bits(), "{sc:?}");
        assert_eq!(a.counters.to_kv(), b.counters.to_kv(), "{sc:?}");
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.counters, y.counters, "{sc:?}");
        }
    }
}
