//! Property tests of the fault-injection subsystem: for *arbitrary* seeded
//! fault plans — crash/recover schedules (including whole-cluster
//! blackouts), transient map failures, heartbeat loss windows and link
//! degradations — the simulation must terminate and the invariant oracle
//! must accept the report. The case count honors `PROPTEST_CASES`, which
//! CI pins for a fixed budget.

use pnats_core::faults::{FaultPlan, HeartbeatLoss, LinkDegradation, NodeCrash};
use pnats_core::prob_sched::ProbabilisticPlacer;
use pnats_sim::{check_report, JobInput, SimConfig, Simulation};
use pnats_workloads::{AppKind, ShuffleModel};
use proptest::prelude::*;

const N_NODES: usize = 5;

fn crash_strategy() -> impl Strategy<Value = NodeCrash> {
    // `rec < 0` encodes "never recovers"; otherwise recovery follows the
    // crash by 5..205 seconds (strictly after `at`, as validate() demands).
    (0usize..N_NODES, 1.0f64..120.0, -50.0f64..200.0).prop_map(|(node, at, rec)| NodeCrash {
        node,
        at,
        recover_at: (rec >= 0.0).then_some(at + 5.0 + rec),
    })
}

fn loss_strategy() -> impl Strategy<Value = HeartbeatLoss> {
    (0usize..N_NODES, 0.0f64..100.0, 1.0f64..100.0)
        .prop_map(|(node, from, dur)| HeartbeatLoss { node, from, until: from + dur })
}

fn degr_strategy() -> impl Strategy<Value = LinkDegradation> {
    (0usize..N_NODES, 0.0f64..100.0, 1.0f64..150.0, 0.05f64..1.0).prop_map(
        |(node, from, dur, factor)| LinkDegradation { node, from, until: from + dur, factor },
    )
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(crash_strategy(), 0..4),
        0.0f64..0.4,
        3u32..8,
        proptest::collection::vec(loss_strategy(), 0..2),
        proptest::collection::vec(degr_strategy(), 0..2),
    )
        .prop_map(|(crashes, p, max_attempts, losses, degrs)| FaultPlan {
            crashes,
            transient_map_failure_p: p,
            max_attempts,
            heartbeat_losses: losses,
            link_degradations: degrs,
        })
}

fn inputs() -> Vec<JobInput> {
    vec![JobInput {
        name: "prop".into(),
        submit: 0.0,
        block_sizes: vec![48 << 20; 6],
        n_reduces: 2,
        shuffle: ShuffleModel::for_app(AppKind::Terasort),
    }]
}

proptest! {
    #[test]
    fn arbitrary_plans_terminate_and_satisfy_the_oracle(
        plan in plan_strategy(),
        seed in 0u64..1_000,
    ) {
        let mut cfg = SimConfig::tiny(N_NODES, seed);
        // Bound the walk so permanently-dead clusters stop promptly.
        cfg.max_sim_time = 3_000.0;
        plan.validate(N_NODES).expect("strategy builds valid plans");
        cfg.faults = plan;
        let ins = inputs();
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        // Terminated (run returned) — now every conservation law must hold,
        // completed or not, failed or not.
        prop_assert!(check_report(&r, &ins).is_ok(), "{:?}", check_report(&r, &ins));
        prop_assert!(r.jobs_completed + r.jobs_failed <= r.jobs_submitted);
    }

    #[test]
    fn blackout_with_full_recovery_always_finishes(
        at in 5.0f64..40.0,
        gap in 50.0f64..150.0,
        seed in 0u64..500,
    ) {
        // Every node (hence every replica set) dies, then every node
        // recovers: the scheduler must ride out the blackout on NodeDead
        // skips and dead heartbeats — no deadlock, batch completes.
        let mut cfg = SimConfig::tiny(N_NODES, seed);
        cfg.max_sim_time = 10_000.0;
        cfg.faults = FaultPlan {
            crashes: (0..N_NODES)
                .map(|n| NodeCrash { node: n, at: at + n as f64 * 0.1, recover_at: Some(at + gap) })
                .collect(),
            ..FaultPlan::none()
        };
        let ins = inputs();
        let r = Simulation::new(cfg, Box::new(ProbabilisticPlacer::paper())).run(&ins);
        prop_assert!(r.all_completed(), "stalled at {}/{}", r.jobs_completed, r.jobs_submitted);
        prop_assert!(check_report(&r, &ins).is_ok(), "{:?}", check_report(&r, &ins));
    }
}
