//! Property tests of the incremental cost maintenance: for *arbitrary*
//! small clusters (≤12 nodes), job shapes (≤64 tasks) and seeded
//! [`FaultPlan`]s, the incremental `C_ave` / cost path must equal full
//! recomputation after every event.
//!
//! The check runs each generated scenario twice with the cost index
//! forced on — once under [`CostPath::Incremental`] (class-compressed
//! tables, generation-keyed `C_ave` cache) and once under
//! [`CostPath::Reference`], which recomputes the legacy per-node mean at
//! every decision and asserts the classed value against it *inside* the
//! placer (`nearly_equal`, plus a full audit of the free-set view). Byte
//! equality of the two decision traces then pins that the incremental
//! bookkeeping never drifted, across crashes, recoveries, heartbeat loss
//! and link degradation. The case count honors `PROPTEST_CASES`.

use pnats_core::faults::{FaultPlan, NodeCrash};
use pnats_core::prob_sched::{CostPath, ProbabilisticPlacer};
use pnats_obs::InMemorySink;
use pnats_sim::{check_report, JobInput, SimConfig, SimReport, Simulation};
use pnats_workloads::{AppKind, ShuffleModel};
use proptest::prelude::*;

const MAX_NODES: usize = 12;

/// Raw crash ingredients over the *maximum* node domain; [`build_plan`]
/// folds the node index onto whatever cluster size the shape drew (the
/// vendored proptest shim has no `prop_flat_map` for dependent
/// strategies).
type RawCrash = (usize, f64, f64);

fn crash_strategy() -> impl Strategy<Value = RawCrash> {
    (0..MAX_NODES, 1.0f64..120.0, -50.0f64..200.0)
}

fn plan_parts_strategy() -> impl Strategy<Value = (Vec<RawCrash>, f64, u32)> {
    (proptest::collection::vec(crash_strategy(), 0..3), 0.0f64..0.3, 3u32..6)
}

fn build_plan(parts: &(Vec<RawCrash>, f64, u32), n_nodes: usize) -> FaultPlan {
    let (raw, p, max_attempts) = parts;
    FaultPlan {
        crashes: raw
            .iter()
            .map(|&(node, at, rec)| NodeCrash {
                node: node % n_nodes,
                at,
                recover_at: (rec >= 0.0).then_some(at + 5.0 + rec),
            })
            .collect(),
        transient_map_failure_p: *p,
        max_attempts: *max_attempts,
        ..FaultPlan::none()
    }
}

/// Cluster + workload shapes: 3–12 nodes, 1–2 jobs, ≤64 tasks total.
#[derive(Debug, Clone)]
struct Shape {
    n_nodes: usize,
    jobs: Vec<(usize, usize)>, // (maps, reduces)
    network_condition: bool,
    fluid: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        3usize..=MAX_NODES,
        proptest::collection::vec((1usize..=28, 1usize..=4), 1..=2),
        (0u8..2).prop_map(|b| b == 1),
        (0u8..2).prop_map(|b| b == 1),
    )
        .prop_map(|(n_nodes, jobs, network_condition, fluid)| Shape {
            n_nodes,
            jobs,
            network_condition,
            fluid,
        })
}

fn build(shape: &Shape, plan: &FaultPlan, seed: u64) -> (SimConfig, Vec<JobInput>) {
    let mut cfg = SimConfig::tiny(shape.n_nodes, seed);
    cfg.max_sim_time = 5_000.0;
    cfg.network_condition = shape.network_condition;
    cfg.fluid_network = shape.fluid;
    // Force the class-compressed machinery on — the auto-gate would leave
    // it off at this scale, and an idle index is vacuously correct.
    cfg.cost_index = Some(true);
    cfg.faults = plan.clone();
    let inputs = shape
        .jobs
        .iter()
        .enumerate()
        .map(|(ji, &(maps, reduces))| JobInput {
            name: format!("prop{ji}"),
            submit: 4.0 * ji as f64,
            block_sizes: vec![48 << 20; maps],
            n_reduces: reduces,
            shuffle: ShuffleModel::for_app(AppKind::Terasort),
        })
        .collect();
    (cfg, inputs)
}

fn run_path(cfg: &SimConfig, inputs: &[JobInput], path: CostPath) -> SimReport {
    let placer = Box::new(ProbabilisticPlacer::paper().with_cost_path(path));
    Simulation::new(cfg.clone(), placer)
        .with_trace(Box::new(InMemorySink::unbounded()))
        .run(inputs)
}

/// Every externally visible byte of a run.
fn artifacts(r: &SimReport) -> (String, String, String, u64) {
    (
        r.trace_jsonl.clone().expect("traced run yields JSONL"),
        r.trace.tasks_csv(),
        r.trace.jobs_csv(),
        r.sim_end.to_bits(),
    )
}

proptest! {
    #[test]
    fn incremental_cost_maintenance_equals_full_recompute(
        shape in shape_strategy(),
        seed in 0u64..1_000,
    ) {
        let (cfg, inputs) = build(&shape, &FaultPlan::none(), seed);
        let inc = run_path(&cfg, &inputs, CostPath::Incremental);
        let full = run_path(&cfg, &inputs, CostPath::Reference);
        prop_assert_eq!(artifacts(&inc), artifacts(&full), "incremental path drifted");
        prop_assert_eq!(&inc.counters, &full.counters);
        prop_assert!(check_report(&inc, &inputs).is_ok(), "{:?}", check_report(&inc, &inputs));
    }

    #[test]
    fn incremental_cost_maintenance_survives_arbitrary_faults(
        shape in shape_strategy(),
        plan_parts in plan_parts_strategy(),
        seed in 0u64..1_000,
    ) {
        let plan = build_plan(&plan_parts, shape.n_nodes);
        plan.validate(shape.n_nodes).expect("strategy builds valid plans");
        let (cfg, inputs) = build(&shape, &plan, seed);
        let inc = run_path(&cfg, &inputs, CostPath::Incremental);
        let full = run_path(&cfg, &inputs, CostPath::Reference);
        prop_assert_eq!(artifacts(&inc), artifacts(&full), "incremental path drifted under faults");
        prop_assert_eq!(&inc.counters, &full.counters);
        prop_assert!(check_report(&inc, &inputs).is_ok(), "{:?}", check_report(&inc, &inputs));
    }
}
