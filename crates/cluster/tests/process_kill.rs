//! OS-process cluster test: a tracker process, four worker processes,
//! one worker SIGKILLed mid-job. The tracker must expire the dead peer,
//! invalidate and re-execute its map outputs, and finish with output
//! byte-identical to an in-process engine run — the acceptance gate for
//! the runtime's liveness machinery.

use pnats_cluster::{placer_by_name, ClusterConfig, JobSpec, ReportSummary};
use pnats_engine::MapReduceEngine;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "node", "rack", "block", "task", "slot", "probe", "place", "spill", "merge", "fetch",
    ];
    let mut s = String::new();
    let mut x = 0xD1B5_4A32_D192_ED03u64;
    while s.len() < kib * 1024 {
        for _ in 0..9 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

/// Kill every child on drop so a failing assert never leaks processes.
struct Reaper(Vec<Child>);
impl Drop for Reaper {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

#[test]
fn sigkilled_worker_is_survived() {
    let dir = std::env::temp_dir().join(format!("pnats-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let input_path = dir.join("input.txt");
    let report_path = dir.join("report.txt");

    // Sized so the job takes long enough (~paced maps over 2 waves) for
    // the kill + expiry to land mid-flight.
    let input = words_input(256);
    std::fs::write(&input_path, &input).expect("write input");

    let cfg = ClusterConfig {
        n_nodes: 4,
        block_bytes: 16 << 10,
        heartbeat: Duration::from_millis(5),
        expire_after: 6,
        cpu_us_per_kib: 12_000,
        ..ClusterConfig::default()
    };
    let n_reduces = 3;

    // Reference: in-process engine, same seed, no faults.
    let engine = MapReduceEngine::new(cfg.engine_config());
    let expected = engine.run(
        &JobSpec::WordCount.job(n_reduces),
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    assert!(!expected.failed);

    let bin = env!("CARGO_BIN_EXE_pnats-cluster");
    let mut tracker = Command::new(bin)
        .args([
            "tracker",
            "--listen", "127.0.0.1:0",
            "--job", "wordcount",
            "--input", input_path.to_str().unwrap(),
            "--nodes", "4",
            "--reduces", "3",
            "--block-bytes", "16384",
            "--heartbeat-ms", "5",
            "--expire-after", "6",
            "--cpu-us-per-kib", "12000",
            "--max-wall-s", "60",
            "--report", report_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn tracker");

    // The tracker prints its ephemeral address on the first stdout line.
    let addr = {
        let out = tracker.stdout.take().expect("tracker stdout");
        let mut line = String::new();
        BufReader::new(out).read_line(&mut line).expect("read addr line");
        line.trim().rsplit(' ').next().expect("addr token").to_string()
    };

    let mut reaper = Reaper(vec![tracker]);
    for node in 0..4u32 {
        let worker = Command::new(bin)
            .args([
                "worker",
                "--node", &node.to_string(),
                "--tracker", &addr,
                "--heartbeat-ms", "5",
            ])
            .spawn()
            .expect("spawn worker");
        reaper.0.push(worker);
    }

    // Let the job get rolling, then SIGKILL worker 1 (reaper index 2).
    std::thread::sleep(Duration::from_millis(150));
    reaper.0[2].kill().expect("SIGKILL worker");
    let _ = reaper.0[2].wait();

    // Wait for the tracker to finish and write its report.
    let deadline = Instant::now() + Duration::from_secs(90);
    let status = loop {
        if let Some(st) = reaper.0[0].try_wait().expect("tracker poll") {
            break st;
        }
        assert!(Instant::now() < deadline, "tracker did not finish in time");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "tracker exited with failure: {status:?}");

    let text = std::fs::read_to_string(&report_path).expect("read report");
    let summary = ReportSummary::parse(&text).expect("parse report");
    assert!(!summary.failed, "job must complete despite the kill");
    assert_eq!(
        summary.output, expected.output,
        "post-kill output diverged from the engine reference"
    );
    assert!(summary.counters.consistent(), "offer conservation");
    assert_eq!(summary.skipped_offers, summary.counters.total_skips());
    assert!(
        summary.counters.peers_expired >= 1,
        "the SIGKILLed worker was never expired (counters: {})",
        summary.counters.to_kv()
    );
    assert!(summary.counters.node_crashes >= 1);
    // Assignment conservation with re-execution accounted.
    assert_eq!(
        summary.counters.assigns,
        (summary.n_maps + summary.n_reduces) as u64
            + summary.counters.retries
            + summary.counters.reexecuted_maps,
        "assignment conservation after kill (counters: {})",
        summary.counters.to_kv()
    );

    drop(reaper); // reap remaining workers (they exit as the tracker stops)
    let _ = std::fs::remove_dir_all(&dir);
}
