//! Fault-plan driven cluster tests: heartbeat-loss windows long enough to
//! expire a worker, scripted crash/recovery windows, and seeded transient
//! map failures — all must end in a correct (engine-identical) output
//! with oracle-consistent counters, and a completion ledger that passes
//! the simulator's exactly-once-per-epoch oracle.

use pnats_cluster::{
    check_cluster_report, placer_by_name, run_cluster, ClusterConfig, ClusterReport, JobSpec,
};
use pnats_core::faults::{FaultPlan, HeartbeatLoss, NodeCrash};
use pnats_engine::MapReduceEngine;
use std::time::Duration;

/// Both oracles, one call: the report-level accounting identities plus the
/// sim crate's ledger laws over the tracker's accepted completions.
fn assert_oracles(report: &ClusterReport) {
    check_cluster_report(report).expect("report oracle");
    pnats_sim::check_cluster_run(
        &report.counters,
        &report.completions,
        report.n_maps,
        report.n_reduces,
        report.failed,
    )
    .expect("completion-ledger oracle");
}

fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
        "juliett", "kilo", "lima",
    ];
    let mut s = String::new();
    let mut x = 0xA076_1D64_78BD_642Fu64;
    while s.len() < kib * 1024 {
        for _ in 0..10 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

/// Engine output for the same job/seed — the correctness reference. The
/// engine run uses *no* faults: recovery must not change the output.
fn reference_output(cfg: &ClusterConfig, spec: &JobSpec, n_reduces: usize, input: &str) -> Vec<(String, String)> {
    let mut ecfg = cfg.engine_config();
    ecfg.faults = FaultPlan::none();
    let engine = MapReduceEngine::new(ecfg);
    let report = engine.run(
        &spec.job(n_reduces),
        input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    assert!(!report.failed);
    report.output
}

/// Satellite: a heartbeat-loss window longer than `expire_after` rounds
/// must expire the worker (peers_expired + node_crashes), invalidate its
/// finished maps, and still let the worker re-register once the window
/// passes — the job completes with the exact no-fault output.
#[test]
fn heartbeat_loss_window_expires_and_recovers() {
    let mut cfg = ClusterConfig {
        heartbeat: Duration::from_millis(4),
        expire_after: 5,
        // Slow the maps down so the loss window reliably lands mid-job:
        // 16 KiB blocks cross the 8 KiB pacing boundary twice, so each map
        // sleeps ~32 ms regardless of build profile.
        cpu_us_per_kib: 2_000,
        block_bytes: 16 << 10,
        ..ClusterConfig::default()
    };
    cfg.faults.heartbeat_losses = vec![HeartbeatLoss { node: 1, from: 4.0, until: 60.0 }];
    let input = words_input(128);
    let expected = reference_output(&cfg, &JobSpec::WordCount, 3, &input);

    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let report = run_cluster(&cfg, &JobSpec::WordCount, 3, &input, placer);

    assert!(!report.failed, "job must survive the loss window");
    assert_oracles(&report);
    assert_eq!(report.output, expected, "recovery changed the output");
    assert!(report.counters.lost_heartbeats >= 1, "window produced no lost heartbeats");
    assert!(report.counters.peers_expired >= 1, "silent worker was never expired");
    assert!(
        report.counters.node_crashes >= report.counters.peers_expired,
        "every expiry is recorded as a crash"
    );
}

/// A scripted crash window (dead for rounds 6..40) kills the worker's
/// outputs; its re-registration after recovery must not corrupt the job.
#[test]
fn scripted_crash_window_reexecutes_lost_maps() {
    let mut cfg = ClusterConfig {
        heartbeat: Duration::from_millis(4),
        // Paced maps (~32 ms each, see above) keep the job alive well past
        // the scripted crash round in both debug and release builds.
        cpu_us_per_kib: 2_000,
        block_bytes: 16 << 10,
        ..ClusterConfig::default()
    };
    cfg.faults.crashes = vec![NodeCrash { node: 2, at: 6.0, recover_at: Some(40.0) }];
    let input = words_input(128);
    let expected = reference_output(&cfg, &JobSpec::WordCount, 3, &input);

    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let report = run_cluster(&cfg, &JobSpec::WordCount, 3, &input, placer);

    assert!(!report.failed, "job must survive one crashed worker");
    assert_oracles(&report);
    assert_eq!(report.output, expected, "crash recovery changed the output");
    assert_eq!(report.counters.node_crashes, 1, "exactly the scripted crash");
    assert_eq!(report.counters.peers_expired, 0, "scripted crash, not expiry");
}

/// Safe-mode: with `safe_mode_below` above any reachable fraction the
/// tracker is permanently degraded, so the same heartbeat-loss window
/// that normally expires a worker must instead be waited out — no expiry,
/// no invalidation, one `degraded_mode` record, identical output.
#[test]
fn safe_mode_holds_expiry_during_mass_silence() {
    let mut cfg = ClusterConfig {
        heartbeat: Duration::from_millis(4),
        expire_after: 5,
        cpu_us_per_kib: 2_000,
        block_bytes: 16 << 10,
        safe_mode_below: 2.0, // unreachable threshold: always in safe-mode
        ..ClusterConfig::default()
    };
    cfg.faults.heartbeat_losses = vec![HeartbeatLoss { node: 1, from: 4.0, until: 60.0 }];
    let input = words_input(128);
    let expected = reference_output(&cfg, &JobSpec::WordCount, 3, &input);

    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let report = run_cluster(&cfg, &JobSpec::WordCount, 3, &input, placer);

    assert!(!report.failed, "job must survive the loss window");
    assert_oracles(&report);
    assert_eq!(report.output, expected, "safe-mode changed the output");
    assert!(report.counters.lost_heartbeats >= 1, "window produced no lost heartbeats");
    assert_eq!(report.counters.peers_expired, 0, "safe-mode must hold all expiry");
    assert!(report.counters.degraded_entries >= 1, "degraded entry never recorded");
}

/// Seeded transient failures: the doomed-attempt verdicts are the same
/// per-(map, attempt) draw the engine and simulator use, so the retry
/// count is exactly reproducible and the output is unchanged.
#[test]
fn transient_failures_retry_to_the_same_output() {
    let cfg = ClusterConfig {
        heartbeat: Duration::from_millis(3),
        faults: FaultPlan { transient_map_failure_p: 0.35, ..FaultPlan::none() },
        ..ClusterConfig::default()
    };
    let input = words_input(12);
    let expected = reference_output(&cfg, &JobSpec::WordCount, 3, &input);

    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let report = run_cluster(&cfg, &JobSpec::WordCount, 3, &input, placer);

    assert!(!report.failed);
    assert_oracles(&report);
    assert_eq!(report.output, expected);
    // Reproduce the exact retry count from the seeded draw: attempt k of
    // map m fails iff map_attempt_fails(seed, m, k), k counted from 1.
    let expected_retries: u64 = (0..report.n_maps)
        .map(|m| (1..).take_while(|&k| cfg.faults.map_attempt_fails(cfg.seed, m, k)).count() as u64)
        .sum();
    assert_eq!(
        report.counters.retries, expected_retries,
        "seeded doomed-attempt draw must be exactly reproduced"
    );
}
