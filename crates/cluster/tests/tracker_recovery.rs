//! The crash-recovery gate: a tracker killed mid-job (server torn down
//! with no goodbyes, exactly what SIGKILL leaves behind) and restarted
//! over its journal must finish the job with output byte-identical to the
//! engine, zero duplicate completions per crash epoch, and every worker
//! surviving the outage as an orphan rather than exiting.

use pnats_cluster::{
    check_cluster_report, check_journal_recovery, placer_by_name, read_journal, run_worker,
    ClusterConfig, JobSpec, JobTracker, JournalState, WorkerConfig,
};
use pnats_engine::MapReduceEngine;
use pnats_obs::DecisionObserver;
use std::path::PathBuf;
use std::time::Duration;

/// Deterministic prose-ish input, same generator as the parity gate.
fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "map", "reduce", "shuffle", "block", "replica", "rack", "probabilistic", "placement",
        "locality", "heartbeat", "tracker", "slot", "skew", "partition", "network",
    ];
    let mut s = String::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    while s.len() < kib * 1024 {
        for _ in 0..8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

fn scratch_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnats-recovery-{}-{tag}.journal", std::process::id()))
}

fn cfg(journal: PathBuf) -> ClusterConfig {
    ClusterConfig {
        heartbeat: Duration::from_millis(3),
        // Map pacing sleeps fire per 8 KiB consumed, so blocks must span
        // several pacing points for cpu cost to bite: 32 KiB blocks at
        // 10ms/KiB ≈ 320ms per map, slow enough that a fixed-offset
        // crash reliably lands mid-job instead of after the finish line.
        block_bytes: 32 << 10,
        cpu_us_per_kib: 10_000,
        journal: Some(journal),
        // Orphans must comfortably outlast the crash→restart gap.
        orphan_grace: Duration::from_secs(20),
        max_wall: Duration::from_secs(60),
        ..ClusterConfig::default()
    }
}

fn spawn_workers(cfg: &ClusterConfig, addr: &str) -> Vec<std::thread::JoinHandle<()>> {
    (0..cfg.n_nodes)
        .map(|i| {
            let wc = WorkerConfig {
                node: i as u32,
                tracker_addr: addr.to_string(),
                map_slots: cfg.map_slots,
                reduce_slots: cfg.reduce_slots,
                heartbeat: cfg.heartbeat,
                io_timeout: cfg.io_timeout,
                retry: cfg.retry.clone(),
                breaker: cfg.breaker,
                chaos: None,
                orphan_grace: cfg.orphan_grace,
            };
            std::thread::spawn(move || {
                let _ = run_worker(wc);
            })
        })
        .collect()
}

/// Start a job, hard-crash the tracker after `crash_after`, restart it on
/// the *same address* over the same journal, and check every recovery law.
fn crash_and_recover(tag: &str, crash_after: Duration) {
    let journal = scratch_journal(tag);
    let _ = std::fs::remove_file(&journal);
    let cfg = cfg(journal.clone());
    let spec = JobSpec::WordCount;
    let n_reduces = 3;
    let input = words_input(384); // 12 maps of 32 KiB

    let engine_report =
        MapReduceEngine::new(cfg.engine_config()).run(&spec.job(n_reduces), &input, {
            placer_by_name("paper", cfg.engine_config().heartbeat.as_secs_f64()).unwrap()
        });
    assert!(!engine_report.failed, "engine reference run failed");

    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let tracker = JobTracker::start(
        "127.0.0.1:0",
        cfg.clone(),
        spec.clone(),
        n_reduces,
        &input,
        placer,
        DecisionObserver::disabled(),
    )
    .expect("bind first incarnation");
    let addr = tracker.addr().to_string();
    let workers = spawn_workers(&cfg, &addr);

    std::thread::sleep(crash_after);
    tracker.crash(); // listener gone, zero goodbye replies — SIGKILL's shape

    // Restart on the SAME port: workers re-dial the address they know.
    let mut restarted = None;
    for _ in 0..50 {
        match JobTracker::start(
            &addr,
            cfg.clone(),
            spec.clone(),
            n_reduces,
            &input,
            placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
            DecisionObserver::disabled(),
        ) {
            Ok(t) => {
                restarted = Some(t);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("restart on {addr}: {e}"),
        }
    }
    let tracker = restarted.expect("rebind the tracker address");
    let report = tracker.wait();
    for w in workers {
        let _ = w.join();
    }

    let c = &report.counters;
    assert!(!report.failed, "recovered job failed (crash_after={crash_after:?})");
    assert_eq!(c.tracker_restarts, 1, "exactly one restart");
    assert_eq!(c.journal_replays, 1, "exactly one replay");
    assert!(
        c.worker_reattaches > 0,
        "workers must re-attach, not re-register: {c:?}"
    );
    // The tentpole acceptance line: byte-identical output after a kill.
    assert_eq!(
        report.output, engine_report.output,
        "recovered output diverged from engine output"
    );
    check_cluster_report(&report).expect("cluster oracle");
    // Exactly-once per crash epoch over the whole job's ledger.
    pnats_sim::check_cluster_run(
        c,
        &report.completions,
        report.n_maps,
        report.n_reduces,
        report.failed,
    )
    .expect("runtime ledger oracle");

    // The journal itself must replay to a fully-resolved final state.
    let records = read_journal(&journal).expect("read journal");
    check_journal_recovery(&records).expect("journal recovery law");

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn tracker_killed_mid_map_recovers_to_engine_parity() {
    // First map wave (~320ms/map) is still running: the journal holds
    // assignments but few or no completions.
    crash_and_recover("mid-map", Duration::from_millis(200));
}

#[test]
fn tracker_killed_mid_reduce_recovers_to_engine_parity() {
    // Slowstart has launched the reduces while the second map wave runs:
    // the outage orphans running reduces mid-shuffle.
    crash_and_recover("mid-reduce", Duration::from_millis(450));
}

/// Replaying the same journal twice must fold to byte-identical state —
/// recovery is a pure function of the record sequence.
#[test]
fn journal_replay_is_deterministic() {
    let journal = scratch_journal("determinism");
    let _ = std::fs::remove_file(&journal);
    let cfg = cfg(journal.clone());
    let spec = JobSpec::WordCount;
    let input = words_input(16);

    let tracker = JobTracker::start(
        "127.0.0.1:0",
        cfg.clone(),
        spec,
        2,
        &input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
        DecisionObserver::disabled(),
    )
    .expect("bind tracker");
    let addr = tracker.addr().to_string();
    let workers = spawn_workers(&cfg, &addr);
    let report = tracker.wait();
    for w in workers {
        let _ = w.join();
    }
    assert!(!report.failed);

    let records = read_journal(&journal).expect("read journal");
    let a = JournalState::from_records(&records).expect("first replay");
    let b = JournalState::from_records(&records).expect("second replay");
    assert_eq!(a.dump(), b.dump(), "replay must be deterministic");
    assert!(a.dump().contains("finished=Some(false)"), "journal records the finish");
    check_journal_recovery(&records).expect("journal recovery law");

    let _ = std::fs::remove_file(&journal);
}
