//! The parity gate: a cluster run (real TCP tracker + worker threads)
//! must produce output byte-identical to an engine run of the same job,
//! same input, same seed — for the paper's scheduler and for baselines.
//! Placement and timing may differ wildly between the runtimes; the
//! output may not.

use pnats_cluster::{check_cluster_report, placer_by_name, run_cluster, ClusterConfig, JobSpec};
use pnats_engine::{EngineJob, MapReduceEngine};
use std::time::Duration;

/// Deterministic prose-ish input: seeded words, fixed line lengths.
fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "map", "reduce", "shuffle", "block", "replica", "rack", "probabilistic", "placement",
        "locality", "heartbeat", "tracker", "slot", "skew", "partition", "network",
    ];
    let mut s = String::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    while s.len() < kib * 1024 {
        for _ in 0..8 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

/// Deterministic terasort-style input: 10-byte zero-padded keys + payload.
fn tera_input(records: usize) -> String {
    let mut s = String::new();
    let mut x = 0x9E37_79B9u64;
    for i in 0..records {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        s.push_str(&format!("{:010}payload-{i}\n", x % 10_000_000_000));
    }
    s
}

fn cfg() -> ClusterConfig {
    ClusterConfig {
        heartbeat: Duration::from_millis(3),
        ..ClusterConfig::default()
    }
}

fn engine_for(cfg: &ClusterConfig) -> MapReduceEngine {
    MapReduceEngine::new(cfg.engine_config())
}

fn assert_parity(spec: &JobSpec, n_reduces: usize, input: &str, scheduler: &str) {
    let cfg = cfg();
    let job: EngineJob = spec.job(n_reduces);
    let hb = cfg.engine_config().heartbeat.as_secs_f64();
    let engine_placer = placer_by_name(scheduler, hb).expect("known scheduler");
    let engine_report = engine_for(&cfg).run(&job, input, engine_placer);
    assert!(!engine_report.failed, "engine run failed");

    let cluster_placer = placer_by_name(scheduler, cfg.heartbeat.as_secs_f64()).unwrap();
    let report = run_cluster(&cfg, spec, n_reduces, input, cluster_placer);
    assert!(!report.failed, "cluster run failed ({scheduler})");
    check_cluster_report(&report).expect("cluster oracle");

    assert_eq!(report.n_maps, engine_report.n_maps, "{scheduler}: map count");
    assert_eq!(report.n_reduces, engine_report.n_reduces, "{scheduler}: reduce count");
    assert_eq!(
        report.output, engine_report.output,
        "{scheduler}: cluster output diverged from engine output"
    );
    // Fault-free: every task assigned exactly once (modulo lost-reply
    // requeues, which count as retries and are already conserved).
    assert_eq!(
        report.counters.assigns,
        (report.n_maps + report.n_reduces) as u64 + report.counters.retries,
        "{scheduler}: assignment conservation"
    );
    assert_eq!(report.counters.node_crashes, 0, "{scheduler}: phantom crashes");
}

#[test]
fn wordcount_parity_across_schedulers() {
    let input = words_input(24);
    for scheduler in ["paper", "fifo", "random"] {
        assert_parity(&JobSpec::WordCount, 3, &input, scheduler);
    }
}

#[test]
fn grep_parity_across_schedulers() {
    let input = words_input(20);
    for scheduler in ["paper", "fifo", "random"] {
        assert_parity(&JobSpec::Grep("rack".to_string()), 2, &input, scheduler);
    }
}

#[test]
fn terasort_parity_across_schedulers() {
    let input = tera_input(900);
    for scheduler in ["paper", "fifo", "random"] {
        assert_parity(&JobSpec::TeraSort, 4, &input, scheduler);
    }
}

#[test]
fn empty_input_still_completes() {
    let cfg = cfg();
    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let report = run_cluster(&cfg, &JobSpec::WordCount, 2, "", placer);
    assert!(!report.failed);
    check_cluster_report(&report).expect("oracle");
    assert_eq!(report.n_maps, 1, "empty input still yields one map");
    assert!(report.output.is_empty());
}
