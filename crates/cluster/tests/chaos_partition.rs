//! Wire-chaos acceptance tests for the cluster runtime: a transparent
//! chaos net must leave engine parity untouched, and a one-way partition
//! of a map-output source must be survived by circuit breaking the dead
//! holder, escalating `SourceUnreachable`, and re-executing the map on a
//! reachable node — with every trip and alternate fetch accounted for.

use pnats_cluster::{
    check_cluster_report, placer_by_name, run_cluster_chaos, ChaosFault, ClusterConfig, JobSpec,
    LinkRule,
};
use pnats_core::faults::FaultPlan;
use pnats_engine::MapReduceEngine;
use pnats_rpc::{BreakerPolicy, ChaosPlan, RetryPolicy};
use std::time::Duration;

fn words_input(kib: usize) -> String {
    const WORDS: &[&str] = &[
        "partition", "breaker", "escalate", "requeue", "holder", "fetch", "epoch", "ledger",
        "invalidate", "reroute",
    ];
    let mut s = String::new();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    while s.len() < kib * 1024 {
        for _ in 0..10 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(WORDS[(x >> 33) as usize % WORDS.len()]);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

fn chaos_cfg() -> ClusterConfig {
    ClusterConfig {
        n_nodes: 3,
        heartbeat: Duration::from_millis(4),
        // Tight deadlines and budgets so black-holed fetches fail in
        // milliseconds, not the 2 s production default.
        io_timeout: Duration::from_millis(100),
        retry: RetryPolicy {
            max_attempts: 2,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            seed: 7,
        },
        breaker: BreakerPolicy { threshold: 2, cooldown: 2 },
        max_wall: Duration::from_secs(60),
        ..ClusterConfig::default()
    }
}

fn reference_output(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    n_reduces: usize,
    input: &str,
) -> Vec<(String, String)> {
    let mut ecfg = cfg.engine_config();
    ecfg.faults = FaultPlan::none();
    let engine = MapReduceEngine::new(ecfg);
    let report = engine.run(
        &spec.job(n_reduces),
        input,
        placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap(),
    );
    assert!(!report.failed);
    report.output
}

/// With an empty plan every proxy is a transparent relay: the run must be
/// indistinguishable from `run_cluster` — engine-identical output, no
/// injected events, no breaker activity.
#[test]
fn transparent_chaos_net_preserves_engine_parity() {
    let cfg = chaos_cfg();
    let input = words_input(16);
    let expected = reference_output(&cfg, &JobSpec::WordCount, 3, &input);

    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let (report, net) =
        run_cluster_chaos(&cfg, &JobSpec::WordCount, 3, &input, placer, ChaosPlan::none());

    assert!(!report.failed, "transparent proxies must not perturb the job");
    check_cluster_report(&report).expect("report oracle");
    pnats_sim::check_cluster_run(
        &report.counters,
        &report.completions,
        report.n_maps,
        report.n_reduces,
        report.failed,
    )
    .expect("completion-ledger oracle");
    assert_eq!(report.output, expected, "chaos-net parity failure");
    assert!(net.events().is_empty(), "empty plan injected events: {:?}", net.events());
    assert_eq!(report.counters.breaker_trips, 0);
    assert_eq!(report.counters.reexecuted_maps, 0);
}

/// The tentpole acceptance scenario: worker 0's data plane answers no one
/// (requests arrive, replies vanish — a one-way partition). Reducers on
/// the other nodes must trip their breaker on the dead holder, escalate
/// `SourceUnreachable`, and the tracker must re-execute those maps on a
/// reachable node so the job still completes with the engine's exact
/// output — with `circuit_open`/`link_partitioned` records and breaker
/// counters accounting for the trips.
#[test]
fn one_way_partition_recovers_via_reexecution() {
    let cfg = chaos_cfg();
    let input = words_input(32);
    let expected = reference_output(&cfg, &JobSpec::WordCount, 3, &input);

    let plan = ChaosPlan::new(cfg.seed)
        .with_rule(LinkRule::on("data:w0", ChaosFault::PartitionFromUpstream));
    let placer = placer_by_name("paper", cfg.heartbeat.as_secs_f64()).unwrap();
    let (report, net) = run_cluster_chaos(&cfg, &JobSpec::WordCount, 3, &input, placer, plan);

    assert!(!report.failed, "job must route around the partitioned holder");
    check_cluster_report(&report).expect("report oracle");
    pnats_sim::check_cluster_run(
        &report.counters,
        &report.completions,
        report.n_maps,
        report.n_reduces,
        report.failed,
    )
    .expect("completion-ledger oracle");
    assert_eq!(report.output, expected, "partition recovery changed the output");

    let c = &report.counters;
    assert!(c.breaker_trips >= 1, "no breaker ever tripped: {c:?}");
    assert!(c.link_partitions >= 1, "no SourceUnreachable escalation was recorded: {c:?}");
    assert!(
        c.reexecuted_maps >= c.link_partitions,
        "every escalation re-executes its map: {c:?}"
    );
    assert!(c.alt_source_fetches >= 1, "recovered partition was never fetched: {c:?}");
    // The ledger must show the re-executed maps completing in epoch > 0.
    let reexec_entries = report
        .completions
        .iter()
        .filter(|t| t.kind == pnats_obs::TaskKind::Map && t.epoch > 0)
        .count() as u64;
    assert_eq!(reexec_entries, c.reexecuted_maps);
    // And the chaos net actually severed connections on the named link.
    assert!(
        net.events().iter().any(|e| e.link == "data:w0" && e.action.severs_link()),
        "no partition event recorded: {:?}",
        net.events()
    );
}
