//! What a cluster run produces, the oracle that validates it, and a flat
//! text serialization so the `pnats-cluster` binary can hand results to a
//! parent process (the smoke test, the kill test, CI).

use pnats_metrics::LocalityCounter;
use pnats_obs::{SchedCounters, TaskCompletion};
use std::time::Duration;

/// Result of one cluster job — the distributed twin of
/// [`pnats_engine::EngineReport`].
pub struct ClusterReport {
    /// Final key/value pairs, partition-major (within a partition, sorted
    /// by key). Byte-identical to the engine's output for the same seed.
    pub output: Vec<(String, String)>,
    /// Where each map assignment ran relative to its block replicas.
    pub map_locality: LocalityCounter,
    /// Where each reduce ran relative to its dominant shuffle source.
    pub reduce_locality: LocalityCounter,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Map task count.
    pub n_maps: usize,
    /// Reduce task count.
    pub n_reduces: usize,
    /// Placement offers the scheduler declined.
    pub skipped_offers: u64,
    /// Decision + fault counters for the run.
    pub counters: SchedCounters,
    /// The decision trace as JSONL when an in-memory sink was attached.
    pub trace_jsonl: Option<String>,
    /// Every completion the tracker accepted, in acceptance order — the
    /// exactly-once ledger `pnats_sim::check_cluster_run` audits. Not
    /// carried by the flat text form ([`to_text`](Self::to_text)); the
    /// oracle runs in-process where the full report is available.
    pub completions: Vec<TaskCompletion>,
    /// True when the job was aborted (retry budget exhausted, the whole
    /// fleet permanently down, or the `max_wall` deadline fired).
    pub failed: bool,
}

/// The cluster oracle. Checks the accounting identities that must hold for
/// any run, completed or failed:
///
/// * every offer became exactly one decision (`counters.consistent`),
/// * the report's skip tally matches the counters',
///
/// and for completed runs additionally:
///
/// * assignment conservation — every map and reduce was assigned exactly
///   once, plus once more per retry/re-execution:
///   `assigns == n_maps + n_reduces + retries + reexecuted_maps`,
/// * every reduce completion recorded a locality class,
/// * every map was assigned at least once.
pub fn check_cluster_report(r: &ClusterReport) -> Result<(), String> {
    if !r.counters.consistent() {
        return Err(format!(
            "offer conservation violated: offers={} assigns={} skips={}",
            r.counters.offers,
            r.counters.assigns,
            r.counters.total_skips()
        ));
    }
    if r.counters.total_skips() != r.skipped_offers {
        return Err(format!(
            "skip tally mismatch: counters={} report={}",
            r.counters.total_skips(),
            r.skipped_offers
        ));
    }
    if r.counters.peers_expired > r.counters.node_crashes {
        return Err(format!(
            "expiries ({}) exceed recorded crashes ({})",
            r.counters.peers_expired, r.counters.node_crashes
        ));
    }
    if r.failed {
        return Ok(()); // partial runs only owe the offer identities
    }
    let expected = (r.n_maps + r.n_reduces) as u64 + r.counters.retries + r.counters.reexecuted_maps;
    if r.counters.assigns != expected {
        return Err(format!(
            "assignment conservation violated: assigns={} expected {} \
             (n_maps={} n_reduces={} retries={} reexecuted={})",
            r.counters.assigns,
            expected,
            r.n_maps,
            r.n_reduces,
            r.counters.retries,
            r.counters.reexecuted_maps
        ));
    }
    if r.reduce_locality.total() != r.n_reduces as u64 {
        return Err(format!(
            "reduce locality total {} != n_reduces {}",
            r.reduce_locality.total(),
            r.n_reduces
        ));
    }
    if r.map_locality.total() < r.n_maps as u64 {
        return Err(format!(
            "map locality total {} < n_maps {}",
            r.map_locality.total(),
            r.n_maps
        ));
    }
    Ok(())
}

impl ClusterReport {
    /// Flat text form: a `status` line, a `counters` line (the
    /// [`SchedCounters::to_kv`] form), then one tab-separated line per
    /// output pair. Keys/values containing tabs or newlines are not
    /// representable — the built-in jobs never emit them.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "status failed={} n_maps={} n_reduces={} skipped={} wall_ms={}\n",
            u8::from(self.failed),
            self.n_maps,
            self.n_reduces,
            self.skipped_offers,
            self.wall.as_millis()
        );
        s.push_str(&format!("counters {}\n", self.counters.to_kv()));
        for (k, v) in &self.output {
            s.push_str(k);
            s.push('\t');
            s.push_str(v);
            s.push('\n');
        }
        s
    }
}

/// A [`ClusterReport`] read back from its [`to_text`](ClusterReport::to_text)
/// form — what a parent process learns from a tracker it spawned.
pub struct ReportSummary {
    /// Whether the run failed.
    pub failed: bool,
    /// Map task count.
    pub n_maps: usize,
    /// Reduce task count.
    pub n_reduces: usize,
    /// Skipped offers.
    pub skipped_offers: u64,
    /// Counter block.
    pub counters: SchedCounters,
    /// Output pairs in partition-major order.
    pub output: Vec<(String, String)>,
}

impl ReportSummary {
    /// Parse the flat text form. Returns `None` on a malformed header.
    pub fn parse(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let status = lines.next()?.strip_prefix("status ")?;
        let mut failed = false;
        let mut n_maps = 0usize;
        let mut n_reduces = 0usize;
        let mut skipped = 0u64;
        for tok in status.split_whitespace() {
            let (k, v) = tok.split_once('=')?;
            match k {
                "failed" => failed = v == "1",
                "n_maps" => n_maps = v.parse().ok()?,
                "n_reduces" => n_reduces = v.parse().ok()?,
                "skipped" => skipped = v.parse().ok()?,
                _ => {}
            }
        }
        let counters_line = lines.next()?.strip_prefix("counters ")?;
        let counters = SchedCounters::from_kv(counters_line.split_whitespace());
        let output = lines
            .filter_map(|l| l.split_once('\t').map(|(k, v)| (k.to_string(), v.to_string())))
            .collect();
        Some(Self { failed, n_maps, n_reduces, skipped_offers: skipped, counters, output })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterReport {
        let mut counters = SchedCounters { offers: 7, assigns: 5, ..SchedCounters::default() };
        counters.skips[0] = 2;
        ClusterReport {
            output: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
            map_locality: LocalityCounter { node_local: 3, rack_local: 0, remote: 0 },
            reduce_locality: LocalityCounter { node_local: 2, rack_local: 0, remote: 0 },
            wall: Duration::from_millis(12),
            n_maps: 3,
            n_reduces: 2,
            skipped_offers: 2,
            counters,
            trace_jsonl: None,
            completions: Vec::new(),
            failed: false,
        }
    }

    #[test]
    fn oracle_accepts_conserved_report() {
        assert!(check_cluster_report(&sample()).is_ok());
    }

    #[test]
    fn oracle_rejects_assignment_leak() {
        let mut r = sample();
        r.counters.assigns = 6;
        r.counters.offers = 8; // keep offer conservation so the leak is the finding
        assert!(check_cluster_report(&r).unwrap_err().contains("assignment conservation"));
    }

    #[test]
    fn text_round_trip() {
        let r = sample();
        let s = ReportSummary::parse(&r.to_text()).expect("parses");
        assert_eq!(s.failed, r.failed);
        assert_eq!(s.n_maps, r.n_maps);
        assert_eq!(s.n_reduces, r.n_reduces);
        assert_eq!(s.skipped_offers, r.skipped_offers);
        assert_eq!(s.counters, r.counters);
        assert_eq!(s.output, r.output);
    }
}
