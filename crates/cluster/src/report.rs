//! What a cluster run produces, the oracle that validates it, and a flat
//! text serialization so the `pnats-cluster` binary can hand results to a
//! parent process (the smoke test, the kill test, CI).

use pnats_metrics::LocalityCounter;
use pnats_obs::{SchedCounters, TaskCompletion};
use std::time::Duration;

/// Result of one cluster job — the distributed twin of
/// [`pnats_engine::EngineReport`].
pub struct ClusterReport {
    /// Final key/value pairs, partition-major (within a partition, sorted
    /// by key). Byte-identical to the engine's output for the same seed.
    pub output: Vec<(String, String)>,
    /// Where each map assignment ran relative to its block replicas.
    pub map_locality: LocalityCounter,
    /// Where each reduce ran relative to its dominant shuffle source.
    pub reduce_locality: LocalityCounter,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Map task count.
    pub n_maps: usize,
    /// Reduce task count.
    pub n_reduces: usize,
    /// Placement offers the scheduler declined.
    pub skipped_offers: u64,
    /// Decision + fault counters for the run.
    pub counters: SchedCounters,
    /// The decision trace as JSONL when an in-memory sink was attached.
    pub trace_jsonl: Option<String>,
    /// Every completion the tracker accepted, in acceptance order — the
    /// exactly-once ledger `pnats_sim::check_cluster_run` audits. Not
    /// carried by the flat text form ([`to_text`](Self::to_text)); the
    /// oracle runs in-process where the full report is available, and
    /// process-based harnesses rebuild the ledger from the journal.
    pub completions: Vec<TaskCompletion>,
    /// Wall ms from tracker start to its first assignment decision.
    /// On a recovery incarnation this is the failover latency probe: the
    /// time from restart to the first post-recovery assignment.
    pub first_assign_ms: Option<u64>,
    /// True when the job was aborted (retry budget exhausted, the whole
    /// fleet permanently down, or the `max_wall` deadline fired).
    pub failed: bool,
}

/// The cluster oracle. Checks the accounting identities that must hold for
/// any run, completed or failed:
///
/// * every offer became exactly one decision (`counters.consistent`),
/// * the report's skip tally matches the counters',
///
/// and for completed runs additionally:
///
/// * assignment conservation — every map and reduce was assigned exactly
///   once, plus once more per retry/re-execution, *minus* work a recovery
///   incarnation inherited from the journal instead of assigning itself:
///   `assigns == n_maps + n_reduces + retries + reexecuted_maps
///   − recovered_maps − recovered_reduces − inherited_assignments`,
/// * every non-recovered reduce completion recorded a locality class,
/// * every map this incarnation had to place was assigned at least once,
/// * recovery counters are structurally coherent (reconciliations imply a
///   re-attach, inherited state implies a restart, one journal replay per
///   restart).
pub fn check_cluster_report(r: &ClusterReport) -> Result<(), String> {
    let c = &r.counters;
    if c.attempts_reconciled > 0 && c.worker_reattaches == 0 {
        return Err(format!(
            "{} attempts reconciled without any worker re-attach",
            c.attempts_reconciled
        ));
    }
    if c.journal_replays != c.tracker_restarts {
        return Err(format!(
            "journal replays ({}) != tracker restarts ({})",
            c.journal_replays, c.tracker_restarts
        ));
    }
    let inherited_any =
        c.recovered_maps + c.recovered_reduces + c.inherited_assignments + c.recovered_reexec;
    if inherited_any > 0 && c.tracker_restarts == 0 {
        return Err(format!(
            "recovery tallies ({inherited_any}) booked without a tracker restart"
        ));
    }
    if !r.counters.consistent() {
        return Err(format!(
            "offer conservation violated: offers={} assigns={} skips={}",
            r.counters.offers,
            r.counters.assigns,
            r.counters.total_skips()
        ));
    }
    if r.counters.total_skips() != r.skipped_offers {
        return Err(format!(
            "skip tally mismatch: counters={} report={}",
            r.counters.total_skips(),
            r.skipped_offers
        ));
    }
    if r.counters.peers_expired > r.counters.node_crashes {
        return Err(format!(
            "expiries ({}) exceed recorded crashes ({})",
            r.counters.peers_expired, r.counters.node_crashes
        ));
    }
    if r.failed {
        return Ok(()); // partial runs only owe the offer identities
    }
    let expected = (r.n_maps + r.n_reduces) as i128 + c.retries as i128
        + c.reexecuted_maps as i128
        - c.recovered_maps as i128
        - c.recovered_reduces as i128
        - c.inherited_assignments as i128;
    if c.assigns as i128 != expected {
        return Err(format!(
            "assignment conservation violated: assigns={} expected {} \
             (n_maps={} n_reduces={} retries={} reexecuted={} recovered={}+{} inherited={})",
            c.assigns,
            expected,
            r.n_maps,
            r.n_reduces,
            c.retries,
            c.reexecuted_maps,
            c.recovered_maps,
            c.recovered_reduces,
            c.inherited_assignments
        ));
    }
    let owed_reduces = (r.n_reduces as u64).saturating_sub(c.recovered_reduces);
    if r.reduce_locality.total() != owed_reduces {
        return Err(format!(
            "reduce locality total {} != n_reduces {} - recovered {}",
            r.reduce_locality.total(),
            r.n_reduces,
            c.recovered_reduces
        ));
    }
    // Inherited running assignments may cover maps as well as reduces, so
    // the map floor only subtracts them conservatively.
    let owed_maps = (r.n_maps as u64)
        .saturating_sub(c.recovered_maps)
        .saturating_sub(c.inherited_assignments);
    if r.map_locality.total() < owed_maps {
        return Err(format!(
            "map locality total {} < owed maps {} (n_maps={} recovered={} inherited={})",
            r.map_locality.total(),
            owed_maps,
            r.n_maps,
            c.recovered_maps,
            c.inherited_assignments
        ));
    }
    Ok(())
}

impl ClusterReport {
    /// Flat text form: a `status` line, a `counters` line (the
    /// [`SchedCounters::to_kv`] form), then one tab-separated line per
    /// output pair. Keys/values containing tabs or newlines are not
    /// representable — the built-in jobs never emit them.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "status failed={} n_maps={} n_reduces={} skipped={} wall_ms={}",
            u8::from(self.failed),
            self.n_maps,
            self.n_reduces,
            self.skipped_offers,
            self.wall.as_millis()
        );
        if let Some(ms) = self.first_assign_ms {
            s.push_str(&format!(" first_assign_ms={ms}"));
        }
        s.push('\n');
        s.push_str(&format!("counters {}\n", self.counters.to_kv()));
        for (k, v) in &self.output {
            s.push_str(k);
            s.push('\t');
            s.push_str(v);
            s.push('\n');
        }
        s
    }
}

/// A [`ClusterReport`] read back from its [`to_text`](ClusterReport::to_text)
/// form — what a parent process learns from a tracker it spawned.
pub struct ReportSummary {
    /// Whether the run failed.
    pub failed: bool,
    /// Map task count.
    pub n_maps: usize,
    /// Reduce task count.
    pub n_reduces: usize,
    /// Skipped offers.
    pub skipped_offers: u64,
    /// Counter block.
    pub counters: SchedCounters,
    /// Output pairs in partition-major order.
    pub output: Vec<(String, String)>,
    /// Wall ms from tracker start to first assignment, when reported.
    pub first_assign_ms: Option<u64>,
}

impl ReportSummary {
    /// Parse the flat text form. Returns `None` on a malformed header.
    pub fn parse(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let status = lines.next()?.strip_prefix("status ")?;
        let mut failed = false;
        let mut n_maps = 0usize;
        let mut n_reduces = 0usize;
        let mut skipped = 0u64;
        let mut first_assign_ms = None;
        for tok in status.split_whitespace() {
            let (k, v) = tok.split_once('=')?;
            match k {
                "failed" => failed = v == "1",
                "n_maps" => n_maps = v.parse().ok()?,
                "n_reduces" => n_reduces = v.parse().ok()?,
                "skipped" => skipped = v.parse().ok()?,
                "first_assign_ms" => first_assign_ms = v.parse().ok(),
                _ => {}
            }
        }
        let counters_line = lines.next()?.strip_prefix("counters ")?;
        let counters = SchedCounters::from_kv(counters_line.split_whitespace());
        let output = lines
            .filter_map(|l| l.split_once('\t').map(|(k, v)| (k.to_string(), v.to_string())))
            .collect();
        Some(Self {
            failed,
            n_maps,
            n_reduces,
            skipped_offers: skipped,
            counters,
            output,
            first_assign_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterReport {
        let mut counters = SchedCounters { offers: 7, assigns: 5, ..SchedCounters::default() };
        counters.skips[0] = 2;
        ClusterReport {
            output: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
            map_locality: LocalityCounter { node_local: 3, rack_local: 0, remote: 0 },
            reduce_locality: LocalityCounter { node_local: 2, rack_local: 0, remote: 0 },
            wall: Duration::from_millis(12),
            n_maps: 3,
            n_reduces: 2,
            skipped_offers: 2,
            counters,
            trace_jsonl: None,
            completions: Vec::new(),
            first_assign_ms: Some(4),
            failed: false,
        }
    }

    #[test]
    fn oracle_accepts_conserved_report() {
        assert!(check_cluster_report(&sample()).is_ok());
    }

    #[test]
    fn oracle_rejects_assignment_leak() {
        let mut r = sample();
        r.counters.assigns = 6;
        r.counters.offers = 8; // keep offer conservation so the leak is the finding
        assert!(check_cluster_report(&r).unwrap_err().contains("assignment conservation"));
    }

    #[test]
    fn text_round_trip() {
        let r = sample();
        let s = ReportSummary::parse(&r.to_text()).expect("parses");
        assert_eq!(s.failed, r.failed);
        assert_eq!(s.n_maps, r.n_maps);
        assert_eq!(s.n_reduces, r.n_reduces);
        assert_eq!(s.skipped_offers, r.skipped_offers);
        assert_eq!(s.counters, r.counters);
        assert_eq!(s.output, r.output);
        assert_eq!(s.first_assign_ms, r.first_assign_ms);
    }

    #[test]
    fn oracle_balances_recovered_work() {
        // A recovery incarnation: 1 of 3 maps and 1 of 2 reduces inherited
        // finished, 1 map assignment inherited running — so it only placed
        // 2 assignments itself, and only 1 reduce completion owed a
        // locality class.
        let mut r = sample();
        r.counters.assigns = 2;
        r.counters.offers = 4;
        r.counters.tracker_restarts = 1;
        r.counters.journal_replays = 1;
        r.counters.recovered_maps = 1;
        r.counters.recovered_reduces = 1;
        r.counters.inherited_assignments = 1;
        r.map_locality = LocalityCounter { node_local: 1, rack_local: 0, remote: 0 };
        r.reduce_locality = LocalityCounter { node_local: 1, rack_local: 0, remote: 0 };
        check_cluster_report(&r).unwrap();
        // Reconciliation without a re-attach is structurally impossible.
        r.counters.attempts_reconciled = 1;
        let err = check_cluster_report(&r).unwrap_err();
        assert!(err.contains("without any worker re-attach"), "{err}");
        r.counters.worker_reattaches = 1;
        check_cluster_report(&r).unwrap();
        // Recovery tallies without a restart are too.
        r.counters.tracker_restarts = 0;
        r.counters.journal_replays = 0;
        let err = check_cluster_report(&r).unwrap_err();
        assert!(err.contains("without a tracker restart"), "{err}");
    }
}
