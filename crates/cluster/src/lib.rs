#![warn(missing_docs)]
//! # pnats-cluster — a real TCP JobTracker/TaskTracker runtime
//!
//! The third runtime behind the paper's scheduling contract, after the
//! discrete-event simulator and the threaded engine: a JobTracker daemon
//! and TaskTracker workers exchanging [`pnats_rpc`] frames over real
//! `std::net` sockets. Workers can be threads in one process (tests,
//! [`run_cluster`]) or separate OS processes (the `pnats-cluster` binary)
//! — the protocol is identical.
//!
//! The tracker runs the *unmodified* [`pnats_core::placer::TaskPlacer`]
//! implementations. Because both runtimes execute tasks through
//! [`pnats_engine::exec`]'s pure primitives, split blocks the same way,
//! and collect reduce inputs in map-index order, a cluster run's output is
//! **byte-identical** to an engine run with the same seed — placement and
//! timing shape who computes where, never what comes out. The parity
//! tests in this crate hold that line.
//!
//! Liveness is real here: a worker silent for more than `expire_after`
//! heartbeat rounds (lost heartbeats, a SIGKILLed process) is declared
//! dead, its completed map outputs are invalidated and re-executed under
//! crash-epoch semantics, and the worker — if it is actually alive —
//! wipes and re-registers under a bumped epoch when it learns of its
//! demise.

pub mod config;
pub mod jobspec;
pub mod journal;
pub mod report;
pub mod tracker;
pub mod worker;

pub use config::ClusterConfig;
pub use jobspec::JobSpec;
pub use journal::{
    check_journal_recovery, read_journal, FsyncPolicy, Journal, JournalRecord, JournalState,
};
pub use report::{check_cluster_report, ClusterReport, ReportSummary};
pub use tracker::JobTracker;
pub use worker::{run_worker, WorkerConfig};
pub use pnats_rpc::{BreakerPolicy, ChaosFault, LinkRule};

use pnats_core::placer::TaskPlacer;
use pnats_obs::{DecisionObserver, TraceSink};
use pnats_rpc::{ChaosNet, ChaosPlan};
use std::sync::Arc;

/// Scheduler selection by name for the `pnats-cluster` binary and the
/// smoke tests: the paper's probabilistic placer plus the baseline suite.
pub fn placer_by_name(name: &str, heartbeat_s: f64) -> Option<Box<dyn TaskPlacer>> {
    use pnats_baselines::{
        CouplingPlacer, FairDelayPlacer, FifoGreedyPlacer, LartsPlacer, MinCostPlacer,
        QuincyPlacer, RandomPlacer,
    };
    use pnats_core::prob_sched::ProbabilisticPlacer;
    Some(match name {
        "paper" | "probabilistic" => Box::new(ProbabilisticPlacer::paper()),
        "fifo" => Box::new(FifoGreedyPlacer),
        "random" => Box::new(RandomPlacer),
        "fair" => Box::new(FairDelayPlacer::hadoop_defaults()),
        "mincost" => Box::new(MinCostPlacer::new()),
        "larts" => Box::new(LartsPlacer::default()),
        "quincy" => Box::new(QuincyPlacer),
        "coupling" => Box::new(CouplingPlacer::new(0.8, 0.4, 3, heartbeat_s)),
        _ => return None,
    })
}

/// Run one job on an in-process cluster: a tracker plus `cfg.n_nodes`
/// worker threads, all speaking real TCP over loopback. Blocks until the
/// job completes (or `cfg.max_wall` fires) and returns the report.
pub fn run_cluster(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    n_reduces: usize,
    input: &str,
    placer: Box<dyn TaskPlacer>,
) -> ClusterReport {
    run_cluster_observed(cfg, spec, n_reduces, input, placer, DecisionObserver::disabled())
}

/// Like [`run_cluster`] but routing every decision and fault into `sink`.
pub fn run_cluster_traced(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    n_reduces: usize,
    input: &str,
    placer: Box<dyn TaskPlacer>,
    sink: Box<dyn TraceSink>,
) -> ClusterReport {
    run_cluster_observed(cfg, spec, n_reduces, input, placer, DecisionObserver::with_sink(sink))
}

/// Like [`run_cluster`], but with every wire the job depends on routed
/// through seeded chaos proxies on `plan`: each worker's control plane
/// (heartbeats, registrations, resolver calls) crosses link `ctl:w<i>`
/// and its advertised data plane (peer block/partition fetches) crosses
/// link `data:w<i>`. With [`ChaosPlan::none`] every proxy is transparent
/// and the run is behaviorally identical to [`run_cluster`].
///
/// Returns the report plus the [`ChaosNet`] so callers can audit the
/// injected-fault event log.
pub fn run_cluster_chaos(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    n_reduces: usize,
    input: &str,
    placer: Box<dyn TaskPlacer>,
    plan: ChaosPlan,
) -> (ClusterReport, Arc<ChaosNet>) {
    let net = ChaosNet::new(plan);
    let tracker = JobTracker::start(
        "127.0.0.1:0",
        cfg.clone(),
        spec.clone(),
        n_reduces,
        input,
        placer,
        DecisionObserver::disabled(),
    )
    .expect("bind tracker on loopback");
    let addr = tracker.addr().to_string();
    let mut ctl_proxies = Vec::new();
    let workers: Vec<_> = (0..cfg.n_nodes)
        .map(|i| {
            let ctl =
                net.proxy(&format!("ctl:w{i}"), &addr).expect("bind chaos proxy on loopback");
            let wc = WorkerConfig {
                node: i as u32,
                tracker_addr: ctl.addr().to_string(),
                map_slots: cfg.map_slots,
                reduce_slots: cfg.reduce_slots,
                heartbeat: cfg.heartbeat,
                io_timeout: cfg.io_timeout,
                retry: cfg.retry.clone(),
                breaker: cfg.breaker,
                chaos: Some(net.clone()),
                orphan_grace: cfg.orphan_grace,
            };
            ctl_proxies.push(ctl);
            std::thread::spawn(move || {
                let _ = run_worker(wc);
            })
        })
        .collect();
    let report = tracker.wait();
    for w in workers {
        let _ = w.join();
    }
    (report, net)
}

fn run_cluster_observed(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    n_reduces: usize,
    input: &str,
    placer: Box<dyn TaskPlacer>,
    observer: DecisionObserver,
) -> ClusterReport {
    let tracker = JobTracker::start(
        "127.0.0.1:0",
        cfg.clone(),
        spec.clone(),
        n_reduces,
        input,
        placer,
        observer,
    )
    .expect("bind tracker on loopback");
    let addr = tracker.addr().to_string();
    let workers: Vec<_> = (0..cfg.n_nodes)
        .map(|i| {
            let wc = WorkerConfig {
                node: i as u32,
                tracker_addr: addr.clone(),
                map_slots: cfg.map_slots,
                reduce_slots: cfg.reduce_slots,
                heartbeat: cfg.heartbeat,
                io_timeout: cfg.io_timeout,
                retry: cfg.retry.clone(),
                breaker: cfg.breaker,
                chaos: None,
                orphan_grace: cfg.orphan_grace,
            };
            std::thread::spawn(move || {
                let _ = run_worker(wc);
            })
        })
        .collect();
    let report = tracker.wait();
    for w in workers {
        let _ = w.join();
    }
    report
}
