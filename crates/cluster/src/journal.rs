//! The durable write-ahead job journal.
//!
//! The tracker appends one record per scheduler-visible mutation —
//! *before* applying it or replying to the worker that caused it — so a
//! SIGKILLed tracker can be restarted and reconstruct its book by
//! replaying the file. Records are encoded with the `pnats-rpc` wire
//! primitives and framed by the same length-prefix + FNV-1a checksum
//! machinery the TCP protocol uses ([`write_frame`]/[`read_frame`]): a
//! torn final record (the crash landed mid-append) fails its checksum or
//! length and is dropped, classic WAL semantics. Everything before the
//! first damaged record is trusted; everything after it is discarded.
//!
//! Durability model: `File::write` hands bytes to the kernel on the spot
//! (no user-space buffering), so a journal survives SIGKILL of the
//! tracker *process* even with [`FsyncPolicy::Never`] — fsync only buys
//! protection against OS/machine crashes, which is why `Never` is the
//! default and `Always` is a config knob rather than hardcoded.
//!
//! What is journaled: job identity (seed + spec, validated on replay),
//! worker registrations with crash epochs, every task assignment,
//! completion (reduce completions carry their full output — the tracker
//! holds reduce output, so it would otherwise die with the process),
//! invalidation and requeue, re-attach reconciliations, one
//! `TrackerStarted` per recovery, and the final job verdict.

use pnats_obs::{TaskCompletion, TaskKind};
use pnats_rpc::frame::{read_frame, write_frame, FrameError};
use pnats_rpc::wire::{Reader, WireError, Writer};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};

/// When the journal file is flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync. Survives tracker SIGKILL (writes reach the kernel
    /// synchronously); does not survive an OS crash. The default.
    Never,
    /// fsync after every appended record. Survives OS crashes at the cost
    /// of one disk barrier per scheduler mutation.
    Always,
}

impl FsyncPolicy {
    /// Parse a CLI/config spelling (`never` | `always`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "never" => Some(FsyncPolicy::Never),
            "always" => Some(FsyncPolicy::Always),
            _ => None,
        }
    }
}

/// One scheduler-visible mutation, as journaled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// Journal header: the job this file belongs to. Always the first
    /// record; replay refuses a journal whose identity disagrees with the
    /// recovering tracker's config.
    JobSubmitted {
        /// Cluster seed (drives placement, fault draws, replica layout).
        seed: u64,
        /// Map task count.
        n_maps: u32,
        /// Reduce task count.
        n_reduces: u32,
        /// Job spec wire string (`wordcount`, `grep:<needle>`, …).
        spec: String,
    },
    /// A tracker incarnation started from this journal (appended once per
    /// recovery, never by the first incarnation).
    TrackerStarted {
        /// 1 for the first recovery, 2 for the second, …
        crash_epoch: u32,
    },
    /// A worker registered (or re-registered after being declared dead).
    WorkerRegistered {
        /// Node id.
        node: u32,
        /// The worker's crash epoch at registration.
        epoch: u32,
    },
    /// A map attempt was handed to a worker.
    MapAssigned {
        /// Map task index.
        map: u32,
        /// Attempt tag.
        attempt: u32,
        /// Node the attempt runs on.
        node: u32,
    },
    /// A map attempt completed and the tracker accepted it.
    MapCompleted {
        /// Map task index.
        map: u32,
        /// Attempt tag of the accepted completion.
        attempt: u32,
        /// Run epoch the completion belongs to.
        epoch: u32,
        /// Node holding the output.
        node: u32,
        /// Input bytes the attempt consumed (restores live progress).
        d_read: u64,
        /// Intermediate bytes per reduce partition (restores the shuffle
        /// source book).
        part_bytes: Vec<u64>,
    },
    /// A finished map's output was lost; the map re-runs in a new epoch.
    MapInvalidated {
        /// Map task index.
        map: u32,
        /// Attempt tag the next attempt will carry.
        new_attempt: u32,
        /// The new run epoch.
        new_epoch: u32,
        /// Node banned from re-running it (source-unreachable holder), if
        /// any.
        banned: Option<u32>,
    },
    /// A running map attempt was abandoned (node expired, reply lost) and
    /// the task requeued.
    MapRequeued {
        /// Map task index.
        map: u32,
        /// Attempt tag the next attempt will carry.
        new_attempt: u32,
    },
    /// A reduce attempt was handed to a worker.
    ReduceAssigned {
        /// Reduce task index.
        reduce: u32,
        /// Attempt tag.
        attempt: u32,
        /// Node the attempt runs on.
        node: u32,
    },
    /// A reduce attempt completed; the tracker holds the output, so the
    /// journal must too.
    ReduceCompleted {
        /// Reduce task index.
        reduce: u32,
        /// Attempt tag of the accepted completion.
        attempt: u32,
        /// Final key/value pairs of this partition.
        output: Vec<(String, String)>,
    },
    /// A running reduce attempt was abandoned and the task requeued.
    ReduceRequeued {
        /// Reduce task index.
        reduce: u32,
        /// Attempt tag the next attempt will carry.
        new_attempt: u32,
    },
    /// A journal-inherited attempt was confirmed live by a re-attaching
    /// worker and adopted by the new incarnation.
    AttemptReconciled {
        /// Map or reduce.
        kind: TaskKind,
        /// Task index within its family.
        index: u32,
        /// Attempt tag confirmed.
        attempt: u32,
        /// Node that confirmed it.
        node: u32,
    },
    /// The job ended.
    JobFinished {
        /// Whether the job failed (attempt budget burned / blackout).
        failed: bool,
    },
}

const REC_JOB_SUBMITTED: u8 = 1;
const REC_TRACKER_STARTED: u8 = 2;
const REC_WORKER_REGISTERED: u8 = 3;
const REC_MAP_ASSIGNED: u8 = 4;
const REC_MAP_COMPLETED: u8 = 5;
const REC_MAP_INVALIDATED: u8 = 6;
const REC_MAP_REQUEUED: u8 = 7;
const REC_REDUCE_ASSIGNED: u8 = 8;
const REC_REDUCE_COMPLETED: u8 = 9;
const REC_REDUCE_REQUEUED: u8 = 10;
const REC_ATTEMPT_RECONCILED: u8 = 11;
const REC_JOB_FINISHED: u8 = 12;

impl JournalRecord {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            JournalRecord::JobSubmitted { seed, n_maps, n_reduces, spec } => {
                w.u8(REC_JOB_SUBMITTED);
                w.u64(*seed);
                w.u32(*n_maps);
                w.u32(*n_reduces);
                w.string(spec);
            }
            JournalRecord::TrackerStarted { crash_epoch } => {
                w.u8(REC_TRACKER_STARTED);
                w.u32(*crash_epoch);
            }
            JournalRecord::WorkerRegistered { node, epoch } => {
                w.u8(REC_WORKER_REGISTERED);
                w.u32(*node);
                w.u32(*epoch);
            }
            JournalRecord::MapAssigned { map, attempt, node } => {
                w.u8(REC_MAP_ASSIGNED);
                w.u32(*map);
                w.u32(*attempt);
                w.u32(*node);
            }
            JournalRecord::MapCompleted { map, attempt, epoch, node, d_read, part_bytes } => {
                w.u8(REC_MAP_COMPLETED);
                w.u32(*map);
                w.u32(*attempt);
                w.u32(*epoch);
                w.u32(*node);
                w.u64(*d_read);
                w.count(part_bytes.len());
                for b in part_bytes {
                    w.u64(*b);
                }
            }
            JournalRecord::MapInvalidated { map, new_attempt, new_epoch, banned } => {
                w.u8(REC_MAP_INVALIDATED);
                w.u32(*map);
                w.u32(*new_attempt);
                w.u32(*new_epoch);
                match banned {
                    Some(n) => {
                        w.bool(true);
                        w.u32(*n);
                    }
                    None => w.bool(false),
                }
            }
            JournalRecord::MapRequeued { map, new_attempt } => {
                w.u8(REC_MAP_REQUEUED);
                w.u32(*map);
                w.u32(*new_attempt);
            }
            JournalRecord::ReduceAssigned { reduce, attempt, node } => {
                w.u8(REC_REDUCE_ASSIGNED);
                w.u32(*reduce);
                w.u32(*attempt);
                w.u32(*node);
            }
            JournalRecord::ReduceCompleted { reduce, attempt, output } => {
                w.u8(REC_REDUCE_COMPLETED);
                w.u32(*reduce);
                w.u32(*attempt);
                w.count(output.len());
                for (k, v) in output {
                    w.string(k);
                    w.string(v);
                }
            }
            JournalRecord::ReduceRequeued { reduce, new_attempt } => {
                w.u8(REC_REDUCE_REQUEUED);
                w.u32(*reduce);
                w.u32(*new_attempt);
            }
            JournalRecord::AttemptReconciled { kind, index, attempt, node } => {
                w.u8(REC_ATTEMPT_RECONCILED);
                w.u8(match kind {
                    TaskKind::Map => 0,
                    TaskKind::Reduce => 1,
                });
                w.u32(*index);
                w.u32(*attempt);
                w.u32(*node);
            }
            JournalRecord::JobFinished { failed } => {
                w.u8(REC_JOB_FINISHED);
                w.bool(*failed);
            }
        }
        w.into_bytes()
    }

    /// Decode one frame payload. Total: typed errors, no panics, trailing
    /// bytes rejected.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let rec = Self::decode_inner(&mut r)?;
        r.finish()?;
        Ok(rec)
    }

    fn decode_inner(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            REC_JOB_SUBMITTED => Ok(JournalRecord::JobSubmitted {
                seed: r.u64()?,
                n_maps: r.u32()?,
                n_reduces: r.u32()?,
                spec: r.string()?,
            }),
            REC_TRACKER_STARTED => Ok(JournalRecord::TrackerStarted { crash_epoch: r.u32()? }),
            REC_WORKER_REGISTERED => {
                Ok(JournalRecord::WorkerRegistered { node: r.u32()?, epoch: r.u32()? })
            }
            REC_MAP_ASSIGNED => Ok(JournalRecord::MapAssigned {
                map: r.u32()?,
                attempt: r.u32()?,
                node: r.u32()?,
            }),
            REC_MAP_COMPLETED => {
                let map = r.u32()?;
                let attempt = r.u32()?;
                let epoch = r.u32()?;
                let node = r.u32()?;
                let d_read = r.u64()?;
                let n = r.count(8)?;
                let part_bytes = (0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
                Ok(JournalRecord::MapCompleted { map, attempt, epoch, node, d_read, part_bytes })
            }
            REC_MAP_INVALIDATED => {
                let map = r.u32()?;
                let new_attempt = r.u32()?;
                let new_epoch = r.u32()?;
                let banned = if r.bool()? { Some(r.u32()?) } else { None };
                Ok(JournalRecord::MapInvalidated { map, new_attempt, new_epoch, banned })
            }
            REC_MAP_REQUEUED => {
                Ok(JournalRecord::MapRequeued { map: r.u32()?, new_attempt: r.u32()? })
            }
            REC_REDUCE_ASSIGNED => Ok(JournalRecord::ReduceAssigned {
                reduce: r.u32()?,
                attempt: r.u32()?,
                node: r.u32()?,
            }),
            REC_REDUCE_COMPLETED => {
                let reduce = r.u32()?;
                let attempt = r.u32()?;
                let n = r.count(8)?;
                let mut output = Vec::with_capacity(n);
                for _ in 0..n {
                    output.push((r.string()?, r.string()?));
                }
                Ok(JournalRecord::ReduceCompleted { reduce, attempt, output })
            }
            REC_REDUCE_REQUEUED => {
                Ok(JournalRecord::ReduceRequeued { reduce: r.u32()?, new_attempt: r.u32()? })
            }
            REC_ATTEMPT_RECONCILED => {
                let kind = match r.u8()? {
                    0 => TaskKind::Map,
                    1 => TaskKind::Reduce,
                    t => return Err(WireError::UnknownTag(t)),
                };
                Ok(JournalRecord::AttemptReconciled {
                    kind,
                    index: r.u32()?,
                    attempt: r.u32()?,
                    node: r.u32()?,
                })
            }
            REC_JOB_FINISHED => Ok(JournalRecord::JobFinished { failed: r.bool()? }),
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

/// The append side: an open journal file plus its fsync policy.
pub struct Journal {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Journal {
    /// Create (truncating any previous file) — a fresh job.
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        Ok(Self { path, file, policy })
    }

    /// Open for appending — a recovering tracker continuing an existing
    /// journal. The caller replays first, then appends from the tail.
    pub fn open_append(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Self { path, file, policy })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (write-ahead: call *before* applying the
    /// mutation it describes).
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        write_frame(&mut self.file, &rec.encode()).map_err(|e| match e {
            FrameError::Io(e) => e,
            FrameError::Wire(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        })?;
        if self.policy == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// Read a journal back, tolerating a torn tail: the first record that is
/// truncated or fails its checksum ends the replay, and everything before
/// it is returned. A corrupt *first* record (or a header that is not
/// `JobSubmitted`) is an error — there is no trusted prefix to recover.
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<Vec<JournalRecord>> {
    let mut r = BufReader::new(File::open(path.as_ref())?);
    let mut records = Vec::new();
    // Torn tail (crash mid-append) or damaged bytes: any frame or decode
    // error stops the replay at the last trusted record.
    while let Ok(payload) = read_frame(&mut r) {
        match JournalRecord::decode(&payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break,
        }
    }
    match records.first() {
        Some(JournalRecord::JobSubmitted { .. }) => Ok(records),
        Some(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "journal does not start with JobSubmitted",
        )),
        None => Err(io::Error::new(io::ErrorKind::InvalidData, "journal holds no intact record")),
    }
}

/// Per-map book reconstructed by [`JournalState::from_records`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapBook {
    /// Next/current attempt tag.
    pub attempt: u32,
    /// Run epoch (invalidation count).
    pub epoch: u32,
    /// Completed, output live on `holder`.
    pub finished: bool,
    /// Assigned and not yet completed/requeued.
    pub running: bool,
    /// Node running or holding the map.
    pub holder: Option<u32>,
    /// Node banned from re-running it.
    pub banned: Option<u32>,
    /// Input bytes consumed (finished maps).
    pub d_read: u64,
    /// Per-partition intermediate bytes (finished maps).
    pub part_bytes: Vec<u64>,
}

/// Per-reduce book reconstructed by [`JournalState::from_records`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReduceBook {
    /// Next/current attempt tag.
    pub attempt: u32,
    /// Completed, output held below.
    pub finished: bool,
    /// Assigned and not yet completed/requeued.
    pub running: bool,
    /// Node running the attempt.
    pub holder: Option<u32>,
    /// Final output pairs (finished reduces).
    pub output: Vec<(String, String)>,
}

/// Scheduler-visible state folded out of a journal — everything a fresh
/// tracker incarnation needs that cannot be re-derived from (seed, cfg,
/// input).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalState {
    /// Header: cluster seed.
    pub seed: u64,
    /// Header: map count.
    pub n_maps: u32,
    /// Header: reduce count.
    pub n_reduces: u32,
    /// Header: job spec wire string.
    pub spec: String,
    /// Recoveries already performed (count of `TrackerStarted` records).
    pub crash_epochs: u32,
    /// Per-map book, indexed by map.
    pub maps: Vec<MapBook>,
    /// Per-reduce book, indexed by reduce.
    pub reduces: Vec<ReduceBook>,
    /// Last journaled crash epoch per node (BTreeMap keeps `dump`
    /// deterministic).
    pub node_epochs: BTreeMap<u32, u32>,
    /// The cross-incarnation completion ledger, in journal order.
    pub completions: Vec<TaskCompletion>,
    /// `Some(failed)` when the journal holds a `JobFinished`.
    pub finished: Option<bool>,
    /// Records folded in.
    pub records_applied: u64,
}

impl JournalState {
    /// Fold a record stream into scheduler state. Pure and deterministic:
    /// same records, same state ([`dump`](Self::dump) is byte-identical).
    pub fn from_records(records: &[JournalRecord]) -> Result<Self, String> {
        let mut st = JournalState::default();
        for (i, rec) in records.iter().enumerate() {
            st.records_applied += 1;
            match rec {
                JournalRecord::JobSubmitted { seed, n_maps, n_reduces, spec } => {
                    if i != 0 {
                        return Err(format!("JobSubmitted at record {i}, not 0"));
                    }
                    st.seed = *seed;
                    st.n_maps = *n_maps;
                    st.n_reduces = *n_reduces;
                    st.spec = spec.clone();
                    st.maps = vec![MapBook::default(); *n_maps as usize];
                    st.reduces = vec![ReduceBook::default(); *n_reduces as usize];
                }
                JournalRecord::TrackerStarted { crash_epoch } => {
                    if *crash_epoch != st.crash_epochs + 1 {
                        return Err(format!(
                            "record {i}: crash epoch {crash_epoch} after {}",
                            st.crash_epochs
                        ));
                    }
                    st.crash_epochs = *crash_epoch;
                }
                JournalRecord::WorkerRegistered { node, epoch } => {
                    st.node_epochs.insert(*node, *epoch);
                }
                JournalRecord::MapAssigned { map, attempt, node } => {
                    let m = st.map_mut(*map, i)?;
                    m.attempt = *attempt;
                    m.holder = Some(*node);
                    m.running = true;
                    m.finished = false;
                }
                JournalRecord::MapCompleted { map, attempt, epoch, node, d_read, part_bytes } => {
                    let m = st.map_mut(*map, i)?;
                    m.attempt = *attempt;
                    m.epoch = *epoch;
                    m.holder = Some(*node);
                    m.running = false;
                    m.finished = true;
                    m.d_read = *d_read;
                    m.part_bytes = part_bytes.clone();
                    st.completions.push(TaskCompletion {
                        kind: TaskKind::Map,
                        index: *map,
                        epoch: *epoch,
                    });
                }
                JournalRecord::MapInvalidated { map, new_attempt, new_epoch, banned } => {
                    let m = st.map_mut(*map, i)?;
                    m.attempt = *new_attempt;
                    m.epoch = *new_epoch;
                    m.holder = None;
                    m.running = false;
                    m.finished = false;
                    m.banned = *banned;
                    m.d_read = 0;
                    m.part_bytes.clear();
                }
                JournalRecord::MapRequeued { map, new_attempt } => {
                    let m = st.map_mut(*map, i)?;
                    m.attempt = *new_attempt;
                    m.holder = None;
                    m.running = false;
                }
                JournalRecord::ReduceAssigned { reduce, attempt, node } => {
                    let r = st.reduce_mut(*reduce, i)?;
                    r.attempt = *attempt;
                    r.holder = Some(*node);
                    r.running = true;
                }
                JournalRecord::ReduceCompleted { reduce, attempt, output } => {
                    let r = st.reduce_mut(*reduce, i)?;
                    r.attempt = *attempt;
                    r.running = false;
                    r.finished = true;
                    r.output = output.clone();
                    st.completions.push(TaskCompletion {
                        kind: TaskKind::Reduce,
                        index: *reduce,
                        epoch: 0,
                    });
                }
                JournalRecord::ReduceRequeued { reduce, new_attempt } => {
                    let r = st.reduce_mut(*reduce, i)?;
                    r.attempt = *new_attempt;
                    r.holder = None;
                    r.running = false;
                }
                // Reconciliation is an audit record: the assignment it
                // confirms is already in the book.
                JournalRecord::AttemptReconciled { .. } => {}
                JournalRecord::JobFinished { failed } => st.finished = Some(*failed),
            }
        }
        if st.records_applied == 0 {
            return Err("empty journal".into());
        }
        Ok(st)
    }

    fn map_mut(&mut self, map: u32, i: usize) -> Result<&mut MapBook, String> {
        let n = self.maps.len();
        self.maps.get_mut(map as usize).ok_or(format!("record {i}: map {map} out of range {n}"))
    }

    fn reduce_mut(&mut self, reduce: u32, i: usize) -> Result<&mut ReduceBook, String> {
        let n = self.reduces.len();
        self.reduces
            .get_mut(reduce as usize)
            .ok_or(format!("record {i}: reduce {reduce} out of range {n}"))
    }

    /// Derived recovery tallies for the counter conservation laws:
    /// `(recovered_maps, recovered_reduces, inherited_assignments,
    /// recovered_reexec)`.
    pub fn recovery_tallies(&self) -> (u64, u64, u64, u64) {
        let recovered_maps = self.maps.iter().filter(|m| m.finished).count() as u64;
        let recovered_reduces = self.reduces.iter().filter(|r| r.finished).count() as u64;
        let inherited = self.maps.iter().filter(|m| m.running).count() as u64
            + self.reduces.iter().filter(|r| r.running).count() as u64;
        let reexec: u64 = self.maps.iter().map(|m| m.epoch as u64).sum();
        (recovered_maps, recovered_reduces, inherited, reexec)
    }

    /// Canonical text dump — deterministic byte-for-byte, the artifact
    /// the replay-determinism gate compares.
    pub fn dump(&self) -> String {
        let mut s = format!(
            "journal seed={} n_maps={} n_reduces={} spec={} crash_epochs={} records={} \
             finished={:?}\n",
            self.seed,
            self.n_maps,
            self.n_reduces,
            self.spec,
            self.crash_epochs,
            self.records_applied,
            self.finished,
        );
        for (i, m) in self.maps.iter().enumerate() {
            s.push_str(&format!(
                "map {i} attempt={} epoch={} finished={} running={} holder={:?} banned={:?} \
                 d_read={} parts={:?}\n",
                m.attempt, m.epoch, m.finished, m.running, m.holder, m.banned, m.d_read,
                m.part_bytes,
            ));
        }
        for (i, r) in self.reduces.iter().enumerate() {
            s.push_str(&format!(
                "reduce {i} attempt={} finished={} running={} holder={:?} pairs={}\n",
                r.attempt,
                r.finished,
                r.running,
                r.holder,
                r.output.len(),
            ));
        }
        for (node, epoch) in &self.node_epochs {
            s.push_str(&format!("node {node} epoch={epoch}\n"));
        }
        for c in &self.completions {
            let k = match c.kind {
                TaskKind::Map => 'm',
                TaskKind::Reduce => 'r',
            };
            s.push_str(&format!("completion {k} {} {}\n", c.index, c.epoch));
        }
        s
    }
}

/// The journal-level recovery law, checked by `tracker_failover` over the
/// finished journal: every assignment outstanding at a `TrackerStarted`
/// boundary must later be resolved — completed, requeued, invalidated, or
/// reconciled — and no `(map, epoch)` completion may repeat across
/// incarnations (zero duplicate completions per crash epoch).
pub fn check_journal_recovery(records: &[JournalRecord]) -> Result<(), String> {
    let st = JournalState::from_records(records)?;
    if st.finished == Some(false) {
        // Only a successful job promises full resolution.
        let unresolved_maps: Vec<usize> = st
            .maps
            .iter()
            .enumerate()
            .filter(|(_, m)| m.running || !m.finished)
            .map(|(i, _)| i)
            .collect();
        let unresolved_reduces: Vec<usize> = st
            .reduces
            .iter()
            .enumerate()
            .filter(|(_, r)| r.running || !r.finished)
            .map(|(i, _)| i)
            .collect();
        if !unresolved_maps.is_empty() || !unresolved_reduces.is_empty() {
            return Err(format!(
                "job finished ok but maps {unresolved_maps:?} / reduces {unresolved_reduces:?} \
                 never resolved"
            ));
        }
    }
    // Zero duplicate completions per crash epoch: a (map, run-epoch) pair
    // completes at most once across all incarnations; a reduce completes
    // at most once, period.
    let mut seen_map = std::collections::HashSet::new();
    let mut seen_reduce = std::collections::HashSet::new();
    for c in &st.completions {
        let fresh = match c.kind {
            TaskKind::Map => seen_map.insert((c.index, c.epoch)),
            TaskKind::Reduce => seen_reduce.insert(c.index),
        };
        if !fresh {
            return Err(format!(
                "duplicate completion across incarnations: {:?} {} epoch {}",
                c.kind, c.index, c.epoch
            ));
        }
    }
    // Every pre-crash running assignment was resolved or adopted: walk the
    // stream, snapshot outstanding work at each TrackerStarted, and demand
    // each snapshot entry sees a later resolving record.
    let mut running_maps: BTreeMap<u32, u32> = BTreeMap::new();
    let mut running_reduces: BTreeMap<u32, u32> = BTreeMap::new();
    let mut pending: Vec<(u32, TaskKind, u32, u32)> = Vec::new(); // (boundary, kind, index, attempt)
    for rec in records {
        match rec {
            JournalRecord::MapAssigned { map, attempt, .. } => {
                running_maps.insert(*map, *attempt);
            }
            JournalRecord::MapCompleted { map, .. }
            | JournalRecord::MapInvalidated { map, .. }
            | JournalRecord::MapRequeued { map, .. } => {
                running_maps.remove(map);
                pending.retain(|(_, k, i, _)| !(*k == TaskKind::Map && i == map));
            }
            JournalRecord::ReduceAssigned { reduce, attempt, .. } => {
                running_reduces.insert(*reduce, *attempt);
            }
            JournalRecord::ReduceCompleted { reduce, .. }
            | JournalRecord::ReduceRequeued { reduce, .. } => {
                running_reduces.remove(reduce);
                pending.retain(|(_, k, i, _)| !(*k == TaskKind::Reduce && i == reduce));
            }
            JournalRecord::AttemptReconciled { kind, index, .. } => {
                pending.retain(|(_, k, i, _)| !(k == kind && i == index));
            }
            JournalRecord::TrackerStarted { crash_epoch } => {
                for (m, a) in &running_maps {
                    pending.push((*crash_epoch, TaskKind::Map, *m, *a));
                }
                for (r, a) in &running_reduces {
                    pending.push((*crash_epoch, TaskKind::Reduce, *r, *a));
                }
            }
            _ => {}
        }
    }
    if st.finished == Some(false) && !pending.is_empty() {
        return Err(format!(
            "assignments outstanding at a crash boundary were never reconciled or re-executed: \
             {pending:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::JobSubmitted {
                seed: 42,
                n_maps: 3,
                n_reduces: 2,
                spec: "wordcount".into(),
            },
            JournalRecord::WorkerRegistered { node: 0, epoch: 0 },
            JournalRecord::WorkerRegistered { node: 1, epoch: 0 },
            JournalRecord::MapAssigned { map: 0, attempt: 0, node: 0 },
            JournalRecord::MapAssigned { map: 1, attempt: 0, node: 1 },
            JournalRecord::MapCompleted {
                map: 0,
                attempt: 0,
                epoch: 0,
                node: 0,
                d_read: 4096,
                part_bytes: vec![10, 20],
            },
            JournalRecord::MapInvalidated { map: 0, new_attempt: 1, new_epoch: 1, banned: None },
            JournalRecord::MapRequeued { map: 1, new_attempt: 1 },
            JournalRecord::ReduceAssigned { reduce: 0, attempt: 0, node: 1 },
            JournalRecord::ReduceCompleted {
                reduce: 0,
                attempt: 0,
                output: vec![("k".into(), "3".into())],
            },
            JournalRecord::ReduceRequeued { reduce: 1, new_attempt: 1 },
            JournalRecord::TrackerStarted { crash_epoch: 1 },
            JournalRecord::AttemptReconciled {
                kind: TaskKind::Map,
                index: 2,
                attempt: 0,
                node: 1,
            },
            JournalRecord::JobFinished { failed: true },
        ]
    }

    #[test]
    fn every_record_round_trips() {
        for rec in sample_records() {
            let bytes = rec.encode();
            let back = JournalRecord::decode(&bytes).unwrap_or_else(|e| panic!("{rec:?}: {e}"));
            assert_eq!(back, rec);
            assert_eq!(rec.encode(), bytes, "deterministic encoding");
        }
        // Truncations are typed errors, never panics.
        for rec in sample_records() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(JournalRecord::decode(&bytes[..cut]).is_err(), "{rec:?} cut {cut}");
            }
        }
    }

    #[test]
    fn journal_file_round_trips_and_replays_deterministically() {
        let dir = std::env::temp_dir().join(format!("pnats-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.journal");
        let mut j = Journal::create(&path, FsyncPolicy::Always).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let back = read_journal(&path).unwrap();
        assert_eq!(back, sample_records());
        let s1 = JournalState::from_records(&back).unwrap();
        let s2 = JournalState::from_records(&read_journal(&path).unwrap()).unwrap();
        assert_eq!(s1.dump(), s2.dump(), "replay must be byte-identical");
        // Appending after reopen continues the same stream.
        let mut j = Journal::open_append(&path, FsyncPolicy::Never).unwrap();
        j.append(&JournalRecord::TrackerStarted { crash_epoch: 2 }).unwrap();
        drop(j);
        assert_eq!(read_journal(&path).unwrap().len(), sample_records().len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("pnats-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let mut j = Journal::create(&path, FsyncPolicy::Never).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Tear the file at every byte boundary inside the last record: the
        // intact prefix must replay; the torn record must vanish.
        let intact = sample_records().len();
        let last_len = JournalRecord::encode(sample_records().last().unwrap()).len() + 8;
        for cut in (full.len() - last_len + 1)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let recs = read_journal(&path).unwrap();
            assert_eq!(recs.len(), intact - 1, "cut at {cut}");
        }
        // Damaged bytes mid-tail: same WAL drop semantics.
        let mut damaged = full.clone();
        let n = damaged.len();
        damaged[n - 3] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), intact - 1);
        // A journal with no intact record is an error, not an empty Ok.
        std::fs::write(&path, b"xx").unwrap();
        assert!(read_journal(&path).is_err());
        // A journal that does not open with JobSubmitted is rejected.
        let mut f = std::fs::File::create(&path).unwrap();
        pnats_rpc::frame::write_frame(
            &mut f,
            &JournalRecord::TrackerStarted { crash_epoch: 1 }.encode(),
        )
        .unwrap();
        f.flush().unwrap();
        drop(f);
        assert!(read_journal(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_fold_reconstructs_the_book() {
        let st = JournalState::from_records(&sample_records()).unwrap();
        assert_eq!((st.seed, st.n_maps, st.n_reduces), (42, 3, 2));
        assert_eq!(st.crash_epochs, 1);
        assert_eq!(st.finished, Some(true));
        // Map 0: completed then invalidated.
        assert!(!st.maps[0].finished && !st.maps[0].running);
        assert_eq!((st.maps[0].attempt, st.maps[0].epoch), (1, 1));
        // Map 1: assigned then requeued.
        assert!(!st.maps[1].running);
        assert_eq!(st.maps[1].attempt, 1);
        // Reduce 0 finished with output; reduce 1 requeued.
        assert!(st.reduces[0].finished);
        assert_eq!(st.reduces[0].output, vec![("k".into(), "3".into())]);
        assert!(!st.reduces[1].running);
        assert_eq!(st.node_epochs.get(&1), Some(&0));
        assert_eq!(st.completions.len(), 2);
        let (rm, rr, inh, reexec) = st.recovery_tallies();
        assert_eq!((rm, rr, inh, reexec), (0, 1, 0, 1));
    }

    #[test]
    fn recovery_law_catches_duplicates_and_orphans() {
        // A clean recovered run passes.
        let mut ok = vec![
            JournalRecord::JobSubmitted {
                seed: 1,
                n_maps: 1,
                n_reduces: 1,
                spec: "wordcount".into(),
            },
            JournalRecord::MapAssigned { map: 0, attempt: 0, node: 0 },
            JournalRecord::TrackerStarted { crash_epoch: 1 },
            JournalRecord::AttemptReconciled {
                kind: TaskKind::Map,
                index: 0,
                attempt: 0,
                node: 0,
            },
            JournalRecord::MapCompleted {
                map: 0,
                attempt: 0,
                epoch: 0,
                node: 0,
                d_read: 1,
                part_bytes: vec![1],
            },
            JournalRecord::ReduceAssigned { reduce: 0, attempt: 0, node: 0 },
            JournalRecord::ReduceCompleted { reduce: 0, attempt: 0, output: vec![] },
            JournalRecord::JobFinished { failed: false },
        ];
        check_journal_recovery(&ok).unwrap();
        // Duplicate (map, epoch) completion across the restart is fatal.
        ok.insert(
            5,
            JournalRecord::MapCompleted {
                map: 0,
                attempt: 0,
                epoch: 0,
                node: 0,
                d_read: 1,
                part_bytes: vec![1],
            },
        );
        assert!(check_journal_recovery(&ok).is_err());
        // An assignment outstanding at the boundary that nothing ever
        // resolves is fatal on a successful job.
        let orphan = vec![
            JournalRecord::JobSubmitted {
                seed: 1,
                n_maps: 2,
                n_reduces: 0,
                spec: "wordcount".into(),
            },
            JournalRecord::MapAssigned { map: 1, attempt: 0, node: 0 },
            JournalRecord::TrackerStarted { crash_epoch: 1 },
            JournalRecord::MapAssigned { map: 0, attempt: 0, node: 0 },
            JournalRecord::MapCompleted {
                map: 0,
                attempt: 0,
                epoch: 0,
                node: 0,
                d_read: 1,
                part_bytes: vec![],
            },
            JournalRecord::JobFinished { failed: false },
        ];
        assert!(check_journal_recovery(&orphan).is_err());
    }
}
