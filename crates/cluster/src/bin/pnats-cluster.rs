//! Cluster runtime entry point: run a JobTracker daemon or a TaskTracker
//! worker as a real OS process.
//!
//! ```text
//! pnats-cluster tracker --listen 127.0.0.1:7070 --job wordcount \
//!     --input in.txt --nodes 4 --reduces 3 --scheduler paper \
//!     --report report.txt
//! pnats-cluster worker --node 0 --tracker 127.0.0.1:7070
//! ```
//!
//! The tracker prints (or writes with `--report`) the flat report form of
//! [`pnats_cluster::ReportSummary`] and exits non-zero on a failed job.

use pnats_cluster::{check_cluster_report, ClusterConfig, JobSpec, JobTracker, WorkerConfig};
use pnats_obs::DecisionObserver;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: pnats-cluster tracker --listen ADDR --job wordcount|grep:<needle>|terasort --input FILE \
[--nodes N] [--reduces R] [--map-slots M] [--reduce-slots S] [--block-bytes B] [--heartbeat-ms T] \
[--expire-after K] [--cpu-us-per-kib C] [--seed S] [--scheduler NAME] [--max-wall-s W] [--report FILE] [--trace FILE] \
[--journal FILE] [--fsync never|always] [--reattach-grace K]\n\
       pnats-cluster worker --node I --tracker ADDR [--map-slots M] [--reduce-slots S] [--heartbeat-ms T] [--orphan-grace-ms T]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match args[0].as_str() {
        "tracker" => run_tracker(&args[1..]),
        "worker" => run_worker_cmd(&args[1..]),
        other => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` pairs into a lookup; returns `None` on a dangling key.
fn parse_flags(args: &[String]) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let k = k.strip_prefix("--")?;
        let v = it.next()?;
        out.push((k.to_string(), v.clone()));
    }
    Some(out)
}

fn get<'a>(flags: &'a [(String, String)], key: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn run_tracker(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let listen = get(&flags, "listen").unwrap_or("127.0.0.1:0");
    let Some(spec) = get(&flags, "job").and_then(JobSpec::from_wire) else {
        eprintln!("tracker needs --job wordcount|grep:<needle>|terasort");
        return ExitCode::FAILURE;
    };
    let Some(input_path) = get(&flags, "input") else {
        eprintln!("tracker needs --input FILE");
        return ExitCode::FAILURE;
    };
    let input = match std::fs::read_to_string(input_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {input_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = ClusterConfig::default();
    let parse = |s: &str| s.parse::<u64>().ok();
    if let Some(n) = get(&flags, "nodes").and_then(parse) {
        cfg.n_nodes = n as usize;
    }
    if let Some(n) = get(&flags, "map-slots").and_then(parse) {
        cfg.map_slots = n as u32;
    }
    if let Some(n) = get(&flags, "reduce-slots").and_then(parse) {
        cfg.reduce_slots = n as u32;
    }
    if let Some(n) = get(&flags, "block-bytes").and_then(parse) {
        cfg.block_bytes = n as usize;
    }
    if let Some(n) = get(&flags, "heartbeat-ms").and_then(parse) {
        cfg.heartbeat = Duration::from_millis(n);
    }
    if let Some(n) = get(&flags, "expire-after").and_then(parse) {
        cfg.expire_after = n;
    }
    if let Some(n) = get(&flags, "cpu-us-per-kib").and_then(parse) {
        cfg.cpu_us_per_kib = n;
    }
    if let Some(n) = get(&flags, "seed").and_then(parse) {
        cfg.seed = n;
    }
    if let Some(n) = get(&flags, "max-wall-s").and_then(parse) {
        cfg.max_wall = Duration::from_secs(n);
    }
    if let Some(path) = get(&flags, "journal") {
        cfg.journal = Some(path.into());
    }
    if let Some(policy) = get(&flags, "fsync") {
        let Some(p) = pnats_cluster::FsyncPolicy::parse(policy) else {
            eprintln!("--fsync takes `never` or `always`, not `{policy}`");
            return ExitCode::FAILURE;
        };
        cfg.journal_fsync = p;
    }
    if let Some(n) = get(&flags, "reattach-grace").and_then(parse) {
        cfg.reattach_grace = n;
    }
    let n_reduces = get(&flags, "reduces").and_then(parse).unwrap_or(3) as usize;
    let sched = get(&flags, "scheduler").unwrap_or("paper");
    let Some(placer) = pnats_cluster::placer_by_name(sched, cfg.heartbeat.as_secs_f64()) else {
        eprintln!("unknown scheduler `{sched}`");
        return ExitCode::FAILURE;
    };
    let observer = match get(&flags, "trace") {
        Some(path) => match pnats_obs::JsonlFileSink::create(path) {
            Ok(sink) => DecisionObserver::with_sink(Box::new(sink)),
            Err(e) => {
                eprintln!("cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DecisionObserver::disabled(),
    };
    let tracker =
        match JobTracker::start(listen, cfg, spec, n_reduces, &input, placer, observer) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot bind {listen}: {e}");
                return ExitCode::FAILURE;
            }
        };
    // Parents scrape this line to learn the ephemeral port.
    println!("tracker listening on {}", tracker.addr());
    let report = tracker.wait();
    if let Err(e) = check_cluster_report(&report) {
        eprintln!("oracle violation: {e}");
        return ExitCode::FAILURE;
    }
    let text = report.to_text();
    match get(&flags, "report") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write report {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    if report.failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_worker_cmd(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(node) = get(&flags, "node").and_then(|s| s.parse::<u32>().ok()) else {
        eprintln!("worker needs --node I");
        return ExitCode::FAILURE;
    };
    let Some(tracker_addr) = get(&flags, "tracker") else {
        eprintln!("worker needs --tracker ADDR");
        return ExitCode::FAILURE;
    };
    let defaults = ClusterConfig::default();
    let cfg = WorkerConfig {
        node,
        tracker_addr: tracker_addr.to_string(),
        map_slots: get(&flags, "map-slots")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.map_slots),
        reduce_slots: get(&flags, "reduce-slots")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.reduce_slots),
        heartbeat: get(&flags, "heartbeat-ms")
            .and_then(|s| s.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(defaults.heartbeat),
        io_timeout: defaults.io_timeout,
        retry: defaults.retry,
        breaker: defaults.breaker,
        chaos: None,
        orphan_grace: get(&flags, "orphan-grace-ms")
            .and_then(|s| s.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(defaults.orphan_grace),
    };
    match pnats_cluster::run_worker(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker {node}: {e}");
            ExitCode::FAILURE
        }
    }
}
