//! Cluster runtime configuration — the distributed twin of
//! [`pnats_engine::EngineConfig`], plus the knobs only a real network
//! needs: liveness expiry, IO deadlines, RPC retry budgets.

use crate::journal::FsyncPolicy;
use pnats_core::faults::FaultPlan;
use pnats_core::partition::Partitioner;
use pnats_engine::EngineConfig;
use pnats_rpc::{BreakerPolicy, RetryPolicy};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration for a tracker + worker fleet. Fields shared with
/// [`EngineConfig`] carry identical semantics so a cluster run and an
/// engine run over the same seed are comparable task-for-task; the extras
/// (`expire_after`, `io_timeout`, `retry`, `max_wall`) govern the real
/// TCP plane the engine does not have.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Worker (TaskTracker) count. Node ids are `0..n_nodes`.
    pub n_nodes: usize,
    /// Map slots per worker.
    pub map_slots: u32,
    /// Reduce slots per worker.
    pub reduce_slots: u32,
    /// Input split size in bytes.
    pub block_bytes: usize,
    /// Replication factor for input blocks.
    pub replication: usize,
    /// Heartbeat period (worker send interval and tracker round length).
    pub heartbeat: Duration,
    /// Simulated map compute cost: microseconds per KiB of input. Drives
    /// the pacing sleeps inside map attempts, exactly as in the engine.
    pub cpu_us_per_kib: u64,
    /// Fraction of maps that must finish before reduces launch.
    pub slowstart: f64,
    /// Shuffle-partition choice.
    pub partitioner: Partitioner,
    /// Seed for replica placement and placer randomness.
    pub seed: u64,
    /// Deterministic fault plan, keyed by heartbeat round like the
    /// engine's: crashes at `at as u64`, heartbeat-loss windows over
    /// `[from as u64, until as u64)` rounds. Loss windows are *honored*
    /// here (the engine ignores them): an in-window heartbeat is observed
    /// as lost and not applied.
    pub faults: FaultPlan,
    /// Liveness threshold `k`: a registered worker silent for more than
    /// `k` rounds is declared dead, its map outputs invalidated.
    pub expire_after: u64,
    /// Read/write deadline on every TCP stream (tracker and workers).
    pub io_timeout: Duration,
    /// Retry budget + backoff for worker→tracker and worker→worker calls.
    pub retry: RetryPolicy,
    /// Hard wall-clock cap on a job; exceeded means a failed report
    /// instead of a hung test run.
    pub max_wall: Duration,
    /// Per-peer circuit breaker for worker partition fetches: after
    /// `threshold` consecutive failures the peer is skipped for `cooldown`
    /// checks, and a breaker that stays tripped escalates to the tracker
    /// as a `SourceUnreachable` report (re-executing the map elsewhere).
    pub breaker: BreakerPolicy,
    /// Tracker safe-mode threshold: when the fraction of workers still
    /// heartbeating falls *below* this value, the tracker stops expiring
    /// the silent ones (a mass silence is more likely the tracker's own
    /// partition than a simultaneous fleet death) and emits a
    /// `degraded_mode` fault record. `0.0` disables safe-mode entirely —
    /// the default, so fault-plan parity with the engine is untouched.
    pub safe_mode_below: f64,
    /// Durable write-ahead job journal path. `None` (the default) keeps
    /// the tracker in-memory-only, exactly as before; `Some(path)` makes
    /// every scheduler mutation journaled *before* it is applied, and a
    /// tracker started over a non-empty journal recovers from it instead
    /// of starting the job fresh.
    pub journal: Option<PathBuf>,
    /// When journal appends reach stable storage. [`FsyncPolicy::Never`]
    /// (default) survives tracker SIGKILL; [`FsyncPolicy::Always`] also
    /// survives OS crashes.
    pub journal_fsync: FsyncPolicy,
    /// Rounds a recovered tracker waits for journal-known workers to
    /// re-attach before treating them as expired. Must comfortably exceed
    /// `expire_after` — an orphaned worker's reconnect backoff can span
    /// several normal expiry windows.
    pub reattach_grace: u64,
    /// How long an orphaned worker keeps re-dialing a dead tracker before
    /// giving up and exiting. The hold state: tasks keep running, outputs
    /// are kept, heartbeats are swapped for `Reattach` probes.
    pub orphan_grace: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_nodes: 4,
            map_slots: 2,
            reduce_slots: 1,
            block_bytes: 4 << 10,
            replication: 2,
            heartbeat: Duration::from_millis(5),
            cpu_us_per_kib: 30,
            slowstart: 0.25,
            partitioner: Partitioner::Hash,
            seed: 42,
            faults: FaultPlan::none(),
            expire_after: 8,
            io_timeout: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            max_wall: Duration::from_secs(120),
            breaker: BreakerPolicy::default(),
            safe_mode_below: 0.0,
            journal: None,
            journal_fsync: FsyncPolicy::Never,
            reattach_grace: 40,
            orphan_grace: Duration::from_secs(8),
        }
    }
}

impl ClusterConfig {
    /// The engine configuration that produces the *same job* — identical
    /// splits, replicas, partitions and fault verdicts — for parity
    /// comparisons. Network/compute pacing fields only shape timing, never
    /// output, so the engine defaults are kept there.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            n_nodes: self.n_nodes,
            map_slots: self.map_slots,
            reduce_slots: self.reduce_slots,
            block_bytes: self.block_bytes,
            replication: self.replication,
            cpu_us_per_kib: self.cpu_us_per_kib,
            slowstart: self.slowstart,
            partitioner: self.partitioner,
            seed: self.seed,
            faults: self.faults.clone(),
            ..EngineConfig::default()
        }
    }
}
