//! Job selection over the wire. The tracker tells each registering worker
//! *which* built-in job to run as a short string; both sides construct the
//! same mapper/reducer from it, so user code never crosses the network.

use pnats_engine::{EngineJob, GrepJob, TeraSortJob, WordCountJob};
use std::sync::Arc;

/// A built-in MapReduce job the cluster runtime can run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// Count word occurrences.
    WordCount,
    /// Count lines containing a needle.
    Grep(String),
    /// Sort 10-byte-key records.
    TeraSort,
}

impl JobSpec {
    /// Wire form carried in `RegisterAck` (`wordcount`, `grep:<needle>`,
    /// `terasort`).
    pub fn to_wire(&self) -> String {
        match self {
            JobSpec::WordCount => "wordcount".to_string(),
            JobSpec::Grep(needle) => format!("grep:{needle}"),
            JobSpec::TeraSort => "terasort".to_string(),
        }
    }

    /// Parse the wire form; `None` for an unknown job name.
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "wordcount" => Some(JobSpec::WordCount),
            "terasort" => Some(JobSpec::TeraSort),
            _ => s.strip_prefix("grep:").map(|n| JobSpec::Grep(n.to_string())),
        }
    }

    /// Materialize the engine job both runtimes execute.
    pub fn job(&self, n_reduces: usize) -> EngineJob {
        match self {
            JobSpec::WordCount => {
                EngineJob::new("wordcount", Arc::new(WordCountJob), Arc::new(WordCountJob), n_reduces)
            }
            JobSpec::Grep(needle) => EngineJob::new(
                "grep",
                Arc::new(GrepJob { needle: needle.clone() }),
                Arc::new(GrepJob { needle: needle.clone() }),
                n_reduces,
            ),
            JobSpec::TeraSort => {
                EngineJob::new("terasort", Arc::new(TeraSortJob), Arc::new(TeraSortJob), n_reduces)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for spec in [
            JobSpec::WordCount,
            JobSpec::TeraSort,
            JobSpec::Grep("needle with spaces".to_string()),
            JobSpec::Grep(String::new()),
        ] {
            assert_eq!(JobSpec::from_wire(&spec.to_wire()), Some(spec));
        }
        assert_eq!(JobSpec::from_wire("sort"), None);
    }
}
