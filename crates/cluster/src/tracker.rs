//! The JobTracker: one RPC server, one shared state mutex, one tick
//! thread. Every scheduling decision runs through the *unmodified*
//! [`TaskPlacer`] the simulator and engine use — the tracker is a third
//! runtime behind the same scheduling contract, with real TCP in between.
//!
//! Placement flows through heartbeats exactly as in the engine driver:
//! a worker's heartbeat syncs its free slots, applies its completed work,
//! then fills its slots through the placer. Liveness is the tracker's own
//! problem here (the engine *knows* when a virtual node dies): a
//! registered worker silent for more than `expire_after` rounds is
//! declared dead and its completed map outputs are invalidated, which
//! re-queues those maps under a bumped attempt tag — stale completions
//! and duplicate deliveries (the client retries calls) are deduplicated
//! by `(task, attempt, holder)`.

use crate::config::ClusterConfig;
use crate::jobspec::JobSpec;
use crate::journal::{read_journal, Journal, JournalRecord, JournalState};
use crate::report::ClusterReport;
use pnats_core::context::{
    MapCandidate, MapSchedContext, ReduceCandidate, ReduceSchedContext, ShuffleSource,
};
use pnats_core::placer::{Decision, TaskPlacer};
use pnats_core::types::{JobId, MapTaskId, ReduceTaskId};
use pnats_dfs::{BlockId, BlockStore, RackAware, ReplicaPlacement};
use pnats_engine::exec::{slowstart_gate, split_blocks};
use pnats_metrics::{LocalityClass, LocalityCounter};
use pnats_net::{ClusterLayout, DistanceMatrix, NodeId, Topology};
use pnats_obs::{DecisionObserver, FaultKind, FaultRecord, TaskCompletion, TaskKind};
use pnats_rpc::{Assignment, MapDone, MapFailed, Msg, ProgressReport, ReduceDone, RpcServer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many rounds an assignment may stay unacknowledged (absent from the
/// owner's reported running/completed work) before the tracker concludes
/// the reply carrying it was lost and requeues the task. Covers the
/// at-least-once gap: a heartbeat the tracker applied whose reply never
/// reached the worker.
const ASSIGNMENT_ACK_GRACE: u64 = 3;

struct NodeState {
    registered: bool,
    epoch: u32,
    data_addr: String,
    last_heard: u64,
    /// Fault-plan crash window nesting depth; > 0 means scripted-down.
    down_depth: u32,
    free_map: u32,
    free_reduce: u32,
    /// The journal knows this worker but the current incarnation has not
    /// heard from it yet: heartbeats are answered `reattach` instead of
    /// `dead`, and expiry is held for `reattach_grace` rounds.
    awaiting_reattach: bool,
}

struct TrackerState {
    cfg: ClusterConfig,
    spec: JobSpec,
    blocks: Vec<String>,
    replicas: Vec<Vec<NodeId>>,
    map_cands: Vec<MapCandidate>,
    n_maps: usize,
    n_reduces: usize,
    hops: Arc<DistanceMatrix>,
    layout: ClusterLayout,
    placer: Box<dyn TaskPlacer>,
    observer: DecisionObserver,
    rng: SmallRng,
    start: Instant,
    round: u64,
    nodes: Vec<NodeState>,
    // Per-map bookkeeping (indices parallel `blocks`).
    map_holder: Vec<Option<u32>>,
    map_attempt: Vec<u32>,
    map_starts: Vec<u32>,
    map_finished: Vec<bool>,
    map_assigned_round: Vec<u64>,
    /// Crash epoch per map: bumped each time a *completed* output is
    /// invalidated, so the completion ledger can prove exactly-once per
    /// epoch (the runtime face of the simulator's oracle law 2).
    map_epoch: Vec<u32>,
    /// The node a map must not be re-placed on after a `SourceUnreachable`
    /// escalation — re-executing on the holder reducers cannot reach would
    /// reproduce the partition instead of routing around it.
    map_banned: Vec<Option<u32>>,
    /// Snapshot of each map's gauges: `(d_read, per-partition bytes)`.
    progress: Vec<(u64, Vec<u64>)>,
    maps_finished: usize,
    // Per-reduce bookkeeping.
    reduce_holder: Vec<Option<u32>>,
    reduce_attempt: Vec<u32>,
    reduce_finished: Vec<bool>,
    reduce_assigned_round: Vec<u64>,
    reduces_finished: usize,
    job_reduce_nodes: Vec<NodeId>,
    final_output: Vec<Vec<(String, String)>>,
    unassigned_maps: Vec<usize>,
    unassigned_reduces: Vec<usize>,
    skipped_offers: u64,
    map_locality: LocalityCounter,
    reduce_locality: LocalityCounter,
    /// `(round, tag, node)`; tag 0 = crash, 1 = recover. Sorted.
    fault_events: Vec<(u64, u8, usize)>,
    next_fault: usize,
    /// Every completion the tracker *accepted*, in acceptance order — the
    /// ledger `pnats_sim::check_runtime_completions` audits. Seeded from
    /// the journal on recovery so the exactly-once-per-epoch law spans
    /// incarnations.
    completions: Vec<TaskCompletion>,
    /// The write-ahead journal, when `cfg.journal` is set. Every record is
    /// appended *before* the mutation it describes is applied or the reply
    /// carrying it is sent.
    journal: Option<Journal>,
    /// Which tracker incarnation this is: 0 for a fresh job, +1 per
    /// recovery from the journal.
    crash_epoch: u32,
    /// Journal-inherited running assignments not yet confirmed by their
    /// worker (indexed like `map_holder` / `reduce_holder`). Confirmation
    /// at re-attach books an `attempt_reconciled` fault + journal record.
    map_inherited: Vec<bool>,
    reduce_inherited: Vec<bool>,
    /// Wall-clock ms (since this incarnation started) of the first
    /// assignment it handed out — the recovery-latency probe the failover
    /// bench reads.
    first_assign_ms: Option<u64>,
    /// Whether any worker ever registered; safe-mode cannot trigger on a
    /// fleet that has not shown up yet.
    ever_registered: bool,
    /// Currently in safe-mode (too few reachable workers to trust expiry).
    degraded: bool,
    failed: bool,
    done: bool,
}

impl TrackerState {
    fn fault(&mut self, kind: FaultKind, node: u32, task: Option<u32>) {
        let job = if task.is_some() || kind == FaultKind::JobFailed { Some(0) } else { None };
        self.observer.observe_fault(&FaultRecord {
            t: self.start.elapsed().as_secs_f64(),
            kind,
            node,
            job,
            task,
        });
    }

    /// Append one journal record (no-op without a journal). Write-ahead
    /// discipline: called *before* the mutation the record describes.
    /// Fail-stop on IO error — a tracker that cannot journal must not keep
    /// mutating state it has promised to make durable.
    fn journal_rec(&mut self, rec: &JournalRecord) {
        if let Some(j) = self.journal.as_mut() {
            j.append(rec).expect("journal append");
        }
    }

    /// Transition to `done`, journaling the verdict first. Idempotent.
    fn finish(&mut self, failed: bool) {
        if self.done {
            return;
        }
        self.journal_rec(&JournalRecord::JobFinished { failed });
        self.failed = failed;
        self.done = true;
    }

    /// A node is a placement target when it is registered and not
    /// scripted down (death — scripted or detected — clears `registered`).
    fn alive(&self, n: usize) -> bool {
        self.nodes[n].registered && self.nodes[n].down_depth == 0
    }

    /// Kill a node's contribution to the job: invalidate its completed map
    /// outputs (they died with its data server), requeue its running work
    /// under bumped attempt tags, and zero its slots. Mirrors the engine's
    /// `on_engine_crash`.
    fn invalidate_node(&mut self, n: usize) {
        self.nodes[n].registered = false;
        self.nodes[n].free_map = 0;
        self.nodes[n].free_reduce = 0;
        let node = NodeId(n as u32);
        for m in 0..self.n_maps {
            if self.map_holder[m] != Some(n as u32) || self.unassigned_maps.contains(&m) {
                continue;
            }
            if self.map_finished[m] {
                self.journal_rec(&JournalRecord::MapInvalidated {
                    map: m as u32,
                    new_attempt: self.map_attempt[m] + 1,
                    new_epoch: self.map_epoch[m] + 1,
                    banned: None,
                });
                self.map_finished[m] = false;
                self.maps_finished -= 1;
                self.map_epoch[m] += 1;
                self.fault(FaultKind::MapInvalidated, n as u32, Some(m as u32));
            } else {
                self.journal_rec(&JournalRecord::MapRequeued {
                    map: m as u32,
                    new_attempt: self.map_attempt[m] + 1,
                });
                self.fault(FaultKind::TaskRescheduled, n as u32, Some(m as u32));
            }
            self.map_attempt[m] += 1;
            self.map_holder[m] = None;
            self.map_inherited[m] = false;
            self.progress[m] = (0, vec![0; self.n_reduces]);
            self.unassigned_maps.push(m);
        }
        for r in 0..self.n_reduces {
            if self.reduce_holder[r] != Some(n as u32) || self.reduce_finished[r] {
                continue; // finished reduce output is tracker-held, hence durable
            }
            self.journal_rec(&JournalRecord::ReduceRequeued {
                reduce: r as u32,
                new_attempt: self.reduce_attempt[r] + 1,
            });
            self.reduce_inherited[r] = false;
            self.reduce_attempt[r] += 1;
            self.reduce_holder[r] = None;
            self.unassigned_reduces.push(r);
            if let Some(pos) = self.job_reduce_nodes.iter().position(|x| *x == node) {
                self.job_reduce_nodes.swap_remove(pos);
            }
            self.fault(FaultKind::TaskRescheduled, n as u32, Some(r as u32));
        }
    }

    /// One heartbeat round: fault-plan events, liveness expiry, the
    /// whole-fleet-blackout check. Runs on the tick thread.
    fn tick(&mut self) {
        self.round += 1;
        let round = self.round;
        self.placer.on_heartbeat_round(round);
        self.observer.begin_round(round);

        while self.next_fault < self.fault_events.len()
            && self.fault_events[self.next_fault].0 <= round
        {
            let (_, tag, n) = self.fault_events[self.next_fault];
            self.next_fault += 1;
            if tag == 0 {
                self.nodes[n].down_depth += 1;
                if self.nodes[n].down_depth > 1 {
                    continue;
                }
                self.fault(FaultKind::NodeCrash, n as u32, None);
                self.invalidate_node(n);
            } else {
                self.nodes[n].down_depth = self.nodes[n].down_depth.saturating_sub(1);
                if self.nodes[n].down_depth == 0 {
                    // The worker re-registers on its own (its heartbeats
                    // were answered `dead`); slots refill at registration.
                    self.fault(FaultKind::NodeRecover, n as u32, None);
                }
            }
        }

        // Safe-mode: when too few workers are still reachable, silence is
        // more plausibly *our* partition than a simultaneous fleet death.
        // Expiring (and invalidating) everyone would throw away work that
        // is still materializing on the far side; instead hold all expiry,
        // keep queued work queued, and record the degradation.
        let reachable = (0..self.cfg.n_nodes)
            .filter(|&n| {
                self.nodes[n].registered
                    && round.saturating_sub(self.nodes[n].last_heard) <= self.cfg.expire_after
            })
            .count();
        let degraded = self.cfg.safe_mode_below > 0.0
            && self.ever_registered
            && (reachable as f64) < self.cfg.safe_mode_below * self.cfg.n_nodes as f64;
        if degraded && !self.degraded {
            self.fault(FaultKind::DegradedMode, reachable as u32, None);
        }
        self.degraded = degraded;

        // Liveness: a registered worker silent beyond the threshold is as
        // dead as a scripted crash — same invalidation, plus the expiry
        // marker that distinguishes detection from script.
        if !self.degraded {
            for n in 0..self.cfg.n_nodes {
                if self.nodes[n].registered
                    && self.nodes[n].down_depth == 0
                    && round.saturating_sub(self.nodes[n].last_heard) > self.cfg.expire_after
                {
                    self.fault(FaultKind::PeerExpired, n as u32, None);
                    self.fault(FaultKind::NodeCrash, n as u32, None);
                    self.invalidate_node(n);
                }
            }
        }

        // Recovery grace: a journal-known worker that never re-attached
        // within `reattach_grace` rounds of this incarnation is as dead as
        // an expired one — its inherited work (finished outputs included)
        // is invalidated and re-executed.
        if round > self.cfg.reattach_grace {
            for n in 0..self.cfg.n_nodes {
                if self.nodes[n].awaiting_reattach {
                    self.nodes[n].awaiting_reattach = false;
                    self.fault(FaultKind::PeerExpired, n as u32, None);
                    self.fault(FaultKind::NodeCrash, n as u32, None);
                    self.invalidate_node(n);
                }
            }
        }

        // A whole-fleet scripted blackout with no recovery ahead cannot
        // finish the job. (Expired-but-live workers re-register on their
        // own, so expiry alone never triggers this; the wall-clock cap in
        // `wait` bounds every other stall.)
        if !self.done
            && (0..self.cfg.n_nodes).all(|n| self.nodes[n].down_depth > 0)
            && !self.fault_events[self.next_fault..].iter().any(|e| e.1 == 1)
        {
            self.finish(true);
            self.fault(FaultKind::JobFailed, 0, None);
        }
    }

    fn on_register(&mut self, node: u32, epoch: u32, data_addr: String) -> Msg {
        let n = node as usize;
        if n >= self.cfg.n_nodes || self.done {
            return Msg::Shutdown;
        }
        if self.nodes[n].down_depth > 0 {
            return Msg::NotReady; // scripted-down: hold the worker off
        }
        if self.nodes[n].awaiting_reattach {
            // The worker came back *fresh* (wiped) instead of re-attaching:
            // whatever the journal says it held died with its old life.
            self.nodes[n].awaiting_reattach = false;
            self.invalidate_node(n);
        }
        self.journal_rec(&JournalRecord::WorkerRegistered { node, epoch });
        self.nodes[n].registered = true;
        self.ever_registered = true;
        self.nodes[n].epoch = epoch;
        self.nodes[n].data_addr = data_addr;
        self.nodes[n].last_heard = self.round;
        self.nodes[n].free_map = self.cfg.map_slots;
        self.nodes[n].free_reduce = self.cfg.reduce_slots;
        let shard: Vec<(u32, String)> = (0..self.n_maps)
            .filter(|&b| self.replicas[b].contains(&NodeId(node)))
            .map(|b| (b as u32, self.blocks[b].clone()))
            .collect();
        Msg::RegisterAck {
            node,
            job: self.spec.to_wire(),
            n_reduces: self.n_reduces as u32,
            partitioner: self.cfg.partitioner.tag(),
            cpu_us_per_kib: self.cfg.cpu_us_per_kib,
            blocks: shard,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_heartbeat(
        &mut self,
        node: u32,
        epoch: u32,
        free_map_slots: u32,
        free_reduce_slots: u32,
        progress: Vec<ProgressReport>,
        map_done: Vec<MapDone>,
        map_failed: Vec<MapFailed>,
        reduce_done: Vec<ReduceDone>,
        running_reduces: Vec<(u32, u32)>,
        rpc_retries: u64,
        breaker_trips: u64,
        breaker_closes: u64,
        alt_fetches: u64,
        corrupt_frames: u64,
    ) -> Msg {
        let reply = |assignments, invalidate, ignored, dead, shutdown| Msg::HeartbeatReply {
            assignments,
            invalidate,
            ignored,
            dead,
            shutdown,
            reattach: false,
        };
        let n = node as usize;
        if n >= self.cfg.n_nodes {
            return reply(Vec::new(), Vec::new(), false, true, false);
        }
        if self.done {
            return reply(Vec::new(), Vec::new(), false, false, true);
        }
        if self.nodes[n].awaiting_reattach
            && self.nodes[n].epoch == epoch
            && self.nodes[n].down_depth == 0
        {
            // A recovered tracker hearing from a journal-known worker that
            // never noticed the restart: tell it to re-attach *keeping* its
            // state (unlike `dead`, which would wipe finished outputs the
            // journal still counts on).
            return Msg::HeartbeatReply {
                assignments: Vec::new(),
                invalidate: Vec::new(),
                ignored: true,
                dead: false,
                shutdown: false,
                reattach: true,
            };
        }
        if !self.nodes[n].registered || self.nodes[n].epoch != epoch || self.nodes[n].down_depth > 0
        {
            // Unknown epoch or declared-dead worker: make it wipe and
            // re-register so both sides agree on a fresh attempt space.
            return reply(Vec::new(), Vec::new(), false, true, false);
        }
        let round = self.round;
        if self
            .cfg
            .faults
            .heartbeat_losses
            .iter()
            .any(|h| h.node == n && (h.from as u64) <= round && round < h.until as u64)
        {
            // The fault plan eats this heartbeat: nothing is applied, the
            // worker keeps its pending statuses, `last_heard` stays stale
            // so a long enough window expires the node.
            self.fault(FaultKind::HeartbeatLost, node, None);
            return reply(Vec::new(), Vec::new(), true, false, false);
        }
        self.nodes[n].last_heard = round;
        self.nodes[n].free_map = free_map_slots;
        self.nodes[n].free_reduce = free_reduce_slots;
        for _ in 0..rpc_retries.min(10_000) {
            self.fault(FaultKind::RpcRetry, node, None);
        }
        for _ in 0..breaker_trips.min(10_000) {
            self.fault(FaultKind::CircuitOpen, node, None);
        }
        for _ in 0..breaker_closes.min(10_000) {
            self.fault(FaultKind::CircuitClose, node, None);
        }
        for _ in 0..alt_fetches.min(10_000) {
            self.fault(FaultKind::AltSourceFetch, node, None);
        }
        for _ in 0..corrupt_frames.min(10_000) {
            self.fault(FaultKind::FrameCorrupted, node, None);
        }

        let mut invalidate: Vec<u32> = Vec::new();

        for p in &progress {
            let m = p.map as usize;
            if m < self.n_maps
                && self.map_holder[m] == Some(node)
                && self.map_attempt[m] == p.attempt
                && !self.map_finished[m]
            {
                self.progress[m] = (p.d_read, p.part_bytes.clone());
            }
        }
        for d in &map_done {
            let m = d.map as usize;
            if m >= self.n_maps {
                continue;
            }
            if self.map_holder[m] == Some(node) && self.map_attempt[m] == d.attempt {
                if !self.map_finished[m] {
                    self.journal_rec(&JournalRecord::MapCompleted {
                        map: d.map,
                        attempt: d.attempt,
                        epoch: self.map_epoch[m],
                        node,
                        d_read: self.blocks[m].len() as u64,
                        part_bytes: d.bytes.clone(),
                    });
                    self.map_finished[m] = true;
                    self.maps_finished += 1;
                    self.map_inherited[m] = false;
                    self.progress[m] = (self.blocks[m].len() as u64, d.bytes.clone());
                    self.completions.push(TaskCompletion {
                        kind: TaskKind::Map,
                        index: d.map,
                        epoch: self.map_epoch[m],
                    });
                }
                // else: duplicate delivery of an applied completion — the
                // held output is still the valid one; accept silently.
            } else {
                // Stale attempt (invalidated or rescheduled since): the
                // worker must drop the bytes it is holding for this map.
                invalidate.push(d.map);
            }
        }
        for f in &map_failed {
            let m = f.map as usize;
            if m >= self.n_maps
                || self.map_holder[m] != Some(node)
                || self.map_attempt[m] != f.attempt
                || self.map_finished[m]
            {
                continue; // stale or duplicate failure report
            }
            self.journal_rec(&JournalRecord::MapRequeued {
                map: f.map,
                new_attempt: self.map_attempt[m] + 1,
            });
            self.map_attempt[m] += 1;
            self.map_inherited[m] = false;
            self.fault(FaultKind::TransientFailure, node, Some(f.map));
            if self.map_starts[m] >= self.cfg.faults.max_attempts {
                self.failed = true;
                self.fault(FaultKind::JobFailed, node, Some(f.map));
            } else {
                self.map_holder[m] = None;
                self.progress[m] = (0, vec![0; self.n_reduces]);
                self.unassigned_maps.push(m);
            }
        }
        for r in &reduce_done {
            let red = r.reduce as usize;
            if red >= self.n_reduces
                || self.reduce_holder[red] != Some(node)
                || self.reduce_attempt[red] != r.attempt
                || self.reduce_finished[red]
            {
                continue; // stale or duplicate completion
            }
            self.journal_rec(&JournalRecord::ReduceCompleted {
                reduce: r.reduce,
                attempt: r.attempt,
                output: r.output.clone(),
            });
            self.reduce_finished[red] = true;
            self.reduces_finished += 1;
            self.reduce_inherited[red] = false;
            self.final_output[red] = r.output.clone();
            self.completions.push(TaskCompletion { kind: TaskKind::Reduce, index: r.reduce, epoch: 0 });
            let nid = NodeId(node);
            if let Some(pos) = self.job_reduce_nodes.iter().position(|x| *x == nid) {
                self.job_reduce_nodes.swap_remove(pos);
            }
            let dominant = r.sources.iter().max_by_key(|(_, b)| *b).map(|(s, _)| NodeId(*s));
            self.reduce_locality.record(match dominant {
                Some(d) if d == nid => LocalityClass::NodeLocal,
                Some(d) if self.layout.same_rack(d, nid) => LocalityClass::RackLocal,
                Some(_) => LocalityClass::Remote,
                None => LocalityClass::NodeLocal,
            });
        }

        self.requeue_unacked(node, &progress, &map_done, &map_failed, &running_reduces, &reduce_done);

        if self.failed
            || (self.maps_finished == self.n_maps && self.reduces_finished == self.n_reduces)
        {
            self.finish(self.failed);
            return reply(Vec::new(), invalidate, false, false, true);
        }

        let assignments = self.schedule(NodeId(node));
        reply(assignments, invalidate, false, false, false)
    }

    /// Detect assignments this worker never heard about (the reply that
    /// carried them was lost after the tracker applied the heartbeat) and
    /// requeue them. A task the tracker booked on the node that appears in
    /// none of the worker's reported running or completed work past the
    /// ack grace is unknown to the worker and will never run there.
    fn requeue_unacked(
        &mut self,
        node: u32,
        progress: &[ProgressReport],
        map_done: &[MapDone],
        map_failed: &[MapFailed],
        running_reduces: &[(u32, u32)],
        reduce_done: &[ReduceDone],
    ) {
        let round = self.round;
        for m in 0..self.n_maps {
            if self.map_holder[m] != Some(node)
                || self.map_finished[m]
                || round < self.map_assigned_round[m] + ASSIGNMENT_ACK_GRACE
            {
                continue;
            }
            let id = m as u32;
            let known = progress.iter().any(|p| p.map == id)
                || map_done.iter().any(|d| d.map == id)
                || map_failed.iter().any(|f| f.map == id);
            if !known {
                self.journal_rec(&JournalRecord::MapRequeued {
                    map: id,
                    new_attempt: self.map_attempt[m] + 1,
                });
                self.fault(FaultKind::TaskRescheduled, node, Some(id));
                self.map_attempt[m] += 1;
                self.map_holder[m] = None;
                self.map_inherited[m] = false;
                self.progress[m] = (0, vec![0; self.n_reduces]);
                self.unassigned_maps.push(m);
            }
        }
        for r in 0..self.n_reduces {
            if self.reduce_holder[r] != Some(node)
                || self.reduce_finished[r]
                || round < self.reduce_assigned_round[r] + ASSIGNMENT_ACK_GRACE
            {
                continue;
            }
            let id = r as u32;
            let known = running_reduces.iter().any(|(red, _)| *red == id)
                || reduce_done.iter().any(|d| d.reduce == id);
            if !known {
                self.journal_rec(&JournalRecord::ReduceRequeued {
                    reduce: id,
                    new_attempt: self.reduce_attempt[r] + 1,
                });
                self.fault(FaultKind::TaskRescheduled, node, Some(id));
                self.reduce_attempt[r] += 1;
                self.reduce_holder[r] = None;
                self.reduce_inherited[r] = false;
                self.unassigned_reduces.push(r);
                let nid = NodeId(node);
                if let Some(pos) = self.job_reduce_nodes.iter().position(|x| *x == nid) {
                    self.job_reduce_nodes.swap_remove(pos);
                }
            }
        }
    }

    /// A worker's partition-fetch breaker for `map`'s holder stayed open
    /// past its budget: the finished output exists but the cluster cannot
    /// read it, which is as fatal as the holder crashing. Un-finish the
    /// map under a bumped attempt and epoch, ban the unreachable holder
    /// from the re-execution, and requeue. Stale escalations (a newer
    /// attempt, or a crash invalidated the output first) are ignored — the
    /// attempt tag makes the message idempotent across duplicate senders.
    fn on_source_unreachable(&mut self, map: u32, attempt: u32) -> Msg {
        let m = map as usize;
        if self.done || m >= self.n_maps || self.map_attempt[m] != attempt || !self.map_finished[m]
        {
            return Msg::Ack;
        }
        let holder = self.map_holder[m];
        self.journal_rec(&JournalRecord::MapInvalidated {
            map,
            new_attempt: self.map_attempt[m] + 1,
            new_epoch: self.map_epoch[m] + 1,
            banned: holder,
        });
        self.map_finished[m] = false;
        self.maps_finished -= 1;
        self.map_epoch[m] += 1;
        self.map_attempt[m] += 1;
        self.map_holder[m] = None;
        self.map_banned[m] = holder;
        self.progress[m] = (0, vec![0; self.n_reduces]);
        self.unassigned_maps.push(m);
        self.fault(FaultKind::LinkPartitioned, holder.unwrap_or(u32::MAX), Some(map));
        self.fault(FaultKind::MapInvalidated, holder.unwrap_or(u32::MAX), Some(map));
        Msg::Ack
    }

    /// Fill `node`'s free slots through the placer — the same offer loop,
    /// candidate construction and slowstart gate as the engine driver.
    fn schedule(&mut self, node: NodeId) -> Vec<Assignment> {
        let jid = JobId(0);
        let mut out = Vec::new();
        let n = node.idx();
        let now = self.start.elapsed().as_secs_f64();

        loop {
            if self.nodes[n].free_map == 0 {
                break;
            }
            // Maps banned on this node (their last holder is unreachable
            // from some reducer) are withheld from its offers; with no
            // bans this is exactly the old unassigned list, so parity
            // runs see identical offers.
            let offerable: Vec<usize> = self
                .unassigned_maps
                .iter()
                .copied()
                .filter(|&m| self.map_banned[m] != Some(node.0))
                .collect();
            if offerable.is_empty() {
                break;
            }
            let cands: Vec<MapCandidate> =
                offerable.iter().map(|&m| self.map_cands[m].clone()).collect();
            let free_nodes: Vec<NodeId> = (0..self.cfg.n_nodes)
                .filter(|&i| self.alive(i) && self.nodes[i].free_map > 0)
                .map(|i| NodeId(i as u32))
                .collect();
            let decision = {
                let TrackerState { placer, rng, observer, hops, layout, .. } = self;
                let ctx =
                    MapSchedContext::new(jid, &cands, &free_nodes, hops.as_ref(), layout).at(now);
                let decision = placer.place_map(&ctx, node, rng);
                observer.observe_map(&ctx, node, decision, placer.last_detail());
                decision
            };
            match decision {
                Decision::Assign(i) => {
                    let m = offerable[i];
                    self.journal_rec(&JournalRecord::MapAssigned {
                        map: m as u32,
                        attempt: self.map_attempt[m],
                        node: node.0,
                    });
                    if self.first_assign_ms.is_none() {
                        self.first_assign_ms = Some(self.start.elapsed().as_millis() as u64);
                    }
                    let pos = self
                        .unassigned_maps
                        .iter()
                        .position(|&x| x == m)
                        .expect("offerable is a subset of unassigned");
                    self.unassigned_maps.swap_remove(pos);
                    self.nodes[n].free_map -= 1;
                    self.map_holder[m] = Some(node.0);
                    self.map_assigned_round[m] = self.round;
                    self.map_locality.record(if cands[i].is_local_to(node) {
                        LocalityClass::NodeLocal
                    } else if cands[i].is_rack_local_to(node, &self.layout) {
                        LocalityClass::RackLocal
                    } else {
                        LocalityClass::Remote
                    });
                    // Same 1-based attempt key as the simulator and the
                    // engine, so transient-failure verdicts agree.
                    self.map_starts[m] += 1;
                    let doomed = self.cfg.faults.transient_map_failure_p > 0.0
                        && self.cfg.faults.map_attempt_fails(self.cfg.seed, m, self.map_starts[m]);
                    let sources: Vec<String> = self.replicas[m]
                        .iter()
                        .filter(|r| **r != node && self.alive(r.idx()))
                        .map(|r| self.nodes[r.idx()].data_addr.clone())
                        .collect();
                    out.push(Assignment::Map {
                        map: m as u32,
                        attempt: self.map_attempt[m],
                        doomed,
                        sources,
                    });
                }
                Decision::Skip(_) => {
                    self.skipped_offers += 1;
                    break;
                }
            }
        }

        if self.maps_finished < slowstart_gate(self.cfg.slowstart, self.n_maps) {
            return out;
        }
        while self.nodes[n].free_reduce > 0 && !self.unassigned_reduces.is_empty() {
            let cands: Vec<ReduceCandidate> = self
                .unassigned_reduces
                .iter()
                .map(|&f| ReduceCandidate {
                    task: ReduceTaskId { job: jid, index: f as u32 },
                    sources: self.shuffle_sources(f),
                })
                .collect();
            let free_nodes: Vec<NodeId> = (0..self.cfg.n_nodes)
                .filter(|&i| self.alive(i) && self.nodes[i].free_reduce > 0)
                .map(|i| NodeId(i as u32))
                .collect();
            let read_total: u64 = self.progress.iter().map(|p| p.0).sum();
            let bytes_total: u64 = self.blocks.iter().map(|b| b.len() as u64).sum();
            let launched = self.n_reduces - self.unassigned_reduces.len();
            let (maps_finished, n_maps, n_reduces) = (self.maps_finished, self.n_maps, self.n_reduces);
            let decision = {
                let TrackerState { placer, rng, observer, hops, layout, job_reduce_nodes, .. } =
                    self;
                let ctx = ReduceSchedContext::new(jid, &cands, &free_nodes, hops.as_ref(), layout)
                    .running_on(job_reduce_nodes)
                    .map_phase(read_total as f64 / bytes_total.max(1) as f64, maps_finished, n_maps)
                    .reduce_phase(launched, n_reduces)
                    .at(now);
                let decision = placer.place_reduce(&ctx, node, rng);
                observer.observe_reduce(&ctx, node, decision, placer.last_detail());
                decision
            };
            match decision {
                Decision::Assign(i) => {
                    let red = self.unassigned_reduces[i];
                    self.journal_rec(&JournalRecord::ReduceAssigned {
                        reduce: red as u32,
                        attempt: self.reduce_attempt[red],
                        node: node.0,
                    });
                    if self.first_assign_ms.is_none() {
                        self.first_assign_ms = Some(self.start.elapsed().as_millis() as u64);
                    }
                    let red = self.unassigned_reduces.swap_remove(i);
                    self.nodes[n].free_reduce -= 1;
                    self.reduce_holder[red] = Some(node.0);
                    self.reduce_assigned_round[red] = self.round;
                    self.job_reduce_nodes.push(node);
                    out.push(Assignment::Reduce {
                        reduce: red as u32,
                        attempt: self.reduce_attempt[red],
                        n_maps: self.n_maps as u32,
                    });
                }
                Decision::Skip(_) => {
                    self.skipped_offers += 1;
                    break;
                }
            }
        }
        out
    }

    /// Live shuffle sources for one reduce partition, from heartbeat
    /// progress snapshots — the cluster analogue of the engine's
    /// gauge-backed version.
    fn shuffle_sources(&self, partition: usize) -> Vec<ShuffleSource> {
        (0..self.n_maps)
            .filter_map(|m| {
                self.map_holder[m].map(|h| ShuffleSource {
                    node: NodeId(h),
                    current_bytes: self.progress[m].1.get(partition).copied().unwrap_or(0) as f64,
                    input_read: self.progress[m].0,
                    input_total: self.blocks[m].len() as u64,
                })
            })
            .collect()
    }

    fn on_where_is(&self, map: u32) -> Msg {
        let m = map as usize;
        if m < self.n_maps && self.map_finished[m] {
            if let Some(h) = self.map_holder[m] {
                if self.alive(h as usize) {
                    return Msg::MapAt {
                        node: h,
                        addr: self.nodes[h as usize].data_addr.clone(),
                        attempt: self.map_attempt[m],
                    };
                }
            }
        }
        Msg::NotReady
    }

    /// An orphaned worker presenting its local truth to a (possibly fresh)
    /// tracker incarnation. The tracker reconciles the journal's book
    /// against what the worker actually holds, exactly once per item:
    /// confirmed inherited attempts are adopted (`attempt_reconciled`),
    /// journaled outputs the worker no longer has are invalidated into a
    /// new crash epoch, booked-running work the worker lost is requeued,
    /// and stale bytes on the worker are sent back in `invalidate`.
    /// Idempotent — a duplicate `Reattach` (retried call, lost ack) finds
    /// nothing left to reconcile.
    fn on_reattach(
        &mut self,
        node: u32,
        epoch: u32,
        data_addr: String,
        finished_maps: Vec<(u32, u32)>,
        running_maps: Vec<(u32, u32)>,
        running_reduces: Vec<(u32, u32)>,
    ) -> Msg {
        let n = node as usize;
        let dead = Msg::ReattachAck { invalidate: Vec::new(), dead: true, shutdown: false };
        if n >= self.cfg.n_nodes {
            return dead;
        }
        if self.done {
            return Msg::ReattachAck { invalidate: Vec::new(), dead: false, shutdown: true };
        }
        if self.nodes[n].epoch != epoch
            || self.nodes[n].down_depth > 0
            || !(self.nodes[n].awaiting_reattach || self.nodes[n].registered)
        {
            // Unknown node, stale epoch, or one already declared dead and
            // invalidated: only a wipe + fresh registration realigns us.
            return dead;
        }
        let was_awaiting = self.nodes[n].awaiting_reattach;
        self.nodes[n].awaiting_reattach = false;
        self.nodes[n].registered = true;
        self.ever_registered = true;
        self.nodes[n].data_addr = data_addr;
        self.nodes[n].last_heard = self.round;
        // Slots sync on the next heartbeat; claim nothing until then.
        self.nodes[n].free_map = 0;
        self.nodes[n].free_reduce = 0;
        if was_awaiting {
            self.fault(FaultKind::WorkerReattached, node, None);
        }

        for m in 0..self.n_maps {
            if self.map_holder[m] != Some(node) {
                continue;
            }
            let attempt = self.map_attempt[m];
            let holds = |list: &[(u32, u32)]| list.iter().any(|&(i, a)| i == m as u32 && a == attempt);
            if self.map_finished[m] {
                if holds(&finished_maps) {
                    if self.map_inherited[m] {
                        self.journal_rec(&JournalRecord::AttemptReconciled {
                            kind: TaskKind::Map,
                            index: m as u32,
                            attempt,
                            node,
                        });
                        self.map_inherited[m] = false;
                        self.fault(FaultKind::AttemptReconciled, node, Some(m as u32));
                    }
                } else {
                    // The journal says this output lives here; the worker
                    // says otherwise. The worker is the ground truth for
                    // its own disk: invalidate into a new epoch.
                    self.journal_rec(&JournalRecord::MapInvalidated {
                        map: m as u32,
                        new_attempt: attempt + 1,
                        new_epoch: self.map_epoch[m] + 1,
                        banned: None,
                    });
                    self.map_finished[m] = false;
                    self.maps_finished -= 1;
                    self.map_epoch[m] += 1;
                    self.map_attempt[m] += 1;
                    self.map_holder[m] = None;
                    self.map_inherited[m] = false;
                    self.progress[m] = (0, vec![0; self.n_reduces]);
                    self.unassigned_maps.push(m);
                    self.fault(FaultKind::MapInvalidated, node, Some(m as u32));
                }
            } else if holds(&running_maps) || holds(&finished_maps) {
                // Still live there (or finished during the outage — the
                // completion arrives with the next heartbeat).
                self.map_assigned_round[m] = self.round;
                if self.map_inherited[m] {
                    self.journal_rec(&JournalRecord::AttemptReconciled {
                        kind: TaskKind::Map,
                        index: m as u32,
                        attempt,
                        node,
                    });
                    self.map_inherited[m] = false;
                    self.fault(FaultKind::AttemptReconciled, node, Some(m as u32));
                }
            } else {
                self.journal_rec(&JournalRecord::MapRequeued {
                    map: m as u32,
                    new_attempt: attempt + 1,
                });
                self.fault(FaultKind::TaskRescheduled, node, Some(m as u32));
                self.map_attempt[m] += 1;
                self.map_holder[m] = None;
                self.map_inherited[m] = false;
                self.progress[m] = (0, vec![0; self.n_reduces]);
                self.unassigned_maps.push(m);
            }
        }

        for r in 0..self.n_reduces {
            if self.reduce_holder[r] != Some(node) || self.reduce_finished[r] {
                continue;
            }
            let attempt = self.reduce_attempt[r];
            if running_reduces.iter().any(|&(i, a)| i == r as u32 && a == attempt) {
                self.reduce_assigned_round[r] = self.round;
                if self.reduce_inherited[r] {
                    self.journal_rec(&JournalRecord::AttemptReconciled {
                        kind: TaskKind::Reduce,
                        index: r as u32,
                        attempt,
                        node,
                    });
                    self.reduce_inherited[r] = false;
                    self.fault(FaultKind::AttemptReconciled, node, Some(r as u32));
                }
            } else {
                self.journal_rec(&JournalRecord::ReduceRequeued {
                    reduce: r as u32,
                    new_attempt: attempt + 1,
                });
                self.fault(FaultKind::TaskRescheduled, node, Some(r as u32));
                self.reduce_attempt[r] += 1;
                self.reduce_holder[r] = None;
                self.reduce_inherited[r] = false;
                self.unassigned_reduces.push(r);
                let nid = NodeId(node);
                if let Some(pos) = self.job_reduce_nodes.iter().position(|x| *x == nid) {
                    self.job_reduce_nodes.swap_remove(pos);
                }
            }
        }

        // Bytes the worker holds for attempts the book no longer wants.
        let invalidate: Vec<u32> = finished_maps
            .iter()
            .filter(|&&(i, a)| {
                let m = i as usize;
                m >= self.n_maps || self.map_holder[m] != Some(node) || self.map_attempt[m] != a
            })
            .map(|&(i, _)| i)
            .collect();
        Msg::ReattachAck { invalidate, dead: false, shutdown: false }
    }

    /// Overlay journal-replayed state onto the freshly-derived book — the
    /// recovery half of crash tolerance, run once before the server starts
    /// answering. Placement inputs (splits, replicas, candidates) are
    /// re-derived from `(seed, cfg, input)`; everything scheduling
    /// *decided* comes back from the journal.
    fn apply_recovery(&mut self, st: &JournalState) {
        self.crash_epoch = st.crash_epochs + 1;
        for (m, book) in st.maps.iter().enumerate() {
            self.map_attempt[m] = book.attempt;
            self.map_epoch[m] = book.epoch;
            self.map_banned[m] = book.banned;
            // Starts are not journaled; one start per attempt tag keeps the
            // transient-failure budget monotone across incarnations.
            self.map_starts[m] = book.attempt;
            if book.finished {
                self.map_finished[m] = true;
                self.maps_finished += 1;
                self.map_holder[m] = book.holder;
                let mut parts = book.part_bytes.clone();
                parts.resize(self.n_reduces, 0);
                self.progress[m] = (book.d_read, parts);
                self.unassigned_maps.retain(|&x| x != m);
            } else if book.running {
                self.map_holder[m] = book.holder;
                self.map_inherited[m] = true;
                self.unassigned_maps.retain(|&x| x != m);
            }
        }
        for (r, book) in st.reduces.iter().enumerate() {
            self.reduce_attempt[r] = book.attempt;
            if book.finished {
                self.reduce_finished[r] = true;
                self.reduces_finished += 1;
                self.final_output[r] = book.output.clone();
                self.unassigned_reduces.retain(|&x| x != r);
            } else if book.running {
                self.reduce_holder[r] = book.holder;
                self.reduce_inherited[r] = true;
                self.unassigned_reduces.retain(|&x| x != r);
                if let Some(h) = book.holder {
                    self.job_reduce_nodes.push(NodeId(h));
                }
            }
        }
        for (&node, &epoch) in &st.node_epochs {
            let n = node as usize;
            if n < self.nodes.len() {
                self.nodes[n].epoch = epoch;
                self.nodes[n].awaiting_reattach = true;
            }
        }
        self.completions = st.completions.clone();
        self.ever_registered = !st.node_epochs.is_empty();
        let (rm, rr, inherited, reexec) = st.recovery_tallies();
        self.fault(FaultKind::TrackerRestart, 0, None);
        self.fault(FaultKind::JournalReplayed, 0, Some(st.records_applied as u32));
        self.observer.absorb_recovery(rm, rr, inherited, reexec);
        if let Some(failed) = st.finished {
            // The verdict (and all reduce output) is already in the
            // journal: nothing left to run.
            self.failed = failed;
            self.done = true;
        }
    }
}

/// A running JobTracker: RPC server + tick thread around shared state.
/// Dropping without [`wait`](Self::wait) aborts the job and tears the
/// threads down.
pub struct JobTracker {
    server: Option<RpcServer>,
    state: Arc<Mutex<TrackerState>>,
    tick: Option<JoinHandle<()>>,
}

impl JobTracker {
    /// Bind `listen` (port 0 for an ephemeral port), split `input` into
    /// blocks, place replicas with the same seeded sequence as the engine,
    /// and start serving registrations. The job begins as workers join.
    pub fn start(
        listen: &str,
        cfg: ClusterConfig,
        spec: JobSpec,
        n_reduces: usize,
        input: &str,
        placer: Box<dyn TaskPlacer>,
        observer: DecisionObserver,
    ) -> io::Result<JobTracker> {
        assert!(n_reduces > 0, "jobs need at least one reduce partition");
        cfg.faults.validate(cfg.n_nodes).expect("invalid fault plan");
        // Journal triage, before any state exists: a non-empty journal at
        // `cfg.journal` means this process is a recovery incarnation.
        let mut recovered: Option<JournalState> = None;
        let mut journal: Option<Journal> = None;
        if let Some(path) = cfg.journal.clone() {
            let existing =
                std::fs::metadata(&path).map(|meta| meta.len() > 0).unwrap_or(false);
            if existing {
                let records = read_journal(&path)?;
                let st = JournalState::from_records(&records)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if st.seed != cfg.seed || st.spec != spec.to_wire() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "journal belongs to a different job: seed={} spec={} vs cfg seed={} \
                             spec={}",
                            st.seed,
                            st.spec,
                            cfg.seed,
                            spec.to_wire()
                        ),
                    ));
                }
                let mut j = Journal::open_append(&path, cfg.journal_fsync)?;
                j.append(&JournalRecord::TrackerStarted { crash_epoch: st.crash_epochs + 1 })?;
                journal = Some(j);
                recovered = Some(st);
            } else {
                journal = Some(Journal::create(&path, cfg.journal_fsync)?);
            }
        }
        let topo = Topology::single_rack(cfg.n_nodes, 1e9);
        let hops = Arc::new(DistanceMatrix::hops(&topo));
        let layout = topo.layout().clone();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let blocks = split_blocks(input, cfg.block_bytes);
        let n_maps = blocks.len();
        let mut store = BlockStore::new();
        let mut replicas = Vec::with_capacity(n_maps);
        for b in 0..n_maps {
            let writer = pnats_dfs::placement::random_writer(&layout, &mut rng);
            let reps = RackAware.place(writer, cfg.replication, &layout, &mut rng);
            store.set_replicas(BlockId(b as u32), reps.clone());
            replicas.push(reps);
        }
        let jid = JobId(0);
        let map_cands: Vec<MapCandidate> = (0..n_maps)
            .map(|j| MapCandidate {
                task: MapTaskId { job: jid, index: j as u32 },
                block_size: blocks[j].len() as u64,
                replicas: replicas[j].clone(),
            })
            .collect();
        let mut fault_events: Vec<(u64, u8, usize)> = Vec::new();
        for c in &cfg.faults.crashes {
            fault_events.push((c.at as u64, 0, c.node));
            if let Some(r) = c.recover_at {
                fault_events.push((r as u64, 1, c.node));
            }
        }
        fault_events.sort_unstable();
        if recovered.is_none() {
            if let Some(j) = journal.as_mut() {
                j.append(&JournalRecord::JobSubmitted {
                    seed: cfg.seed,
                    n_maps: n_maps as u32,
                    n_reduces: n_reduces as u32,
                    spec: spec.to_wire(),
                })?;
            }
        }
        let heartbeat = cfg.heartbeat;
        let n_nodes = cfg.n_nodes;
        let mut state = TrackerState {
            spec,
            replicas,
            map_cands,
            n_maps,
            n_reduces,
            hops,
            layout,
            placer,
            observer,
            rng,
            start: Instant::now(),
            round: 0,
            nodes: (0..n_nodes)
                .map(|_| NodeState {
                    registered: false,
                    epoch: 0,
                    data_addr: String::new(),
                    last_heard: 0,
                    down_depth: 0,
                    free_map: 0,
                    free_reduce: 0,
                    awaiting_reattach: false,
                })
                .collect(),
            map_holder: vec![None; n_maps],
            map_attempt: vec![0; n_maps],
            map_starts: vec![0; n_maps],
            map_finished: vec![false; n_maps],
            map_assigned_round: vec![0; n_maps],
            map_epoch: vec![0; n_maps],
            map_banned: vec![None; n_maps],
            progress: (0..n_maps).map(|_| (0, vec![0; n_reduces])).collect(),
            maps_finished: 0,
            reduce_holder: vec![None; n_reduces],
            reduce_attempt: vec![0; n_reduces],
            reduce_finished: vec![false; n_reduces],
            reduce_assigned_round: vec![0; n_reduces],
            reduces_finished: 0,
            job_reduce_nodes: Vec::new(),
            final_output: vec![Vec::new(); n_reduces],
            unassigned_maps: (0..n_maps).collect(),
            unassigned_reduces: (0..n_reduces).collect(),
            skipped_offers: 0,
            map_locality: LocalityCounter::default(),
            reduce_locality: LocalityCounter::default(),
            fault_events,
            next_fault: 0,
            completions: Vec::new(),
            journal,
            crash_epoch: 0,
            map_inherited: vec![false; n_maps],
            reduce_inherited: vec![false; n_reduces],
            first_assign_ms: None,
            ever_registered: false,
            degraded: false,
            failed: false,
            done: false,
            blocks,
            cfg,
        };
        if let Some(st) = &recovered {
            if st.n_maps as usize != n_maps || st.n_reduces as usize != n_reduces {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "journal task shape {}x{} disagrees with derived {}x{}",
                        st.n_maps, st.n_reduces, n_maps, n_reduces
                    ),
                ));
            }
            state.apply_recovery(st);
        }
        let state = Arc::new(Mutex::new(state));

        let handler_state = state.clone();
        let handler: pnats_rpc::Handler = Arc::new(move |msg| {
            let mut s = handler_state.lock().unwrap();
            match msg {
                Msg::Register { node, epoch, data_addr } => s.on_register(node, epoch, data_addr),
                Msg::Heartbeat {
                    node,
                    epoch,
                    free_map_slots,
                    free_reduce_slots,
                    progress,
                    map_done,
                    map_failed,
                    reduce_done,
                    running_reduces,
                    rpc_retries,
                    breaker_trips,
                    breaker_closes,
                    alt_fetches,
                    corrupt_frames,
                } => s.on_heartbeat(
                    node,
                    epoch,
                    free_map_slots,
                    free_reduce_slots,
                    progress,
                    map_done,
                    map_failed,
                    reduce_done,
                    running_reduces,
                    rpc_retries,
                    breaker_trips,
                    breaker_closes,
                    alt_fetches,
                    corrupt_frames,
                ),
                Msg::SourceUnreachable { map, attempt } => s.on_source_unreachable(map, attempt),
                Msg::Reattach {
                    node,
                    epoch,
                    data_addr,
                    finished_maps,
                    running_maps,
                    running_reduces,
                } => s.on_reattach(
                    node,
                    epoch,
                    data_addr,
                    finished_maps,
                    running_maps,
                    running_reduces,
                ),
                Msg::WhereIs { map } => s.on_where_is(map),
                Msg::FetchBlock { block } => match s.blocks.get(block as usize) {
                    Some(b) => Msg::BlockData { block, data: b.clone() },
                    None => Msg::NotHere,
                },
                Msg::Shutdown => {
                    // External stop: whatever is incomplete stays incomplete.
                    let failed =
                        !(s.maps_finished == s.n_maps && s.reduces_finished == s.n_reduces);
                    s.finish(failed);
                    Msg::Ack
                }
                _ => Msg::Ack,
            }
        });
        let server = RpcServer::bind(listen, handler, Duration::from_millis(50))?;
        let tick_state = state.clone();
        let tick = std::thread::spawn(move || loop {
            std::thread::sleep(heartbeat);
            let mut s = tick_state.lock().unwrap();
            if s.done {
                break;
            }
            s.tick();
        });
        Ok(JobTracker { server: Some(server), state, tick: Some(tick) })
    }

    /// The tracker's bound address.
    pub fn addr(&self) -> &str {
        self.server.as_ref().expect("server runs until wait()").addr()
    }

    /// Block until the job completes (or the config's `max_wall` fires, in
    /// which case the report is marked failed), give departing workers a
    /// grace window of shutdown replies, then tear down and assemble the
    /// report.
    pub fn wait(mut self) -> ClusterReport {
        let (deadline, heartbeat) = {
            let s = self.state.lock().unwrap();
            (s.start + s.cfg.max_wall, s.cfg.heartbeat)
        };
        loop {
            std::thread::sleep(heartbeat);
            let mut s = self.state.lock().unwrap();
            if s.done {
                break;
            }
            if Instant::now() > deadline {
                s.finish(true);
                break;
            }
        }
        // Grace: let workers hear `shutdown` in their next heartbeat reply.
        std::thread::sleep(heartbeat * 20);
        self.teardown();
        let mut s = self.state.lock().unwrap();
        if let Some(stats) = s.placer.stats() {
            let stats = stats.clone();
            s.observer.absorb_placer(&stats);
        }
        s.observer.flush();
        let trace_jsonl = s.observer.drain_jsonl();
        let output: Vec<(String, String)> =
            std::mem::take(&mut s.final_output).into_iter().flatten().collect();
        ClusterReport {
            output,
            map_locality: s.map_locality,
            reduce_locality: s.reduce_locality,
            wall: s.start.elapsed(),
            n_maps: s.n_maps,
            n_reduces: s.n_reduces,
            skipped_offers: s.skipped_offers,
            counters: s.observer.counters().clone(),
            trace_jsonl,
            completions: std::mem::take(&mut s.completions),
            first_assign_ms: s.first_assign_ms,
            failed: s.failed,
        }
    }

    /// Die the way a SIGKILL would, minus the process exit: stop the RPC
    /// server *first* (no worker hears a polite `shutdown`), abandon the
    /// tick thread, journal **nothing**. The journal on disk ends exactly
    /// where the crash landed; workers are left orphaned mid-heartbeat.
    /// Test hook for in-process crash/recovery runs — OS-process harnesses
    /// use a real SIGKILL instead.
    pub fn crash(mut self) {
        if let Some(mut server) = self.server.take() {
            server.stop();
        }
        self.state.lock().unwrap().done = true; // stops the tick thread
        if let Some(t) = self.tick.take() {
            let _ = t.join();
        }
    }

    fn teardown(&mut self) {
        if let Some(mut server) = self.server.take() {
            server.stop();
        }
        if let Some(t) = self.tick.take() {
            let _ = t.join();
        }
    }
}

impl Drop for JobTracker {
    fn drop(&mut self) {
        self.state.lock().unwrap().done = true; // stops the tick thread
        self.teardown();
    }
}
