//! The TaskTracker: one worker process/thread owning a dfs shard, a data
//! server for peers, and map/reduce slots. It heartbeats the tracker every
//! `T` ms over TCP, executes assignments on task threads via the engine's
//! shared execution primitives ([`execute_map`]/[`execute_reduce`] — so
//! output bytes are identical to the engine's), and serves its finished
//! map partitions to reducers.
//!
//! Crash-epoch semantics: when the tracker answers a heartbeat with
//! `dead`, the worker wipes all held state (its map outputs are gone from
//! the cluster's perspective), bumps its epoch, and re-registers from
//! scratch. Task threads from the wiped epoch keep running — threads
//! cannot be killed — but their channel went away with the epoch, so
//! their completions evaporate instead of corrupting the next epoch.

use crate::jobspec::JobSpec;
use pnats_core::partition::Partitioner;
use pnats_engine::exec::{execute_map, execute_reduce, MapProgressGauges};
use pnats_engine::EngineJob;
use pnats_rpc::{
    Assignment, BreakerPolicy, ChaosNet, CircuitBreaker, MapDone, MapFailed, Msg, ProgressReport,
    ReduceDone, RetryPolicy, RpcClient, RpcError, RpcServer,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a worker needs to join a cluster.
#[derive(Clone)]
pub struct WorkerConfig {
    /// This worker's node id (`0..n_nodes` of the tracker's config).
    pub node: u32,
    /// The tracker's RPC address.
    pub tracker_addr: String,
    /// Map slots to offer.
    pub map_slots: u32,
    /// Reduce slots to offer.
    pub reduce_slots: u32,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Read/write deadline on every TCP stream.
    pub io_timeout: Duration,
    /// Retry budget + backoff for tracker and peer calls.
    pub retry: RetryPolicy,
    /// Per-peer circuit breaker policy for partition fetches.
    pub breaker: BreakerPolicy,
    /// When set, the worker routes its *advertised* data plane through a
    /// chaos proxy on this net (link `data:w<node>`): peers reach its map
    /// outputs only through whatever faults the plan injects, while local
    /// reads bypass the network exactly as a real co-located read would.
    pub chaos: Option<Arc<ChaosNet>>,
    /// How long to keep re-dialing a silent tracker (full-jitter backoff,
    /// `Reattach` probes) before giving up and exiting. During the hold
    /// the worker stays *orphaned*, not dead: tasks keep running, outputs
    /// stay served, pending statuses stay pending.
    pub orphan_grace: Duration,
}

impl std::fmt::Debug for WorkerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerConfig")
            .field("node", &self.node)
            .field("tracker_addr", &self.tracker_addr)
            .field("map_slots", &self.map_slots)
            .field("reduce_slots", &self.reduce_slots)
            .field("heartbeat", &self.heartbeat)
            .field("io_timeout", &self.io_timeout)
            .field("retry", &self.retry)
            .field("breaker", &self.breaker)
            .field("chaos", &self.chaos.as_ref().map(|n| n.plan().seed))
            .field("orphan_grace", &self.orphan_grace)
            .finish()
    }
}

/// Breaker/alt-fetch tallies shared between reduce task threads and the
/// heartbeat loop, which reports them to the tracker as deltas (the same
/// scheme as `rpc_retries`).
#[derive(Default)]
struct NetHealth {
    breaker_trips: AtomicU64,
    breaker_closes: AtomicU64,
    alt_fetches: AtomicU64,
}

/// One finished map output: the attempt that produced it plus one pair
/// list per reduce partition.
type MapOutput = (u32, Vec<Vec<(String, String)>>);

/// Shard + finished map outputs, shared between the heartbeat loop, task
/// threads, and the data server.
#[derive(Default)]
struct DataState {
    /// Input blocks this worker holds replicas of.
    blocks: HashMap<u32, String>,
    /// Finished map outputs keyed by map index.
    outputs: HashMap<u32, MapOutput>,
}

enum TaskEvent {
    MapDone(MapDone),
    MapFailed(MapFailed),
    ReduceDone(ReduceDone),
}

enum EpochEnd {
    /// The tracker said shutdown (or went away): exit the worker.
    Shutdown,
    /// The tracker declared us dead: wipe and re-register under a new epoch.
    Wiped,
}

/// Run a worker until the tracker shuts it down. Each `dead` verdict from
/// the tracker starts a fresh epoch (wiped state, re-registration).
pub fn run_worker(cfg: WorkerConfig) -> Result<(), RpcError> {
    let mut epoch = 0u32;
    loop {
        match run_epoch(&cfg, epoch)? {
            EpochEnd::Shutdown => return Ok(()),
            EpochEnd::Wiped => epoch += 1,
        }
    }
}

fn run_epoch(cfg: &WorkerConfig, epoch: u32) -> Result<EpochEnd, RpcError> {
    let data: Arc<Mutex<DataState>> = Arc::new(Mutex::new(DataState::default()));

    // Data plane: serve blocks and finished partitions to peers.
    let data_handler: pnats_rpc::Handler = {
        let data = data.clone();
        Arc::new(move |msg| {
            let d = data.lock().unwrap();
            match msg {
                Msg::FetchBlock { block } => match d.blocks.get(&block) {
                    Some(b) => Msg::BlockData { block, data: b.clone() },
                    None => Msg::NotHere,
                },
                Msg::FetchPartition { map, attempt, reduce } => match d.outputs.get(&map) {
                    Some((a, parts)) if *a == attempt => match parts.get(reduce as usize) {
                        Some(p) => Msg::PartitionData { pairs: p.clone() },
                        None => Msg::NotHere,
                    },
                    _ => Msg::NotHere,
                },
                _ => Msg::NotHere,
            }
        })
    };
    let _data_server = RpcServer::bind("127.0.0.1:0", data_handler, Duration::from_millis(50))
        .map_err(|e| RpcError::Frame(e.into()))?;
    // Under chaos, peers get the proxy's address; the real server stays
    // reachable only to ourselves (the local-read shortcut).
    let _data_proxy = match &cfg.chaos {
        Some(net) => Some(
            net.proxy(&format!("data:w{}", cfg.node), _data_server.addr())
                .map_err(|e| RpcError::Frame(e.into()))?,
        ),
        None => None,
    };
    let data_addr = _data_proxy
        .as_ref()
        .map(|p| p.addr().to_string())
        .unwrap_or_else(|| _data_server.addr().to_string());

    // Control plane: register (politely waiting out scripted-down windows).
    let mut control = RpcClient::connect(&cfg.tracker_addr, cfg.retry.clone(), cfg.io_timeout)?;
    let control_retries = control.retry_counter();
    let control_corrupt = control.corrupt_counter();
    let ack = loop {
        match control.call(&Msg::Register {
            node: cfg.node,
            epoch,
            data_addr: data_addr.clone(),
        })? {
            ack @ Msg::RegisterAck { .. } => break ack,
            Msg::Shutdown => return Ok(EpochEnd::Shutdown),
            _ => std::thread::sleep(cfg.heartbeat), // NotReady: down window
        }
    };
    let Msg::RegisterAck { job, n_reduces, partitioner, cpu_us_per_kib, blocks, .. } = ack else {
        unreachable!("loop breaks on RegisterAck only")
    };
    let n_reduces = n_reduces as usize;
    let partitioner = Partitioner::from_tag(partitioner).unwrap_or(Partitioner::Hash);
    let spec = match JobSpec::from_wire(&job) {
        Some(s) => s,
        None => return Ok(EpochEnd::Shutdown), // tracker speaks a job we don't know
    };
    let engine_job = Arc::new(spec.job(n_reduces));
    data.lock().unwrap().blocks = blocks.into_iter().collect();

    // Shared resolver client for task threads (WhereIs + block fallback).
    let resolver = Arc::new(Mutex::new(RpcClient::connect(
        &cfg.tracker_addr,
        cfg.retry.clone(),
        cfg.io_timeout,
    )?));
    let resolver_retries = resolver.lock().unwrap().retry_counter();
    let resolver_corrupt = resolver.lock().unwrap().corrupt_counter();

    let cancel = Arc::new(AtomicBool::new(false));
    let health = Arc::new(NetHealth::default());
    let (tx, rx) = channel::<TaskEvent>();
    let mut free_map = cfg.map_slots;
    let mut free_reduce = cfg.reduce_slots;
    let mut running_maps: HashMap<u32, (u32, Arc<MapProgressGauges>)> = HashMap::new();
    let mut running_reduces: Vec<(u32, u32)> = Vec::new();
    let mut pend_done: Vec<MapDone> = Vec::new();
    let mut pend_failed: Vec<MapFailed> = Vec::new();
    let mut pend_reduce: Vec<ReduceDone> = Vec::new();
    let mut reported_retries = 0u64;
    let mut reported_health = (0u64, 0u64, 0u64, 0u64);

    loop {
        while let Ok(ev) = rx.try_recv() {
            match ev {
                TaskEvent::MapDone(d) => {
                    running_maps.remove(&d.map);
                    free_map += 1;
                    pend_done.push(d);
                }
                TaskEvent::MapFailed(f) => {
                    running_maps.remove(&f.map);
                    free_map += 1;
                    pend_failed.push(f);
                }
                TaskEvent::ReduceDone(r) => {
                    running_reduces.retain(|(id, _)| *id != r.reduce);
                    free_reduce += 1;
                    pend_reduce.push(r);
                }
            }
        }
        let progress: Vec<ProgressReport> = running_maps
            .iter()
            .map(|(m, (a, g))| ProgressReport {
                map: *m,
                attempt: *a,
                d_read: g.d_read.load(Ordering::Relaxed),
                part_bytes: g.part_bytes.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            })
            .collect();
        let total_retries =
            control_retries.load(Ordering::Relaxed) + resolver_retries.load(Ordering::Relaxed);
        let total_health = (
            health.breaker_trips.load(Ordering::Relaxed),
            health.breaker_closes.load(Ordering::Relaxed),
            health.alt_fetches.load(Ordering::Relaxed),
            control_corrupt.load(Ordering::Relaxed) + resolver_corrupt.load(Ordering::Relaxed),
        );
        let hb = Msg::Heartbeat {
            node: cfg.node,
            epoch,
            free_map_slots: free_map,
            free_reduce_slots: free_reduce,
            progress,
            map_done: pend_done.clone(),
            map_failed: pend_failed.clone(),
            reduce_done: pend_reduce.clone(),
            running_reduces: running_reduces.clone(),
            rpc_retries: total_retries - reported_retries,
            breaker_trips: total_health.0 - reported_health.0,
            breaker_closes: total_health.1 - reported_health.1,
            alt_fetches: total_health.2 - reported_health.2,
            corrupt_frames: total_health.3 - reported_health.3,
        };
        let reply = match control.call(&hb) {
            Ok(r) => r,
            // Retry budget exhausted: the tracker went silent mid-job.
            // Don't die — hold everything and probe for a (possibly
            // recovered) incarnation on the same address.
            Err(_) => match reattach_until_adopted(
                cfg,
                epoch,
                &mut control,
                &data,
                &data_addr,
                &running_maps,
                &running_reduces,
                &pend_reduce,
            ) {
                Some(ack) => ack,
                None => {
                    // Orphan grace exhausted: the tracker is gone for good,
                    // and with it the job.
                    cancel.store(true, Ordering::SeqCst);
                    return Ok(EpochEnd::Shutdown);
                }
            },
        };
        // A live tracker that restarted answers heartbeats with `reattach`
        // instead of assignments: switch to the same probe loop, keeping
        // all local state.
        let reply = match reply {
            Msg::HeartbeatReply { reattach: true, .. } => match reattach_until_adopted(
                cfg,
                epoch,
                &mut control,
                &data,
                &data_addr,
                &running_maps,
                &running_reduces,
                &pend_reduce,
            ) {
                Some(ack) => ack,
                None => {
                    cancel.store(true, Ordering::SeqCst);
                    return Ok(EpochEnd::Shutdown);
                }
            },
            other => other,
        };
        match reply {
            Msg::ReattachAck { invalidate, dead, shutdown } => {
                if dead {
                    cancel.store(true, Ordering::SeqCst);
                    return Ok(EpochEnd::Wiped);
                }
                if shutdown {
                    cancel.store(true, Ordering::SeqCst);
                    return Ok(EpochEnd::Shutdown);
                }
                // Adopted: drop outputs the new incarnation disowned and
                // resume heartbeating — pending statuses stay pending, so
                // completions from the outage land with the next beat.
                let mut d = data.lock().unwrap();
                for m in &invalidate {
                    d.outputs.remove(m);
                }
            }
            Msg::HeartbeatReply { assignments, invalidate, ignored, dead, shutdown, .. } => {
                if dead {
                    cancel.store(true, Ordering::SeqCst);
                    return Ok(EpochEnd::Wiped);
                }
                if !ignored {
                    pend_done.clear();
                    pend_failed.clear();
                    pend_reduce.clear();
                    reported_retries = total_retries;
                    reported_health = total_health;
                    let mut d = data.lock().unwrap();
                    for m in &invalidate {
                        d.outputs.remove(m);
                    }
                }
                if shutdown {
                    cancel.store(true, Ordering::SeqCst);
                    return Ok(EpochEnd::Shutdown);
                }
                for a in assignments {
                    match a {
                        Assignment::Map { map, attempt, doomed, sources } => {
                            free_map = free_map.saturating_sub(1);
                            let gauges = Arc::new(MapProgressGauges::new(n_reduces));
                            running_maps.insert(map, (attempt, gauges.clone()));
                            spawn_map_task(MapTask {
                                map,
                                attempt,
                                doomed,
                                sources,
                                gauges,
                                data: data.clone(),
                                resolver: resolver.clone(),
                                job: engine_job.clone(),
                                partitioner,
                                cpu_us_per_kib,
                                cancel: cancel.clone(),
                                tx: tx.clone(),
                                io_timeout: cfg.io_timeout,
                            });
                        }
                        Assignment::Reduce { reduce, attempt, n_maps } => {
                            free_reduce = free_reduce.saturating_sub(1);
                            running_reduces.push((reduce, attempt));
                            spawn_reduce_task(ReduceTask {
                                reduce,
                                attempt,
                                n_maps,
                                data: data.clone(),
                                resolver: resolver.clone(),
                                my_addr: data_addr.clone(),
                                job: engine_job.clone(),
                                cancel: cancel.clone(),
                                tx: tx.clone(),
                                heartbeat: cfg.heartbeat,
                                io_timeout: cfg.io_timeout,
                                retry: cfg.retry.clone(),
                                breaker: cfg.breaker,
                                health: health.clone(),
                            });
                        }
                    }
                }
            }
            _ => {} // protocol noise; try again next round
        }
        std::thread::sleep(cfg.heartbeat);
    }
}

/// The orphaned-worker hold loop: probe the tracker address with
/// [`Msg::Reattach`] under seeded full-jitter backoff until some tracker
/// incarnation adopts us (`ReattachAck`), or `cfg.orphan_grace` runs out
/// (`None`). Local state is untouched throughout — task threads keep
/// running, finished outputs stay served to peers, pending statuses stay
/// pending.
#[allow(clippy::too_many_arguments)]
fn reattach_until_adopted(
    cfg: &WorkerConfig,
    epoch: u32,
    control: &mut RpcClient,
    data: &Arc<Mutex<DataState>>,
    data_addr: &str,
    running_maps: &HashMap<u32, (u32, Arc<MapProgressGauges>)>,
    running_reduces: &[(u32, u32)],
    pend_reduce: &[ReduceDone],
) -> Option<Msg> {
    let deadline = Instant::now() + cfg.orphan_grace;
    // Seeded per node so a fleet of orphans fans its probes out instead of
    // stampeding the recovering tracker in lockstep.
    let mut jitter = cfg.retry.seed ^ ((u64::from(cfg.node) + 1) << 32);
    let mut attempt = 0u32;
    loop {
        let finished_maps: Vec<(u32, u32)> =
            data.lock().unwrap().outputs.iter().map(|(m, (a, _))| (*m, *a)).collect();
        // A reduce that finished *during* the outage is still ours: keep
        // it claimed so the completion in the next heartbeat lands fresh
        // instead of being requeued out from under us.
        let mut running_r = running_reduces.to_vec();
        running_r.extend(pend_reduce.iter().map(|r| (r.reduce, r.attempt)));
        let probe = Msg::Reattach {
            node: cfg.node,
            epoch,
            data_addr: data_addr.to_string(),
            finished_maps,
            running_maps: running_maps.iter().map(|(m, (a, _))| (*m, *a)).collect(),
            running_reduces: running_r,
        };
        match control.call(&probe) {
            Ok(ack @ Msg::ReattachAck { .. }) => return Some(ack),
            Ok(Msg::Shutdown) => {
                return Some(Msg::ReattachAck {
                    invalidate: Vec::new(),
                    dead: false,
                    shutdown: true,
                })
            }
            Ok(_) | Err(_) => {}
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(cfg.retry.full_jitter_delay(attempt, &mut jitter).max(cfg.heartbeat));
        attempt += 1;
    }
}

struct MapTask {
    map: u32,
    attempt: u32,
    doomed: bool,
    sources: Vec<String>,
    gauges: Arc<MapProgressGauges>,
    data: Arc<Mutex<DataState>>,
    resolver: Arc<Mutex<RpcClient>>,
    job: Arc<EngineJob>,
    partitioner: Partitioner,
    cpu_us_per_kib: u64,
    cancel: Arc<AtomicBool>,
    tx: Sender<TaskEvent>,
    io_timeout: Duration,
}

fn spawn_map_task(t: MapTask) {
    std::thread::spawn(move || {
        let Some(text) = fetch_block_text(&t) else {
            // No replica holder nor the tracker could produce the block:
            // report a failure so the attempt is retried elsewhere.
            let _ = t.tx.send(TaskEvent::MapFailed(MapFailed { map: t.map, attempt: t.attempt }));
            return;
        };
        if t.doomed {
            // The seeded fault draw doomed this attempt: burn a little
            // compute, then report the transient failure.
            std::thread::sleep(Duration::from_micros(t.cpu_us_per_kib * 4));
            let _ = t.tx.send(TaskEvent::MapFailed(MapFailed { map: t.map, attempt: t.attempt }));
            return;
        }
        let pace_us = t.cpu_us_per_kib * 8;
        let cancel = t.cancel.clone();
        let (partitions, bytes) = execute_map(
            t.job.mapper.as_ref(),
            &text,
            t.job.n_reduces,
            t.partitioner,
            &t.gauges,
            || {
                if !cancel.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_micros(pace_us));
                }
            },
        );
        if t.cancel.load(Ordering::SeqCst) {
            return;
        }
        t.data.lock().unwrap().outputs.insert(t.map, (t.attempt, partitions));
        let _ = t.tx.send(TaskEvent::MapDone(MapDone { map: t.map, attempt: t.attempt, bytes }));
    });
}

/// Local shard first, then the replica holders the tracker suggested, then
/// the tracker itself (which holds every block) as the fallback of last
/// resort.
fn fetch_block_text(t: &MapTask) -> Option<String> {
    if let Some(b) = t.data.lock().unwrap().blocks.get(&t.map) {
        return Some(b.clone());
    }
    for addr in &t.sources {
        let Ok(mut peer) = RpcClient::connect(
            addr.clone(),
            RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
            t.io_timeout,
        ) else {
            continue;
        };
        if let Ok(Msg::BlockData { data, .. }) = peer.call(&Msg::FetchBlock { block: t.map }) {
            return Some(data);
        }
    }
    match t.resolver.lock().unwrap().call(&Msg::FetchBlock { block: t.map }) {
        Ok(Msg::BlockData { data, .. }) => Some(data),
        _ => None,
    }
}

struct ReduceTask {
    reduce: u32,
    attempt: u32,
    n_maps: u32,
    data: Arc<Mutex<DataState>>,
    resolver: Arc<Mutex<RpcClient>>,
    my_addr: String,
    job: Arc<EngineJob>,
    cancel: Arc<AtomicBool>,
    tx: Sender<TaskEvent>,
    heartbeat: Duration,
    io_timeout: Duration,
    retry: RetryPolicy,
    breaker: BreakerPolicy,
    health: Arc<NetHealth>,
}

fn spawn_reduce_task(t: ReduceTask) {
    std::thread::spawn(move || {
        let mut pairs: Vec<(String, String)> = Vec::new();
        let mut per_source: Vec<(u32, u64)> = Vec::new();
        let mut peers: HashMap<String, RpcClient> = HashMap::new();
        // Per-holder circuit breakers over the fetch path, plus the last
        // address each map's fetch failed at — a later success from a
        // *different* address is an alternate-source fetch worth counting.
        let mut breakers: HashMap<String, CircuitBreaker> = HashMap::new();
        let mut failed_at: HashMap<u32, String> = HashMap::new();
        // Fetch every map's partition *in map-index order* — together with
        // the stable sort inside execute_reduce this pins the value order,
        // making output independent of placement and timing.
        for m in 0..t.n_maps {
            let fetched = loop {
                if t.cancel.load(Ordering::SeqCst) {
                    return;
                }
                let located = t.resolver.lock().unwrap().call(&Msg::WhereIs { map: m });
                match located {
                    Ok(Msg::MapAt { node, addr, attempt }) => {
                        let br = breakers
                            .entry(addr.clone())
                            .or_insert_with(|| CircuitBreaker::new(t.breaker));
                        if br.check() {
                            match fetch_partition(&t, &mut peers, m, attempt, &addr) {
                                Some(p) => {
                                    if br.record_success() {
                                        t.health.breaker_closes.fetch_add(1, Ordering::Relaxed);
                                    }
                                    if failed_at.get(&m).is_some_and(|a| *a != addr) {
                                        t.health.alt_fetches.fetch_add(1, Ordering::Relaxed);
                                    }
                                    break (node, p);
                                }
                                // Holder went away between resolve and
                                // fetch (or invalidation raced us):
                                // re-resolve next round, breaker noted.
                                None => {
                                    failed_at.insert(m, addr.clone());
                                    if br.record_failure() {
                                        t.health.breaker_trips.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        if br.is_open() && br.trips_since_success() >= 2 {
                            // The breaker tripped, cooled down, and its
                            // probe failed again: this holder is gone for
                            // practical purposes. Escalate so the tracker
                            // re-executes the map somewhere reachable;
                            // stale attempts make duplicates no-ops.
                            let _ = t
                                .resolver
                                .lock()
                                .unwrap()
                                .call(&Msg::SourceUnreachable { map: m, attempt });
                        }
                    }
                    Ok(Msg::Shutdown) => return,
                    // A silent tracker is an *outage*, not a shutdown: hold
                    // and re-resolve. The heartbeat thread's orphan loop
                    // sets `cancel` if the outage outlives `orphan_grace`,
                    // which bounds this retry.
                    Err(_) => {}
                    _ => {} // NotReady: map not finished (or re-executing)
                }
                std::thread::sleep(t.heartbeat);
            };
            let (src, part) = fetched;
            let sz: u64 = part.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
            if sz > 0 {
                match per_source.iter_mut().find(|(n, _)| *n == src) {
                    Some(e) => e.1 += sz,
                    None => per_source.push((src, sz)),
                }
            }
            pairs.extend(part);
        }
        let output = execute_reduce(t.job.reducer.as_ref(), pairs);
        if t.cancel.load(Ordering::SeqCst) {
            return;
        }
        let _ = t.tx.send(TaskEvent::ReduceDone(ReduceDone {
            reduce: t.reduce,
            attempt: t.attempt,
            output,
            sources: per_source,
        }));
    });
}

/// One partition fetch: straight out of our own store when we are the
/// holder, over a (cached) peer connection otherwise. `None` means the
/// holder could not produce the attempt — the caller re-resolves.
fn fetch_partition(
    t: &ReduceTask,
    peers: &mut HashMap<String, RpcClient>,
    map: u32,
    attempt: u32,
    addr: &str,
) -> Option<Vec<(String, String)>> {
    if addr == t.my_addr {
        let d = t.data.lock().unwrap();
        return d
            .outputs
            .get(&map)
            .filter(|(a, _)| *a == attempt)
            .map(|(_, parts)| parts[t.reduce as usize].clone());
    }
    if !peers.contains_key(addr) {
        let client = RpcClient::connect(addr.to_string(), t.retry.clone(), t.io_timeout).ok()?;
        peers.insert(addr.to_string(), client);
    }
    let peer = peers.get_mut(addr).expect("just inserted");
    match peer.call(&Msg::FetchPartition { map, attempt, reduce: t.reduce }) {
        Ok(Msg::PartitionData { pairs }) => Some(pairs),
        _ => {
            peers.remove(addr); // dead or confused peer: drop the connection
            None
        }
    }
}
