//! Carrier crate for the workspace-level integration tests in `/tests`.
//!
//! Cargo requires integration tests to belong to a package; this package
//! exists solely to wire `tests/*.rs` (which span every pnats crate) into
//! `cargo test --workspace`. It exports nothing.
