//! One structured record per placement decision, with deterministic JSONL
//! serialization.
//!
//! Records are written as one JSON object per line. Serialization is
//! hand-rolled (the build environment vendors no serde) and fully
//! deterministic: field order is fixed, floats print via Rust's
//! shortest-roundtrip formatter, and non-finite floats become `null`
//! (JSON has no NaN/∞).

use pnats_core::placer::{Decision, DecisionDetail};

/// Which of the two placement algorithms produced a record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// `place_map` (Algorithm 1).
    Map,
    /// `place_reduce` (Algorithm 2).
    Reduce,
}

impl Phase {
    /// Stable label used in the JSONL `phase` field.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::Reduce => "reduce",
        }
    }
}

/// Everything known about one `place_map`/`place_reduce` call.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionRecord {
    /// Simulation time (seconds) the heartbeat was processed at.
    pub t: f64,
    /// Heartbeat round counter of the run.
    pub round: u64,
    /// Map or reduce placement.
    pub phase: Phase,
    /// Job whose tasks were offered the slot.
    pub job: u32,
    /// Tenant the job belongs to, when the run uses a multi-tenant
    /// service configuration (`None` in single-pool runs, keeping their
    /// trace bytes unchanged).
    pub tenant: Option<u32>,
    /// Node whose free slot was offered.
    pub node: u32,
    /// Size of the candidate set the placer chose from.
    pub candidates: usize,
    /// Nodes with free slots of this phase (the `C_ave` denominator).
    pub free_nodes: usize,
    /// The placer's verdict (assigned candidate index or skip reason).
    pub decision: Decision,
    /// The winner's Algorithm-1/2 intermediates, when the placer computes
    /// them (`C_i`, `C_ave`, `P`); `None` for baselines without a gate.
    pub detail: Option<DecisionDetail>,
}

/// Append `v` as a JSON number, or `null` if non-finite.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest-roundtrip float formatting: deterministic and parseable
        // as a JSON number (Rust never emits `inf`/`NaN` on this path).
        let s = format!("{v}");
        out.push_str(&s);
        // `1e20` style output is not valid JSON without a fraction; Rust
        // formats f64 without exponents for typical magnitudes, but guard
        // anyway: an `e` without `.` is still valid JSON grammar, so
        // nothing to fix — only ensure integral floats keep a marker.
        if !s.contains('.') && !s.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

impl DecisionRecord {
    /// Append this record to `out` as one JSON line (including `\n`).
    ///
    /// Field order and formatting are fixed, so identical decisions always
    /// serialize to identical bytes — the golden-trace determinism tests
    /// rely on this.
    pub fn to_jsonl(&self, out: &mut String) {
        out.push_str("{\"t\":");
        push_f64(out, self.t);
        out.push_str(",\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"phase\":\"");
        out.push_str(self.phase.label());
        out.push_str("\",\"job\":");
        out.push_str(&self.job.to_string());
        if let Some(tn) = self.tenant {
            out.push_str(",\"tenant\":");
            out.push_str(&tn.to_string());
        }
        out.push_str(",\"node\":");
        out.push_str(&self.node.to_string());
        out.push_str(",\"candidates\":");
        out.push_str(&self.candidates.to_string());
        out.push_str(",\"free\":");
        out.push_str(&self.free_nodes.to_string());
        match self.decision {
            Decision::Assign(i) => {
                out.push_str(",\"decision\":\"assign\",\"task\":");
                out.push_str(&i.to_string());
            }
            Decision::Skip(r) => {
                out.push_str(",\"decision\":\"skip\",\"reason\":\"");
                out.push_str(r.label());
                out.push('"');
            }
        }
        if let Some(d) = self.detail {
            out.push_str(",\"cost\":");
            push_f64(out, d.cost);
            out.push_str(",\"cost_avg\":");
            push_f64(out, d.cost_avg);
            out.push_str(",\"p\":");
            push_f64(out, d.probability);
        }
        out.push_str("}\n");
    }

    /// This record as a standalone JSON line.
    pub fn jsonl(&self) -> String {
        let mut s = String::with_capacity(160);
        self.to_jsonl(&mut s);
        s
    }
}

/// What kind of fault or recovery action a [`FaultRecord`] describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// A node died; its slots, running tasks, and stored map outputs are gone.
    NodeCrash,
    /// A previously crashed node rejoined with empty disks.
    NodeRecover,
    /// An alive node's heartbeat was dropped (loss window) — no work offered.
    HeartbeatLost,
    /// A completed map's output was lost with its node; the map re-runs in a
    /// new epoch.
    MapInvalidated,
    /// A running task was killed (node crash) and put back in the queue.
    TaskRescheduled,
    /// A map attempt failed transiently and will be retried.
    TransientFailure,
    /// A map burned its attempt budget; the whole job is failed.
    JobFailed,
    /// A node's access link dropped to a fraction of its nominal rate.
    LinkDegraded,
    /// A link-degradation window ended; nominal rate restored.
    LinkRestored,
    /// An RPC call failed and was retried (cluster runtime: connection
    /// refused/reset, deadline hit).
    RpcRetry,
    /// A registered peer missed `k` consecutive heartbeats and was expired
    /// by the tracker — the cluster runtime's crash *detection*, as opposed
    /// to [`NodeCrash`] which records the crash itself.
    PeerExpired,
    /// A wire link stopped carrying traffic (chaos partition, black hole,
    /// reset, or sustained frame loss).
    LinkPartitioned,
    /// A frame arrived with a bad checksum and was rejected — the
    /// connection was poisoned, the process was not.
    FrameCorrupted,
    /// A per-peer circuit breaker tripped open after consecutive failures.
    CircuitOpen,
    /// A previously open circuit breaker closed again (probe succeeded).
    CircuitClose,
    /// The tracker entered safe mode: too many workers unreachable, so it
    /// stopped expiring peers and queued work instead of cascading
    /// invalidations.
    DegradedMode,
    /// A map output was fetched from an alternate source after its primary
    /// holder was unreachable.
    AltSourceFetch,
    /// An arriving job was turned away by service-mode admission control
    /// (per-tenant queue bound or cluster-saturation backpressure).
    JobRejected,
    /// A running map attempt was killed by the service-mode preemption
    /// policy to restore a starved tenant's minimum share; always followed
    /// by a [`TaskRescheduled`](Self::TaskRescheduled) requeue of the same
    /// task at the same instant.
    MapPreempted,
    /// The tracker came back from a crash and is rebuilding scheduler
    /// state (journal replay + worker re-attach). Recorded once per
    /// recovery, at the start of the new tracker incarnation.
    TrackerRestart,
    /// The durable job journal was replayed into a fresh tracker; the
    /// record's `task` field carries the number of journal records
    /// applied.
    JournalReplayed,
    /// A surviving worker re-attached to a restarted tracker via
    /// `Msg::Reattach`, keeping its local attempt state.
    WorkerReattached,
    /// A journal-inherited attempt was reconciled against worker truth at
    /// re-attach: the worker confirmed it live (or finished) and the
    /// tracker adopted it instead of re-issuing.
    AttemptReconciled,
}

impl FaultKind {
    /// Stable snake_case label used in the JSONL `fault` field.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "node_crash",
            FaultKind::NodeRecover => "node_recover",
            FaultKind::HeartbeatLost => "heartbeat_lost",
            FaultKind::MapInvalidated => "map_invalidated",
            FaultKind::TaskRescheduled => "task_rescheduled",
            FaultKind::TransientFailure => "transient_failure",
            FaultKind::JobFailed => "job_failed",
            FaultKind::LinkDegraded => "link_degraded",
            FaultKind::LinkRestored => "link_restored",
            FaultKind::RpcRetry => "rpc_retry",
            FaultKind::PeerExpired => "peer_expired",
            FaultKind::LinkPartitioned => "link_partitioned",
            FaultKind::FrameCorrupted => "frame_corrupted",
            FaultKind::CircuitOpen => "circuit_open",
            FaultKind::CircuitClose => "circuit_close",
            FaultKind::DegradedMode => "degraded_mode",
            FaultKind::AltSourceFetch => "alt_source_fetch",
            FaultKind::JobRejected => "job_rejected",
            FaultKind::MapPreempted => "map_preempted",
            FaultKind::TrackerRestart => "tracker_restart",
            FaultKind::JournalReplayed => "journal_replayed",
            FaultKind::WorkerReattached => "worker_reattached",
            FaultKind::AttemptReconciled => "attempt_reconciled",
        }
    }
}

/// One fault-injection or recovery action, interleaved chronologically with
/// [`DecisionRecord`]s in a trace. Distinguished from decision lines by the
/// `"fault"` key (decision lines carry `"phase"`/`"decision"` instead).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRecord {
    /// Time the action happened (simulated seconds, or engine round number).
    pub t: f64,
    /// What happened.
    pub kind: FaultKind,
    /// The node involved (victim, recovered node, or task host).
    pub node: u32,
    /// The affected job, when the action is task-scoped.
    pub job: Option<u32>,
    /// The affected task index within the job, when task-scoped.
    pub task: Option<u32>,
}

impl FaultRecord {
    /// Append this record to `out` as one JSON line (including `\n`),
    /// with the same fixed-field-order determinism as [`DecisionRecord`].
    pub fn to_jsonl(&self, out: &mut String) {
        out.push_str("{\"t\":");
        push_f64(out, self.t);
        out.push_str(",\"fault\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"node\":");
        out.push_str(&self.node.to_string());
        if let Some(j) = self.job {
            out.push_str(",\"job\":");
            out.push_str(&j.to_string());
        }
        if let Some(x) = self.task {
            out.push_str(",\"task\":");
            out.push_str(&x.to_string());
        }
        out.push_str("}\n");
    }

    /// This record as a standalone JSON line.
    pub fn jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.to_jsonl(&mut s);
        s
    }
}

/// Which task family a [`TaskCompletion`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

/// One accepted task completion — the ledger entry the exactly-once
/// invariant oracle (`pnats_sim::check_runtime_completions`) audits. Both
/// runtimes (engine and cluster) record one of these per completion the
/// scheduler *accepted* (duplicates and stale attempts excluded), tagged
/// with the run epoch the completion belongs to: epoch `e` of a map is the
/// state after `e` invalidations of that map's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskCompletion {
    /// Map or reduce.
    pub kind: TaskKind,
    /// Task index within its family.
    pub index: u32,
    /// Run epoch the completion was accepted in (0 = never invalidated).
    pub epoch: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnats_core::placer::SkipReason;

    fn record() -> DecisionRecord {
        DecisionRecord {
            t: 12.5,
            round: 3,
            phase: Phase::Map,
            job: 1,
            node: 7,
            tenant: None,
            candidates: 4,
            free_nodes: 12,
            decision: Decision::Assign(2),
            detail: Some(DecisionDetail { cost: 256.0, cost_avg: 128.0, probability: 0.75 }),
        }
    }

    #[test]
    fn assign_record_serializes_with_detail() {
        assert_eq!(
            record().jsonl(),
            "{\"t\":12.5,\"round\":3,\"phase\":\"map\",\"job\":1,\"node\":7,\
             \"candidates\":4,\"free\":12,\"decision\":\"assign\",\"task\":2,\
             \"cost\":256.0,\"cost_avg\":128.0,\"p\":0.75}\n"
        );
    }

    #[test]
    fn skip_record_names_the_reason() {
        let rec = DecisionRecord {
            decision: Decision::Skip(SkipReason::BelowPMin),
            detail: None,
            phase: Phase::Reduce,
            ..record()
        };
        let line = rec.jsonl();
        assert!(line.contains("\"decision\":\"skip\""), "{line}");
        assert!(line.contains("\"reason\":\"below_p_min\""), "{line}");
        assert!(line.contains("\"phase\":\"reduce\""), "{line}");
        assert!(!line.contains("cost"), "{line}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let rec = DecisionRecord {
            detail: Some(DecisionDetail {
                cost: f64::INFINITY,
                cost_avg: f64::NAN,
                probability: 0.5,
            }),
            ..record()
        };
        let line = rec.jsonl();
        assert!(line.contains("\"cost\":null,\"cost_avg\":null,\"p\":0.5"), "{line}");
    }

    #[test]
    fn tenant_tag_serializes_after_job() {
        let rec = DecisionRecord { tenant: Some(2), ..record() };
        assert!(
            rec.jsonl().contains("\"job\":1,\"tenant\":2,\"node\":7"),
            "{}",
            rec.jsonl()
        );
        crate::json::validate_json(rec.jsonl().trim_end()).unwrap();
        // Untagged records keep their historical byte layout.
        assert!(!record().jsonl().contains("tenant"));
    }

    #[test]
    fn integral_floats_keep_a_fraction_marker() {
        let rec = DecisionRecord { t: 3.0, ..record() };
        assert!(rec.jsonl().starts_with("{\"t\":3.0,"), "{}", rec.jsonl());
    }

    #[test]
    fn fault_record_serializes_deterministically() {
        let rec = FaultRecord {
            t: 40.0,
            kind: FaultKind::MapInvalidated,
            node: 3,
            job: Some(1),
            task: Some(6),
        };
        assert_eq!(rec.jsonl(), "{\"t\":40.0,\"fault\":\"map_invalidated\",\"node\":3,\"job\":1,\"task\":6}\n");
        let bare = FaultRecord { t: 2.5, kind: FaultKind::NodeCrash, node: 0, job: None, task: None };
        assert_eq!(bare.jsonl(), "{\"t\":2.5,\"fault\":\"node_crash\",\"node\":0}\n");
        for kind in [
            FaultKind::NodeCrash,
            FaultKind::NodeRecover,
            FaultKind::HeartbeatLost,
            FaultKind::MapInvalidated,
            FaultKind::TaskRescheduled,
            FaultKind::TransientFailure,
            FaultKind::JobFailed,
            FaultKind::LinkDegraded,
            FaultKind::LinkRestored,
            FaultKind::RpcRetry,
            FaultKind::PeerExpired,
            FaultKind::LinkPartitioned,
            FaultKind::FrameCorrupted,
            FaultKind::CircuitOpen,
            FaultKind::CircuitClose,
            FaultKind::DegradedMode,
            FaultKind::AltSourceFetch,
            FaultKind::JobRejected,
            FaultKind::MapPreempted,
            FaultKind::TrackerRestart,
            FaultKind::JournalReplayed,
            FaultKind::WorkerReattached,
            FaultKind::AttemptReconciled,
        ] {
            let line = FaultRecord { kind, ..rec }.jsonl();
            crate::json::validate_json(line.trim_end())
                .unwrap_or_else(|e| panic!("invalid JSON {line:?}: {e}"));
        }
    }

    #[test]
    fn every_line_is_valid_json() {
        for decision in [
            Decision::Assign(0),
            Decision::Skip(SkipReason::NoCandidate),
            Decision::Skip(SkipReason::DrawFailed),
        ] {
            for detail in [
                None,
                Some(DecisionDetail { cost: 1.5, cost_avg: f64::NAN, probability: 1.0 }),
            ] {
                let rec = DecisionRecord { decision, detail, ..record() };
                let line = rec.jsonl();
                crate::json::validate_json(line.trim_end()).unwrap_or_else(|e| {
                    panic!("invalid JSON {line:?}: {e}");
                });
            }
        }
    }
}
