//! A dependency-free JSON syntax validator.
//!
//! The build environment vendors no serde, yet CI must prove that every
//! emitted trace line and the `BENCH_harness.json` counter objects are
//! well-formed JSON. This is a small recursive-descent checker over the
//! RFC 8259 grammar — it validates syntax only and builds no tree.

/// Check that `s` is exactly one well-formed JSON value (leading/trailing
/// whitespace allowed). Returns a byte-offset error message on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at byte {pos}"
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => {
                return Err(format!("unescaped control byte at {pos}"));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: `0` alone, or a nonzero digit followed by digits.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(d) if d.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(format!("expected digit at byte {pos}")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("expected fraction digit at byte {pos}"));
        }
        while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            return Err(format!("expected exponent digit at byte {pos}"));
        }
        while matches!(b.get(*pos), Some(d) if d.is_ascii_digit()) {
            *pos += 1;
        }
    }
    debug_assert!(*pos > start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "0",
            "\"a \\\"quoted\\\" string with \\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}",
            "  { \"spaced\" : [ 1 , 2 ] }  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2,]",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "NaN",
            "'single'",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
    }
}
