#![warn(missing_docs)]
//! # pnats-obs — decision tracing and scheduler counters
//!
//! The paper's contribution lives in per-heartbeat decisions (Algorithms
//! 1–2: cost `C_i`, mean `C_ave`, probability `P`, the `P_min` gate, the
//! Bernoulli draw), yet a scheduler run normally throws those
//! intermediates away. This crate is the observability pipeline both
//! runtimes (the discrete-event simulator and the threaded engine) feed:
//!
//! * [`record`] — [`DecisionRecord`](record::DecisionRecord), one
//!   structured line per `place_map`/`place_reduce` call: sim time,
//!   heartbeat round, node, candidate-set size, the winner's
//!   `C_i`/`C_ave`/`P`, draw outcome or [`SkipReason`]. Fault injection
//!   adds [`FaultRecord`](record::FaultRecord) lines (crashes, recoveries,
//!   invalidated map outputs, retries) interleaved in the same stream.
//! * [`sink`] — the [`TraceSink`](sink::TraceSink) trait records flow
//!   into: [`NullSink`](sink::NullSink) (zero-cost default),
//!   [`InMemorySink`](sink::InMemorySink) (ring-buffered),
//!   [`JsonlFileSink`](sink::JsonlFileSink) (streaming JSONL file).
//! * [`counters`] — [`SchedCounters`](counters::SchedCounters), monotonic
//!   per-scheduler counters (offers, assigns, skips by reason, prune and
//!   `C_ave`-cache hits) with the invariant `offers = assigns + Σ skips`.
//! * [`observer`] — [`DecisionObserver`](observer::DecisionObserver), the
//!   single instrumented choke point runtimes call after each placement
//!   decision.
//! * [`json`] — a dependency-free JSON syntax validator for CI checks of
//!   emitted trace lines.
//!
//! With the default [`NullSink`](sink::NullSink) the per-decision cost is
//! a handful of counter increments; no record is built unless the sink
//! reports itself enabled.
//!
//! [`SkipReason`]: pnats_core::placer::SkipReason

pub mod counters;
pub mod json;
pub mod observer;
pub mod record;
pub mod sink;

pub use counters::SchedCounters;
pub use observer::DecisionObserver;
pub use record::{DecisionRecord, FaultKind, FaultRecord, Phase, TaskCompletion, TaskKind};
pub use sink::{InMemorySink, JsonlFileSink, NullSink, TraceSink};
