//! Where decision records go: nowhere, a bounded ring buffer, or a file.

use crate::record::{DecisionRecord, FaultRecord};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Destination for [`DecisionRecord`]s and [`FaultRecord`]s.
///
/// Runtimes check [`enabled`](TraceSink::enabled) *before* building a
/// record, so a disabled sink costs one virtual call per decision and no
/// allocation.
pub trait TraceSink: Send {
    /// Whether records should be built and delivered at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Deliver one record.
    fn record(&mut self, rec: &DecisionRecord);

    /// Deliver one fault/recovery record, interleaved chronologically with
    /// decisions. Default: dropped (sinks that predate fault injection keep
    /// working).
    fn record_fault(&mut self, _rec: &FaultRecord) {}

    /// Take the accumulated trace as JSONL text, if this sink buffers one
    /// (in-memory sinks). File sinks return `None` — their data is already
    /// on disk.
    fn drain_jsonl(&mut self) -> Option<String> {
        None
    }

    /// Flush buffered output (file sinks).
    fn flush(&mut self) {}
}

/// The zero-cost default: drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: &DecisionRecord) {}
}

/// One buffered trace line: a placement decision or a fault action.
#[derive(Clone, Debug)]
enum SinkItem {
    Decision(DecisionRecord),
    Fault(FaultRecord),
}

/// Ring-buffered in-memory sink: keeps the most recent `capacity` records
/// (unbounded when constructed with [`InMemorySink::unbounded`]) and counts
/// what it had to drop. Decision and fault records share one buffer so the
/// drained JSONL preserves chronological interleaving.
#[derive(Clone, Debug, Default)]
pub struct InMemorySink {
    records: VecDeque<SinkItem>,
    /// 0 = unbounded.
    capacity: usize,
    dropped: u64,
}

impl InMemorySink {
    /// A sink that retains every record.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A ring buffer retaining the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "use unbounded() for a limitless sink");
        Self { records: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// The buffered decision records, oldest first (fault records are
    /// buffered too but only surface through [`InMemorySink::to_jsonl`]).
    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter().filter_map(|item| match item {
            SinkItem::Decision(rec) => Some(rec),
            SinkItem::Fault(_) => None,
        })
    }

    /// Number of buffered records (decisions + faults).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered trace as JSONL text, oldest record first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 160);
        for r in &self.records {
            match r {
                SinkItem::Decision(rec) => rec.to_jsonl(&mut out),
                SinkItem::Fault(rec) => rec.to_jsonl(&mut out),
            }
        }
        out
    }

    fn push(&mut self, item: SinkItem) {
        if self.capacity > 0 && self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(item);
    }
}

impl TraceSink for InMemorySink {
    fn record(&mut self, rec: &DecisionRecord) {
        self.push(SinkItem::Decision(rec.clone()));
    }

    fn record_fault(&mut self, rec: &FaultRecord) {
        self.push(SinkItem::Fault(*rec));
    }

    fn drain_jsonl(&mut self) -> Option<String> {
        let out = self.to_jsonl();
        self.records.clear();
        Some(out)
    }
}

/// Streams records to a JSONL file through a buffered writer.
#[derive(Debug)]
pub struct JsonlFileSink {
    writer: BufWriter<std::fs::File>,
    buf: String,
}

impl JsonlFileSink {
    /// Create (truncate) `path` and stream records into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self { writer: BufWriter::new(file), buf: String::with_capacity(256) })
    }
}

impl TraceSink for JsonlFileSink {
    fn record(&mut self, rec: &DecisionRecord) {
        self.buf.clear();
        rec.to_jsonl(&mut self.buf);
        // Tracing must not abort a run half-way; a full disk surfaces at
        // flush time via the runtime's explicit flush call.
        let _ = self.writer.write_all(self.buf.as_bytes());
    }

    fn record_fault(&mut self, rec: &FaultRecord) {
        self.buf.clear();
        rec.to_jsonl(&mut self.buf);
        let _ = self.writer.write_all(self.buf.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for JsonlFileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Phase;
    use pnats_core::placer::Decision;

    fn rec(round: u64) -> DecisionRecord {
        DecisionRecord {
            t: round as f64,
            round,
            phase: Phase::Map,
            job: 0,
            tenant: None,
            node: 0,
            candidates: 1,
            free_nodes: 1,
            decision: Decision::Assign(0),
            detail: None,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(&rec(0));
        assert!(s.drain_jsonl().is_none());
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut s = InMemorySink::with_capacity(2);
        for round in 0..5 {
            s.record(&rec(round));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let rounds: Vec<u64> = s.records().map(|r| r.round).collect();
        assert_eq!(rounds, vec![3, 4]);
    }

    #[test]
    fn unbounded_sink_drains_in_order() {
        let mut s = InMemorySink::unbounded();
        for round in 0..3 {
            s.record(&rec(round));
        }
        let text = s.drain_jsonl().expect("in-memory sinks drain");
        assert_eq!(text.lines().count(), 3);
        assert!(s.is_empty(), "drain empties the buffer");
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"round\":0"), "{first}");
    }

    #[test]
    fn fault_records_interleave_in_arrival_order() {
        use crate::record::FaultKind;
        let mut s = InMemorySink::unbounded();
        s.record(&rec(0));
        s.record_fault(&FaultRecord {
            t: 1.0,
            kind: FaultKind::NodeCrash,
            node: 2,
            job: None,
            task: None,
        });
        s.record(&rec(2));
        assert_eq!(s.records().count(), 2, "decision iterator skips faults");
        let text = s.drain_jsonl().expect("in-memory sinks drain");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"fault\":\"node_crash\""), "{}", lines[1]);
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join("pnats_obs_sink_test.jsonl");
        let mut s = JsonlFileSink::create(&path).expect("create temp trace");
        s.record(&rec(0));
        s.record(&rec(1));
        s.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
