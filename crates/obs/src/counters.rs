//! Monotonic per-scheduler decision counters.
//!
//! The accounting identity every run must satisfy — checked by tests and
//! by the CI `trace_check` bin — is
//! `offers == assigns + Σ_reason skips[reason]`: each heartbeat slot offer
//! produces exactly one decision.

use crate::record::FaultKind;
use pnats_core::placer::{Decision, PlacerStats, SkipReason};

/// Counters over every placement decision a run made, plus the
/// probabilistic placer's prune/cache extras.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Slot offers made (`place_map` + `place_reduce` calls).
    pub offers: u64,
    /// Offers that assigned a task.
    pub assigns: u64,
    /// Offers skipped, by [`SkipReason`] (indexed by `reason as usize`).
    pub skips: [u64; SkipReason::COUNT],
    /// Candidates cost-ceiling-pruned inside the probabilistic placer.
    pub pruned: u64,
    /// `C_ave` cache hits inside the probabilistic placer.
    pub cache_hits: u64,
    /// `C_ave` cache misses inside the probabilistic placer.
    pub cache_misses: u64,
    /// Node crashes injected by the run's fault plan.
    pub node_crashes: u64,
    /// Task attempts killed and put back in the queue (crash reschedules +
    /// transient failures).
    pub retries: u64,
    /// Completed maps whose output died with its node and had to re-run in a
    /// fresh epoch.
    pub reexecuted_maps: u64,
    /// Heartbeats dropped by loss windows (node alive, master deaf).
    pub lost_heartbeats: u64,
    /// RPC calls that failed and were retried (cluster runtime only).
    pub rpc_retries: u64,
    /// Peers the tracker expired after `k` missed heartbeats (cluster
    /// runtime's crash detections).
    pub peers_expired: u64,
    /// Per-peer circuit breakers tripped open.
    pub breaker_trips: u64,
    /// Circuit breakers closed again after a successful probe.
    pub breaker_closes: u64,
    /// Map outputs fetched from an alternate source after the primary
    /// holder was unreachable.
    pub alt_source_fetches: u64,
    /// Frames rejected for a checksum mismatch (connection poisoned).
    pub corrupt_frames: u64,
    /// Links observed partitioned/black-holed/reset by the chaos layer.
    pub link_partitions: u64,
    /// Times the tracker entered degraded (safe) mode.
    pub degraded_entries: u64,
    /// Arriving jobs shed by service-mode admission control.
    pub jobs_rejected: u64,
    /// Running map attempts killed by the service-mode preemption policy
    /// (each also books one retry when the attempt is requeued).
    pub preemptions: u64,
    /// Tracker incarnations that recovered from a crash (cluster runtime:
    /// journal replay at startup).
    pub tracker_restarts: u64,
    /// Durable job journals replayed into a fresh tracker.
    pub journal_replays: u64,
    /// Surviving workers that re-attached to a restarted tracker via
    /// `Msg::Reattach` without wiping state.
    pub worker_reattaches: u64,
    /// Journal-inherited attempts confirmed live by a re-attaching worker
    /// and adopted instead of re-issued.
    pub attempts_reconciled: u64,
    /// Map completions restored from the journal at recovery (finished
    /// before the crash; no new assignment was needed this incarnation).
    pub recovered_maps: u64,
    /// Reduce completions restored from the journal at recovery.
    pub recovered_reduces: u64,
    /// Assignments restored from the journal still unfinished at recovery
    /// (this incarnation inherits them without booking an `assigns`).
    pub inherited_assignments: u64,
    /// Sum of map crash epochs restored from the journal at recovery —
    /// re-executions booked by *previous* incarnations, needed to balance
    /// the cross-incarnation completion-ledger law.
    pub recovered_reexec: u64,
}

impl SchedCounters {
    /// Book one decision.
    pub fn record(&mut self, decision: Decision) {
        self.offers += 1;
        match decision {
            Decision::Assign(_) => self.assigns += 1,
            Decision::Skip(r) => self.skips[r as usize] += 1,
        }
    }

    /// Book one fault/recovery action. Kinds that are pure annotations
    /// (recoveries, link windows, job failures) leave the counters alone.
    pub fn record_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::NodeCrash => self.node_crashes += 1,
            FaultKind::HeartbeatLost => self.lost_heartbeats += 1,
            FaultKind::MapInvalidated => self.reexecuted_maps += 1,
            FaultKind::TaskRescheduled | FaultKind::TransientFailure => self.retries += 1,
            FaultKind::RpcRetry => self.rpc_retries += 1,
            FaultKind::PeerExpired => self.peers_expired += 1,
            FaultKind::CircuitOpen => self.breaker_trips += 1,
            FaultKind::CircuitClose => self.breaker_closes += 1,
            FaultKind::AltSourceFetch => self.alt_source_fetches += 1,
            FaultKind::FrameCorrupted => self.corrupt_frames += 1,
            FaultKind::LinkPartitioned => self.link_partitions += 1,
            FaultKind::DegradedMode => self.degraded_entries += 1,
            FaultKind::JobRejected => self.jobs_rejected += 1,
            FaultKind::MapPreempted => self.preemptions += 1,
            FaultKind::TrackerRestart => self.tracker_restarts += 1,
            FaultKind::JournalReplayed => self.journal_replays += 1,
            FaultKind::WorkerReattached => self.worker_reattaches += 1,
            FaultKind::AttemptReconciled => self.attempts_reconciled += 1,
            FaultKind::NodeRecover
            | FaultKind::JobFailed
            | FaultKind::LinkDegraded
            | FaultKind::LinkRestored => {}
        }
    }

    /// Copy the placer-internal extras (prune and cache counters) out of a
    /// [`PlacerStats`]. Call once at end of run — placer stats are
    /// cumulative.
    pub fn absorb_placer(&mut self, stats: &PlacerStats) {
        self.pruned += stats.pruned;
        self.cache_hits += stats.cache_hits;
        self.cache_misses += stats.cache_misses;
    }

    /// Add another run's counters into this aggregate.
    pub fn merge(&mut self, other: &SchedCounters) {
        self.offers += other.offers;
        self.assigns += other.assigns;
        for (a, b) in self.skips.iter_mut().zip(other.skips.iter()) {
            *a += b;
        }
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.node_crashes += other.node_crashes;
        self.retries += other.retries;
        self.reexecuted_maps += other.reexecuted_maps;
        self.lost_heartbeats += other.lost_heartbeats;
        self.rpc_retries += other.rpc_retries;
        self.peers_expired += other.peers_expired;
        self.breaker_trips += other.breaker_trips;
        self.breaker_closes += other.breaker_closes;
        self.alt_source_fetches += other.alt_source_fetches;
        self.corrupt_frames += other.corrupt_frames;
        self.link_partitions += other.link_partitions;
        self.degraded_entries += other.degraded_entries;
        self.jobs_rejected += other.jobs_rejected;
        self.preemptions += other.preemptions;
        self.tracker_restarts += other.tracker_restarts;
        self.journal_replays += other.journal_replays;
        self.worker_reattaches += other.worker_reattaches;
        self.attempts_reconciled += other.attempts_reconciled;
        self.recovered_maps += other.recovered_maps;
        self.recovered_reduces += other.recovered_reduces;
        self.inherited_assignments += other.inherited_assignments;
        self.recovered_reexec += other.recovered_reexec;
    }

    /// Skip count for one reason.
    pub fn skipped(&self, reason: SkipReason) -> u64 {
        self.skips[reason as usize]
    }

    /// Total skips across all reasons.
    pub fn total_skips(&self) -> u64 {
        self.skips.iter().sum()
    }

    /// The accounting identity: every offer became exactly one decision.
    pub fn consistent(&self) -> bool {
        self.offers == self.assigns + self.total_skips()
    }

    /// Serialize as the space-separated `key=value` tail of a harness
    /// `COUNTERS` stderr line (everything after the scheduler name).
    pub fn to_kv(&self) -> String {
        let mut s = format!("offers={} assigns={}", self.offers, self.assigns);
        for r in SkipReason::ALL {
            s.push_str(&format!(" skip_{}={}", r.label(), self.skipped(r)));
        }
        s.push_str(&format!(
            " pruned={} cache_hits={} cache_misses={}",
            self.pruned, self.cache_hits, self.cache_misses
        ));
        s.push_str(&format!(
            " node_crashes={} retries={} reexecuted_maps={} lost_heartbeats={}",
            self.node_crashes, self.retries, self.reexecuted_maps, self.lost_heartbeats
        ));
        s.push_str(&format!(
            " rpc_retries={} peers_expired={}",
            self.rpc_retries, self.peers_expired
        ));
        s.push_str(&format!(
            " breaker_trips={} breaker_closes={} alt_source_fetches={}",
            self.breaker_trips, self.breaker_closes, self.alt_source_fetches
        ));
        s.push_str(&format!(
            " corrupt_frames={} link_partitions={} degraded_entries={}",
            self.corrupt_frames, self.link_partitions, self.degraded_entries
        ));
        s.push_str(&format!(
            " jobs_rejected={} preemptions={}",
            self.jobs_rejected, self.preemptions
        ));
        s.push_str(&format!(
            " tracker_restarts={} journal_replays={} worker_reattaches={} \
             attempts_reconciled={}",
            self.tracker_restarts,
            self.journal_replays,
            self.worker_reattaches,
            self.attempts_reconciled
        ));
        s.push_str(&format!(
            " recovered_maps={} recovered_reduces={} inherited_assignments={} \
             recovered_reexec={}",
            self.recovered_maps,
            self.recovered_reduces,
            self.inherited_assignments,
            self.recovered_reexec
        ));
        s
    }

    /// Parse the `key=value` fields of [`to_kv`](Self::to_kv) back out of a
    /// token stream (unknown keys are ignored, so the format can grow).
    pub fn from_kv<'a>(tokens: impl Iterator<Item = &'a str>) -> SchedCounters {
        let mut c = SchedCounters::default();
        for tok in tokens {
            let Some((key, value)) = tok.split_once('=') else {
                continue;
            };
            let Ok(v) = value.parse::<u64>() else {
                continue;
            };
            match key {
                "offers" => c.offers = v,
                "assigns" => c.assigns = v,
                "pruned" => c.pruned = v,
                "cache_hits" => c.cache_hits = v,
                "cache_misses" => c.cache_misses = v,
                "node_crashes" => c.node_crashes = v,
                "retries" => c.retries = v,
                "reexecuted_maps" => c.reexecuted_maps = v,
                "lost_heartbeats" => c.lost_heartbeats = v,
                "rpc_retries" => c.rpc_retries = v,
                "peers_expired" => c.peers_expired = v,
                "breaker_trips" => c.breaker_trips = v,
                "breaker_closes" => c.breaker_closes = v,
                "alt_source_fetches" => c.alt_source_fetches = v,
                "corrupt_frames" => c.corrupt_frames = v,
                "link_partitions" => c.link_partitions = v,
                "degraded_entries" => c.degraded_entries = v,
                "jobs_rejected" => c.jobs_rejected = v,
                "preemptions" => c.preemptions = v,
                "tracker_restarts" => c.tracker_restarts = v,
                "journal_replays" => c.journal_replays = v,
                "worker_reattaches" => c.worker_reattaches = v,
                "attempts_reconciled" => c.attempts_reconciled = v,
                "recovered_maps" => c.recovered_maps = v,
                "recovered_reduces" => c.recovered_reduces = v,
                "inherited_assignments" => c.inherited_assignments = v,
                "recovered_reexec" => c.recovered_reexec = v,
                _ => {
                    if let Some(label) = key.strip_prefix("skip_") {
                        if let Some(r) = SkipReason::ALL.iter().find(|r| r.label() == label) {
                            c.skips[*r as usize] = v;
                        }
                    }
                }
            }
        }
        c
    }

    /// Serialize as a JSON object (hand-rolled; the repo vendors no serde)
    /// for `BENCH_harness.json`.
    pub fn to_json_object(&self, indent: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("{indent}  \"offers\": {},\n", self.offers));
        s.push_str(&format!("{indent}  \"assigns\": {},\n", self.assigns));
        for r in SkipReason::ALL {
            s.push_str(&format!(
                "{indent}  \"skip_{}\": {},\n",
                r.label(),
                self.skipped(r)
            ));
        }
        s.push_str(&format!("{indent}  \"pruned\": {},\n", self.pruned));
        s.push_str(&format!("{indent}  \"cache_hits\": {},\n", self.cache_hits));
        s.push_str(&format!("{indent}  \"cache_misses\": {},\n", self.cache_misses));
        s.push_str(&format!("{indent}  \"node_crashes\": {},\n", self.node_crashes));
        s.push_str(&format!("{indent}  \"retries\": {},\n", self.retries));
        s.push_str(&format!("{indent}  \"reexecuted_maps\": {},\n", self.reexecuted_maps));
        s.push_str(&format!("{indent}  \"lost_heartbeats\": {},\n", self.lost_heartbeats));
        s.push_str(&format!("{indent}  \"rpc_retries\": {},\n", self.rpc_retries));
        s.push_str(&format!("{indent}  \"peers_expired\": {},\n", self.peers_expired));
        s.push_str(&format!("{indent}  \"breaker_trips\": {},\n", self.breaker_trips));
        s.push_str(&format!("{indent}  \"breaker_closes\": {},\n", self.breaker_closes));
        s.push_str(&format!(
            "{indent}  \"alt_source_fetches\": {},\n",
            self.alt_source_fetches
        ));
        s.push_str(&format!("{indent}  \"corrupt_frames\": {},\n", self.corrupt_frames));
        s.push_str(&format!("{indent}  \"link_partitions\": {},\n", self.link_partitions));
        s.push_str(&format!("{indent}  \"degraded_entries\": {},\n", self.degraded_entries));
        s.push_str(&format!("{indent}  \"jobs_rejected\": {},\n", self.jobs_rejected));
        s.push_str(&format!("{indent}  \"preemptions\": {},\n", self.preemptions));
        s.push_str(&format!("{indent}  \"tracker_restarts\": {},\n", self.tracker_restarts));
        s.push_str(&format!("{indent}  \"journal_replays\": {},\n", self.journal_replays));
        s.push_str(&format!(
            "{indent}  \"worker_reattaches\": {},\n",
            self.worker_reattaches
        ));
        s.push_str(&format!(
            "{indent}  \"attempts_reconciled\": {},\n",
            self.attempts_reconciled
        ));
        s.push_str(&format!("{indent}  \"recovered_maps\": {},\n", self.recovered_maps));
        s.push_str(&format!("{indent}  \"recovered_reduces\": {},\n", self.recovered_reduces));
        s.push_str(&format!(
            "{indent}  \"inherited_assignments\": {},\n",
            self.inherited_assignments
        ));
        s.push_str(&format!("{indent}  \"recovered_reexec\": {}\n", self.recovered_reexec));
        s.push_str(&format!("{indent}}}"));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_preserves_offer_identity() {
        let mut c = SchedCounters::default();
        c.record(Decision::Assign(0));
        c.record(Decision::Skip(SkipReason::DrawFailed));
        c.record(Decision::Skip(SkipReason::Collocated));
        assert_eq!(c.offers, 3);
        assert_eq!(c.assigns, 1);
        assert_eq!(c.skipped(SkipReason::DrawFailed), 1);
        assert_eq!(c.total_skips(), 2);
        assert!(c.consistent());
    }

    #[test]
    fn kv_roundtrip() {
        let mut c = SchedCounters::default();
        c.record(Decision::Assign(1));
        c.record(Decision::Skip(SkipReason::BelowPMin));
        c.pruned = 7;
        c.cache_hits = 5;
        c.cache_misses = 2;
        c.record_fault(FaultKind::NodeCrash);
        c.record_fault(FaultKind::MapInvalidated);
        c.record_fault(FaultKind::TaskRescheduled);
        c.record_fault(FaultKind::TransientFailure);
        c.record_fault(FaultKind::HeartbeatLost);
        c.record_fault(FaultKind::NodeRecover);
        c.record_fault(FaultKind::RpcRetry);
        c.record_fault(FaultKind::RpcRetry);
        c.record_fault(FaultKind::PeerExpired);
        c.record_fault(FaultKind::CircuitOpen);
        c.record_fault(FaultKind::CircuitOpen);
        c.record_fault(FaultKind::CircuitClose);
        c.record_fault(FaultKind::AltSourceFetch);
        c.record_fault(FaultKind::FrameCorrupted);
        c.record_fault(FaultKind::LinkPartitioned);
        c.record_fault(FaultKind::DegradedMode);
        c.record_fault(FaultKind::JobRejected);
        c.record_fault(FaultKind::MapPreempted);
        c.record_fault(FaultKind::MapPreempted);
        c.record_fault(FaultKind::TrackerRestart);
        c.record_fault(FaultKind::JournalReplayed);
        c.record_fault(FaultKind::WorkerReattached);
        c.record_fault(FaultKind::WorkerReattached);
        c.record_fault(FaultKind::AttemptReconciled);
        c.recovered_maps = 3;
        c.recovered_reduces = 1;
        c.inherited_assignments = 2;
        c.recovered_reexec = 1;
        assert_eq!((c.tracker_restarts, c.journal_replays), (1, 1));
        assert_eq!((c.worker_reattaches, c.attempts_reconciled), (2, 1));
        assert_eq!((c.jobs_rejected, c.preemptions), (1, 2));
        assert_eq!((c.node_crashes, c.retries, c.reexecuted_maps, c.lost_heartbeats), (1, 2, 1, 1));
        assert_eq!((c.rpc_retries, c.peers_expired), (2, 1));
        assert_eq!((c.breaker_trips, c.breaker_closes, c.alt_source_fetches), (2, 1, 1));
        assert_eq!((c.corrupt_frames, c.link_partitions, c.degraded_entries), (1, 1, 1));
        let kv = c.to_kv();
        let back = SchedCounters::from_kv(kv.split_whitespace());
        assert_eq!(back, c);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = SchedCounters::default();
        a.record(Decision::Assign(0));
        let mut b = SchedCounters::default();
        b.record(Decision::Skip(SkipReason::DelayBound));
        b.record(Decision::Skip(SkipReason::DelayBound));
        a.merge(&b);
        assert_eq!(a.offers, 3);
        assert_eq!(a.assigns, 1);
        assert_eq!(a.skipped(SkipReason::DelayBound), 2);
        assert!(a.consistent());
    }

    #[test]
    fn json_object_is_valid_json() {
        let mut c = SchedCounters::default();
        c.record(Decision::Skip(SkipReason::PostponedReduce));
        let json = c.to_json_object("  ");
        crate::json::validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"skip_postponed_reduce\": 1"), "{json}");
    }
}
